"""Shared source-tree bootstrap for the test and benchmark harnesses.

Makes the ``repro`` package importable straight from ``src/`` so the suite
also runs on minimal environments where ``pip install -e .`` is unavailable
(e.g. offline machines without the ``wheel`` package).  Both ``conftest.py``
and ``benchmarks/conftest.py`` call :func:`ensure_src_on_path` instead of
duplicating the ``sys.path`` manipulation.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(REPO_ROOT, "src")


def ensure_src_on_path() -> str:
    """Prepend the ``src/`` directory to ``sys.path`` (idempotent)."""
    if SRC_DIR not in sys.path:
        sys.path.insert(0, SRC_DIR)
    return SRC_DIR

"""Tests of the rectangle-packing scheduler on unconstrained problems (Problem 1)."""

import pytest

from repro.core.lower_bounds import lower_bound
from repro.core.rectangles import build_rectangle_sets
from repro.core.scheduler import SchedulerConfig, SchedulerError, best_schedule, schedule_soc
from repro.soc.core import Core
from repro.soc.soc import Soc


class TestSchedulerConfig:
    def test_defaults_valid(self):
        config = SchedulerConfig()
        assert config.percent == 5.0
        assert config.insertion_slack == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"percent": -1},
            {"delta": -1},
            {"max_core_width": 0},
            {"insertion_slack": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerConfig(**kwargs)


class TestSingleCore:
    def test_single_core_gets_whole_tam(self):
        core = Core("solo", inputs=4, outputs=4, patterns=10, scan_chains=(8, 8))
        soc = Soc("solo-soc", (core,))
        sets = build_rectangle_sets(soc, max_width=16)
        schedule = schedule_soc(soc, 16, config=SchedulerConfig(percent=0))
        assert schedule.makespan == sets["solo"].min_time
        assert schedule.segments_for("solo")[0].start == 0

    def test_width_one(self):
        core = Core("solo", inputs=4, outputs=4, patterns=10, scan_chains=(8, 8))
        soc = Soc("solo-soc", (core,))
        schedule = schedule_soc(soc, 1)
        sets = build_rectangle_sets(soc)
        assert schedule.makespan == sets["solo"].time_at(1)

    def test_invalid_total_width(self):
        core = Core("solo", inputs=4, outputs=4, patterns=10)
        soc = Soc("solo-soc", (core,))
        with pytest.raises(SchedulerError):
            schedule_soc(soc, 0)


class TestSmallSoc:
    def test_every_core_scheduled_exactly_once(self, small_soc):
        schedule = schedule_soc(small_soc, 8)
        assert set(schedule.scheduled_cores) == set(small_soc.core_names)
        for core in small_soc.core_names:
            assert schedule.preemptions_of(core) == 0  # non-preemptive by default

    def test_schedule_is_structurally_valid(self, small_soc):
        for width in (2, 4, 8, 16):
            schedule = schedule_soc(small_soc, width)
            schedule.validate(small_soc)

    def test_peak_width_within_budget(self, small_soc):
        for width in (3, 5, 9):
            schedule = schedule_soc(small_soc, width)
            assert schedule.peak_width() <= width

    def test_each_core_runs_long_enough(self, small_soc):
        sets = build_rectangle_sets(small_soc)
        schedule = schedule_soc(small_soc, 8)
        for core in small_soc.core_names:
            summary = schedule.core_summary(core)
            width = summary.widths[0]
            assert summary.total_time >= sets[core].time_at(width)

    def test_makespan_at_least_lower_bound(self, small_soc):
        for width in (2, 4, 8, 16, 32):
            schedule = schedule_soc(small_soc, width)
            assert schedule.makespan >= lower_bound(small_soc, width)

    def test_wider_tam_never_much_worse(self, small_soc):
        narrow = schedule_soc(small_soc, 4).makespan
        wide = schedule_soc(small_soc, 16).makespan
        assert wide <= narrow

    def test_deterministic(self, small_soc):
        first = schedule_soc(small_soc, 8)
        second = schedule_soc(small_soc, 8)
        assert first.segments == second.segments


class TestHeuristicQuality:
    def test_d695_within_25_percent_of_lower_bound(self, d695_soc):
        for width in (16, 32, 64):
            schedule = best_schedule(
                d695_soc,
                width,
                percents=(1, 5, 10, 25, 40, 60),
                deltas=(0, 2),
                slacks=(0, 3, 6),
            )
            bound = lower_bound(d695_soc, width)
            assert schedule.makespan <= 1.25 * bound

    def test_d695_utilisation_reasonable(self, d695_soc):
        schedule = best_schedule(
            d695_soc, 16, percents=(1, 5, 10), deltas=(0, 2), slacks=(0, 3)
        )
        assert schedule.tam_utilization > 0.8

    def test_best_schedule_never_worse_than_single_config(self, small_soc):
        single = schedule_soc(small_soc, 8, config=SchedulerConfig(percent=5, delta=0))
        best = best_schedule(small_soc, 8)
        assert best.makespan <= single.makespan

    def test_identical_cores_pack_in_parallel(self):
        cores = tuple(
            Core(f"c{i}", inputs=2, outputs=2, patterns=10, scan_chains=(8,))
            for i in range(4)
        )
        soc = Soc("quad", cores)
        sets = build_rectangle_sets(soc)
        solo_time = sets["c0"].min_time
        # With 4x the width a single core needs, all four should overlap heavily.
        width_needed = sets["c0"].max_pareto_width
        schedule = schedule_soc(soc, 4 * width_needed, config=SchedulerConfig(percent=0))
        assert schedule.makespan < 2 * solo_time


class TestWidthHandling:
    def test_core_width_capped_by_max_core_width(self, small_soc):
        config = SchedulerConfig(percent=0, max_core_width=2)
        schedule = schedule_soc(small_soc, 16, config=config)
        for segment in schedule.segments:
            assert segment.width <= 2

    def test_assigned_widths_are_pareto_optimal(self, small_soc):
        sets = build_rectangle_sets(small_soc)
        schedule = schedule_soc(small_soc, 12)
        for segment in schedule.segments:
            pareto_widths = {p.width for p in sets[segment.core].points}
            assert segment.width in pareto_widths

    def test_single_wire_soc(self, small_soc):
        schedule = schedule_soc(small_soc, 1)
        # Everything runs sequentially on one wire.
        sets = build_rectangle_sets(small_soc)
        expected = sum(sets[c].time_at(1) for c in small_soc.core_names)
        assert schedule.makespan == expected

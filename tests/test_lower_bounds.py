"""Tests for the testing-time lower bound (repro.core.lower_bounds)."""

import math

import pytest

from repro.core.lower_bounds import area_lower_bound, bottleneck_lower_bound, lower_bound
from repro.core.rectangles import build_rectangle_sets
from repro.core.scheduler import schedule_soc
from repro.soc.core import Core
from repro.soc.soc import Soc


class TestComponents:
    def test_area_bound_formula(self, small_soc):
        sets = build_rectangle_sets(small_soc)
        total_area = sum(sets[c].min_area for c in small_soc.core_names)
        for width in (1, 3, 7, 16):
            assert area_lower_bound(small_soc, width) == math.ceil(total_area / width)

    def test_bottleneck_bound_formula(self, small_soc):
        sets = build_rectangle_sets(small_soc)
        for width in (1, 3, 7, 16):
            expected = max(sets[c].time_at(width) for c in small_soc.core_names)
            assert bottleneck_lower_bound(small_soc, width) == expected

    def test_lower_bound_is_max_of_components(self, small_soc):
        for width in (1, 2, 4, 8, 16, 32):
            assert lower_bound(small_soc, width) == max(
                area_lower_bound(small_soc, width),
                bottleneck_lower_bound(small_soc, width),
            )

    def test_invalid_width_rejected(self, small_soc):
        with pytest.raises(ValueError):
            lower_bound(small_soc, 0)
        with pytest.raises(ValueError):
            area_lower_bound(small_soc, -3)
        with pytest.raises(ValueError):
            bottleneck_lower_bound(small_soc, 0)

    def test_precomputed_rectangle_sets_accepted(self, small_soc):
        sets = build_rectangle_sets(small_soc, max_width=32)
        assert lower_bound(small_soc, 8, max_core_width=32, rectangle_sets=sets) == lower_bound(
            small_soc, 8, max_core_width=32
        )


class TestBehaviour:
    def test_bound_decreases_with_width_until_bottleneck(self, small_soc):
        bounds = [lower_bound(small_soc, w) for w in range(1, 40)]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    def test_bottleneck_dominates_for_wide_tams(self):
        # One enormous core plus a tiny one: at wide TAMs the big core's
        # saturated time dominates the area bound.
        cores = (
            Core("big", inputs=2, outputs=2, patterns=50, scan_chains=(200, 3, 3)),
            Core("tiny", inputs=1, outputs=1, patterns=2, scan_chains=(2,)),
        )
        soc = Soc("bottleneck", cores)
        wide = lower_bound(soc, 64)
        assert wide == bottleneck_lower_bound(soc, 64)
        assert wide > area_lower_bound(soc, 64)

    def test_area_dominates_for_narrow_tams(self, d695_soc):
        assert lower_bound(d695_soc, 16) == area_lower_bound(d695_soc, 16)

    def test_any_schedule_respects_the_bound(self, small_soc, d695_soc):
        for soc in (small_soc, d695_soc):
            for width in (4, 16, 32):
                schedule = schedule_soc(soc, width)
                assert schedule.makespan >= lower_bound(soc, width)

    def test_halving_width_roughly_doubles_area_bound(self, d695_soc):
        narrow = area_lower_bound(d695_soc, 16)
        wide = area_lower_bound(d695_soc, 32)
        assert narrow == pytest.approx(2 * wide, rel=1e-3)

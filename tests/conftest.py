"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.soc.benchmarks import d695, p22810, p34392, p93791
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture(scope="session")
def d695_soc() -> Soc:
    """The academic d695 benchmark (session-scoped: it is immutable)."""
    return d695()


@pytest.fixture(scope="session")
def p22810_soc() -> Soc:
    return p22810()


@pytest.fixture(scope="session")
def p34392_soc() -> Soc:
    return p34392()


@pytest.fixture(scope="session")
def p93791_soc() -> Soc:
    return p93791()


@pytest.fixture
def small_cores() -> tuple:
    """Four small, hand-checkable cores."""
    return (
        Core("alpha", inputs=4, outputs=4, patterns=10, scan_chains=(8, 8)),
        Core("beta", inputs=2, outputs=3, patterns=20, scan_chains=(6,)),
        Core("gamma", inputs=5, outputs=5, patterns=5, scan_chains=(10, 10, 10)),
        Core.combinational("delta", inputs=6, outputs=2, patterns=30),
    )


@pytest.fixture
def small_soc(small_cores) -> Soc:
    """A four-core SOC small enough for exhaustive reference scheduling."""
    return Soc(name="small4", cores=small_cores)


@pytest.fixture
def small_constraints(small_soc) -> ConstraintSet:
    """A representative constraint set for the small SOC."""
    return ConstraintSet.for_soc(
        small_soc,
        precedence=[("alpha", "delta")],
        concurrency=[("beta", "gamma")],
        power_max=60.0,
        max_preemptions={"gamma": 2},
    )


@pytest.fixture
def hierarchical_soc() -> Soc:
    """An SOC with a parent/child pair and a shared BIST engine."""
    cores = (
        Core("parent", inputs=10, outputs=10, patterns=12, scan_chains=(16, 16)),
        Core("child", inputs=4, outputs=4, patterns=8, scan_chains=(8,), parent="parent"),
        Core("bist_a", inputs=3, outputs=3, patterns=6, scan_chains=(6,), bist_resource="engine0"),
        Core("bist_b", inputs=3, outputs=3, patterns=6, scan_chains=(6,), bist_resource="engine0"),
        Core("plain", inputs=5, outputs=5, patterns=10, scan_chains=(12,)),
    )
    return Soc(name="hier", cores=cores)

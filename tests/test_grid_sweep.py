"""Property and unit tests for the deduplicated best-over-grid sweep.

Two bit-identity contracts are pinned here on randomized SOCs and configs:

* the heap-based ``_select_candidate`` (the default) produces exactly the
  schedules of the straightforward pool re-scan it replaced (reachable via
  ``SchedulerConfig(use_candidate_heaps=False)``), across non-preemptive,
  preemptive and power-constrained scheduling;
* the deduplicated / pruned / parallel grid sweep
  (:func:`repro.core.grid_sweep.run_grid_sweep`) returns exactly the
  schedule *and winning grid point* of the straightforward serial triple
  loop (:func:`repro.core.grid_sweep.run_best_schedule_reference`), for
  every worker count.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis.perf import schedule_fingerprint
from repro.core.grid_sweep import (
    GridPoint,
    dedupe_grid,
    run_best_schedule_reference,
    run_grid_sweep,
)
from repro.core.rectangles import build_rectangle_sets
from repro.core.scheduler import (
    MakespanLimitExceeded,
    SchedulerConfig,
    run_paper_scheduler,
)
from repro.soc.benchmarks import get_benchmark
from repro.soc.constraints import ConstraintSet
from repro.soc.generator import GeneratorProfile, generate_soc
from repro.soc.soc import Soc
from repro.solvers import ScheduleRequest, Session

# Small profile so each randomized case schedules in milliseconds.
PROFILE = GeneratorProfile(
    min_cores=4,
    max_cores=9,
    max_scan_cells=2500,
    max_scan_chains=12,
    bist_fraction=0.2,
)

SMALL_GRID = dict(percents=(1, 10, 40), deltas=(0, 2), slacks=(0, 3))


def random_constraints(soc: Soc, rng: random.Random) -> ConstraintSet:
    """A random mix of preemption budgets, power caps and precedence."""
    names = list(soc.core_names)
    limits = {
        name: rng.randint(1, 3) for name in rng.sample(names, len(names) // 2)
    }
    power_max = None
    if rng.random() < 0.5:
        power_max = 1.2 * max(core.test_power for core in soc.cores)
    precedence = ()
    if len(names) >= 2 and rng.random() < 0.5:
        before, after = rng.sample(names, 2)
        precedence = ((before, after),)
    return ConstraintSet.for_soc(
        soc,
        precedence=precedence,
        power_max=power_max,
        max_preemptions=limits,
        default_preemptions=rng.choice((0, 0, 2)),
    )


def random_config(rng: random.Random, **overrides) -> SchedulerConfig:
    return SchedulerConfig(
        percent=rng.choice((1, 5, 25, 60)),
        delta=rng.choice((0, 2, 4)),
        insertion_slack=rng.choice((0, 3, 6)),
        strict_priority_resume=rng.random() < 0.3,
        **overrides,
    )


class TestHeapSelectCandidate:
    """Heap-based selection is bit-identical to the reference scan."""

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_socs_and_constraints(self, seed):
        rng = random.Random(seed)
        soc = generate_soc(seed, name=f"heap-{seed}", profile=PROFILE)
        constraints = random_constraints(soc, rng)
        config = random_config(rng)
        for width in (13, 32):
            heap_schedule = run_paper_scheduler(
                soc, width, constraints=constraints, config=config
            )
            scan_schedule = run_paper_scheduler(
                soc,
                width,
                constraints=constraints,
                config=replace(config, use_candidate_heaps=False),
            )
            assert schedule_fingerprint(heap_schedule) == schedule_fingerprint(
                scan_schedule
            )

    @pytest.mark.parametrize("soc_name", ["d695", "p93791"])
    def test_benchmarks_preemptive(self, soc_name):
        soc = get_benchmark(soc_name)
        constraints = ConstraintSet(default_preemptions=2)
        for width in (16, 64):
            heap_schedule = run_paper_scheduler(soc, width, constraints=constraints)
            scan_schedule = run_paper_scheduler(
                soc,
                width,
                constraints=constraints,
                config=SchedulerConfig(use_candidate_heaps=False),
            )
            assert schedule_fingerprint(heap_schedule) == schedule_fingerprint(
                scan_schedule
            )


class TestGridSweep:
    """The batched sweep matches the serial triple loop, winner included."""

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_socs_match_reference(self, seed):
        rng = random.Random(1000 + seed)
        soc = generate_soc(1000 + seed, name=f"sweep-{seed}", profile=PROFILE)
        constraints = random_constraints(soc, rng) if rng.random() < 0.5 else None
        width = rng.choice((11, 24, 40))
        reference_schedule, reference_point = run_best_schedule_reference(
            soc, width, constraints=constraints, **SMALL_GRID
        )
        outcome = run_grid_sweep(soc, width, constraints=constraints, **SMALL_GRID)
        assert outcome.winner == reference_point
        assert schedule_fingerprint(outcome.schedule) == schedule_fingerprint(
            reference_schedule
        )
        assert outcome.makespan == reference_schedule.makespan
        assert outcome.grid_points == 12
        assert 1 <= outcome.unique_runs <= outcome.grid_points
        assert outcome.makespan >= outcome.lower_bound
        assert outcome.early_exit == (outcome.makespan <= outcome.lower_bound)

    @pytest.mark.parametrize("workers", [0, 1, 2, 5])
    def test_worker_counts_bit_identical(self, workers):
        soc = get_benchmark("p93791")
        serial = run_grid_sweep(soc, 32)
        outcome = run_grid_sweep(soc, 32, workers=workers)
        assert outcome == serial  # schedule, winner and statistics

    def test_full_default_grid_matches_reference_on_p93791(self):
        soc = get_benchmark("p93791")
        sets = build_rectangle_sets(soc, 64)
        reference_schedule, reference_point = run_best_schedule_reference(
            soc, 64, rectangle_sets=sets, config=SchedulerConfig(use_candidate_heaps=False)
        )
        outcome = run_grid_sweep(soc, 64, rectangle_sets=sets)
        assert outcome.winner == reference_point
        assert schedule_fingerprint(outcome.schedule) == schedule_fingerprint(
            reference_schedule
        )

    def test_dedup_collapses_identical_signatures(self):
        soc = get_benchmark("p93791")
        config = SchedulerConfig()
        sets = build_rectangle_sets(soc, config.max_core_width)
        runs = dedupe_grid(
            soc, 64, config, sets, (1, 5, 10, 25, 40, 60, 75), (0, 2, 4), (0, 3, 6)
        )
        assert len(runs) < 63  # narrow-percent points snap to shared vectors
        assert sum(run.duplicates for run in runs) == 63
        indexes = [run.index for run in runs]
        assert indexes == sorted(indexes)
        assert all(len(run.preferred_widths) == len(soc.cores) for run in runs)

    def test_dedup_ignores_slack_without_idle_insertion(self):
        soc = get_benchmark("d695")
        config = SchedulerConfig(enable_idle_insertion=False)
        sets = build_rectangle_sets(soc, config.max_core_width)
        runs = dedupe_grid(soc, 32, config, sets, (1, 25), (0,), (0, 3, 6))
        with_insertion = dedupe_grid(
            soc, 32, SchedulerConfig(), sets, (1, 25), (0,), (0, 3, 6)
        )
        assert len(runs) <= 2  # slack dropped from the signature
        assert len(runs) < len(with_insertion)

    def test_early_exit_when_bound_met(self):
        # A single-core SOC always meets the bottleneck bound.
        soc = generate_soc(7, name="single", profile=GeneratorProfile(min_cores=1, max_cores=1))
        outcome = run_grid_sweep(soc, 24)
        assert outcome.early_exit
        assert outcome.makespan == outcome.lower_bound

    def test_makespan_limit_aborts_run(self):
        soc = get_benchmark("d695")
        with pytest.raises(MakespanLimitExceeded):
            run_paper_scheduler(soc, 32, makespan_limit=1)

    def test_makespan_limit_keeps_ties_alive(self):
        # A limit equal to the true makespan must NOT abort (strict rule).
        soc = get_benchmark("d695")
        schedule = run_paper_scheduler(soc, 32)
        bounded = run_paper_scheduler(soc, 32, makespan_limit=schedule.makespan)
        assert schedule_fingerprint(bounded) == schedule_fingerprint(schedule)


class TestBestSolverMetadata:
    """The ``best`` solver surfaces the sweep provenance."""

    def test_winner_point_in_result_metadata(self):
        session = Session()
        result = session.solve(
            ScheduleRequest(
                soc=get_benchmark("d695"),
                total_width=32,
                solver="best",
                options=SMALL_GRID,
            )
        )
        metadata = result.metadata
        assert metadata["grid_points"] == 12
        assert 1 <= metadata["unique_runs"] <= 12
        winner = GridPoint(
            percent=metadata["winner_percent"],
            delta=metadata["winner_delta"],
            slack=metadata["winner_slack"],
        )
        assert winner.percent in SMALL_GRID["percents"]
        assert winner.delta in SMALL_GRID["deltas"]
        assert winner.slack in SMALL_GRID["slacks"]
        assert metadata["lower_bound"] >= 1
        assert isinstance(metadata["early_exit"], bool)

    def test_workers_option_is_bit_identical(self):
        soc = get_benchmark("d695")
        session = Session()
        serial = session.solve(
            ScheduleRequest(soc=soc, total_width=32, solver="best", options=SMALL_GRID)
        )
        parallel = session.solve(
            ScheduleRequest(
                soc=soc,
                total_width=32,
                solver="best",
                options={**SMALL_GRID, "workers": 2},
            )
        )
        assert parallel.makespan == serial.makespan
        assert parallel.metadata == serial.metadata
        assert schedule_fingerprint(parallel.schedule) == schedule_fingerprint(
            serial.schedule
        )

    def test_session_workers_default_applies(self):
        soc = get_benchmark("d695")
        serial = Session().solve(
            ScheduleRequest(soc=soc, total_width=16, solver="best", options=SMALL_GRID)
        )
        pooled = Session(workers=2).solve(
            ScheduleRequest(soc=soc, total_width=16, solver="best", options=SMALL_GRID)
        )
        assert pooled.makespan == serial.makespan
        assert schedule_fingerprint(pooled.schedule) == schedule_fingerprint(
            serial.schedule
        )

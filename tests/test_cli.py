"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.soc.benchmarks import d695
from repro.soc.itc02 import save_soc


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_schedule_arguments(self):
        args = build_parser().parse_args(["schedule", "d695", "32", "--percent", "7"])
        assert args.soc == "d695"
        assert args.width == 32
        assert args.percent == 7.0


class TestCommands:
    def test_benchmarks_lists_all(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("d695", "p22810", "p34392", "p93791"):
            assert name in out

    def test_pareto_command(self, capsys):
        assert main(["pareto", "d695", "s38417", "--max-width", "16"]) == 0
        out = capsys.readouterr().out
        assert "TAM width" in out
        assert "testing time" in out

    def test_schedule_command(self, capsys):
        assert main(["schedule", "d695", "24"]) == 0
        out = capsys.readouterr().out
        assert "testing time" in out
        assert "lower bound" in out
        assert "s38417" in out

    def test_schedule_command_from_file(self, tmp_path, capsys):
        path = tmp_path / "soc.soc"
        save_soc(d695(), path)
        assert main(["schedule", str(path), "16"]) == 0
        assert "d695" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert (
            main(["sweep", "d695", "--min-width", "8", "--max-width", "20", "--step", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "testing time" in out
        assert "data volume" in out

    def test_table2_command(self, capsys):
        assert (
            main(
                [
                    "table2",
                    "d695",
                    "--alphas",
                    "0.5",
                    "--min-width",
                    "8",
                    "--max-width",
                    "24",
                    "--step",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "W_e" in out
        assert "0.500" in out

"""Tests for the command-line interface (repro.cli)."""

import json
import warnings

import pytest

from repro.baselines.shelf import shelf_schedule
from repro.cli import build_parser, main
from repro.soc.benchmarks import d695
from repro.soc.itc02 import save_soc
from repro.solvers import default_registry


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_schedule_arguments(self):
        args = build_parser().parse_args(["schedule", "d695", "32", "--percent", "7"])
        assert args.soc == "d695"
        assert args.width == 32
        assert args.percent == 7.0


class TestCommands:
    def test_benchmarks_lists_all(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("d695", "p22810", "p34392", "p93791"):
            assert name in out

    def test_pareto_command(self, capsys):
        assert main(["pareto", "d695", "s38417", "--max-width", "16"]) == 0
        out = capsys.readouterr().out
        assert "TAM width" in out
        assert "testing time" in out

    def test_schedule_command(self, capsys):
        assert main(["schedule", "d695", "24"]) == 0
        out = capsys.readouterr().out
        assert "testing time" in out
        assert "lower bound" in out
        assert "s38417" in out

    def test_schedule_command_from_file(self, tmp_path, capsys):
        path = tmp_path / "soc.soc"
        save_soc(d695(), path)
        assert main(["schedule", str(path), "16"]) == 0
        assert "d695" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert (
            main(["sweep", "d695", "--min-width", "8", "--max-width", "20", "--step", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "testing time" in out
        assert "data volume" in out

    def test_solvers_command_lists_capability_metadata(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in default_registry().names():
            assert name in out
        assert "constraints=yes" in out  # paper / best
        assert "schedule=no" in out  # lower-bound
        assert "exact=yes" in out  # exhaustive

    def test_solve_command_default_paper(self, capsys):
        assert main(["solve", "d695", "32"]) == 0
        out = capsys.readouterr().out
        assert "solver      : paper" in out
        assert "makespan" in out
        assert "data volume" in out

    def test_solve_command_shelf_end_to_end(self, capsys):
        assert main(["solve", "--solver", "shelf", "--", "d695", "32"]) == 0
        out = capsys.readouterr().out
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            expected = shelf_schedule(d695(), 32).makespan
        assert f"makespan    : {expected} cycles" in out

    def test_solve_command_json_output(self, capsys):
        assert main(["solve", "d695", "16", "--solver", "lower-bound", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["solver"] == "lower-bound"
        assert record["schedule"] is None
        assert record["makespan"] > 0

    def test_solve_command_with_options(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "d695",
                    "16",
                    "--solver",
                    "fixed-width",
                    "--options",
                    '{"max_buses": 2}',
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bus_widths" in out

    @pytest.mark.parametrize("solver", ["paper", "shelf", "fixed-width"])
    def test_solve_command_matches_session_api(self, capsys, solver):
        """The CLI front door and the Python front door agree exactly."""
        from repro.solvers import ScheduleRequest, Session

        assert main(["solve", "--solver", solver, "--", "d695", "32"]) == 0
        out = capsys.readouterr().out
        expected = Session().solve(
            ScheduleRequest(soc=d695(), total_width=32, solver=solver)
        )
        assert f"makespan    : {expected.makespan} cycles" in out

    def test_solve_command_unknown_solver_fails(self, capsys):
        assert main(["solve", "d695", "16", "--solver", "bogus"]) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_solve_command_solver_refusal_is_clean(self, capsys):
        assert main(["solve", "d695", "16", "--solver", "exhaustive"]) == 2
        assert "limited to 6 cores" in capsys.readouterr().err

    def test_solve_command_bad_options_json_is_clean(self, capsys):
        assert main(["solve", "d695", "16", "--options", "{bad"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_schedule_command_bad_width_is_clean(self, capsys):
        assert main(["schedule", "d695", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_schedule_command_with_solver(self, capsys):
        assert main(["schedule", "--solver", "shelf", "--", "d695", "32"]) == 0
        out = capsys.readouterr().out
        assert "testing time" in out
        assert "lower bound" in out

    def test_schedule_command_rejects_bound_only_solver(self, capsys):
        assert main(["schedule", "d695", "32", "--solver", "lower-bound"]) == 2
        assert "produces no schedule" in capsys.readouterr().err

    def test_table2_command(self, capsys):
        assert (
            main(
                [
                    "table2",
                    "d695",
                    "--alphas",
                    "0.5",
                    "--min-width",
                    "8",
                    "--max-width",
                    "24",
                    "--step",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "W_e" in out
        assert "0.500" in out

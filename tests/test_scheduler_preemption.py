"""Tests of selectively preemptive scheduling (Problem 2)."""

import pytest

from repro.core.rectangles import build_rectangle_sets
from repro.core.scheduler import SchedulerConfig, best_schedule, schedule_soc
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def preemption_soc():
    """An SOC engineered so that preemption is attractive.

    Several short narrow tests plus two long wide tests on a narrow TAM give
    the scheduler an incentive to pause short tests to admit long ones early.
    """
    cores = [
        Core("long_a", inputs=10, outputs=10, patterns=60, scan_chains=(30, 30, 30, 30)),
        Core("long_b", inputs=10, outputs=10, patterns=50, scan_chains=(25, 25, 25, 25)),
    ]
    for index in range(4):
        cores.append(
            Core(f"short_{index}", inputs=4, outputs=4, patterns=10, scan_chains=(12, 12))
        )
    return Soc("preempt", tuple(cores))


class TestPreemptionLimits:
    def test_default_is_non_preemptive(self, preemption_soc):
        schedule = schedule_soc(preemption_soc, 8)
        for core in preemption_soc.core_names:
            assert schedule.preemptions_of(core) == 0

    def test_preemption_limits_respected(self, preemption_soc):
        constraints = ConstraintSet.for_soc(preemption_soc, default_preemptions=2)
        for width in (6, 8, 12):
            schedule = schedule_soc(preemption_soc, width, constraints=constraints)
            schedule.validate(preemption_soc, constraints)
            for core in preemption_soc.core_names:
                assert schedule.preemptions_of(core) <= 2

    def test_per_core_limits_respected(self, preemption_soc):
        constraints = ConstraintSet.for_soc(
            preemption_soc,
            max_preemptions={"short_0": 3, "short_1": 1},
            default_preemptions=0,
        )
        schedule = schedule_soc(preemption_soc, 8, constraints=constraints)
        schedule.validate(preemption_soc, constraints)
        assert schedule.preemptions_of("short_1") <= 1
        for core in ("long_a", "long_b", "short_2", "short_3"):
            assert schedule.preemptions_of(core) == 0

    def test_preempted_core_keeps_its_width(self, preemption_soc):
        """The paper fixes a rectangle's width once packed; resumed pieces reuse it."""
        constraints = ConstraintSet.for_soc(preemption_soc, default_preemptions=3)
        schedule = schedule_soc(preemption_soc, 8, constraints=constraints)
        for core in preemption_soc.core_names:
            widths = {seg.width for seg in schedule.segments_for(core)}
            assert len(widths) == 1


class TestPreemptionBehaviour:
    def test_preemption_adds_scan_overhead(self, preemption_soc):
        """A core preempted k times runs k*(si+so) cycles longer in total."""
        sets = build_rectangle_sets(preemption_soc)
        constraints = ConstraintSet.for_soc(preemption_soc, default_preemptions=3)
        schedule = schedule_soc(preemption_soc, 8, constraints=constraints)
        for core in preemption_soc.core_names:
            summary = schedule.core_summary(core)
            width = summary.widths[0]
            base = sets[core].time_at(width)
            overhead = sets[core].preemption_overhead(width)
            assert summary.total_time == base + summary.preemptions * overhead

    def test_preemptive_never_catastrophically_worse(self, preemption_soc):
        non_preemptive = best_schedule(
            preemption_soc, 8, percents=(1, 10, 25), deltas=(0, 2), slacks=(0, 3)
        )
        constraints = ConstraintSet.for_soc(preemption_soc, default_preemptions=2)
        preemptive = best_schedule(
            preemption_soc,
            8,
            constraints=constraints,
            percents=(1, 10, 25),
            deltas=(0, 2),
            slacks=(0, 3),
        )
        # The paper observes preemption usually helps and occasionally costs a
        # little (the si+so resume penalty); 5 % is a generous envelope.
        assert preemptive.makespan <= 1.05 * non_preemptive.makespan

    def test_preemption_actually_used_somewhere(self, d695_soc):
        """On at least one benchmark width the preemptive scheduler preempts."""
        constraints = ConstraintSet.for_soc(d695_soc, default_preemptions=2)
        preempted = 0
        for width in (16, 24, 32, 48):
            schedule = schedule_soc(
                d695_soc, width, constraints=constraints, config=SchedulerConfig(percent=10)
            )
            schedule.validate(d695_soc, constraints)
            preempted += sum(schedule.preemptions_of(c) for c in d695_soc.core_names)
        assert preempted > 0

    def test_zero_limit_equals_plain_schedule(self, preemption_soc):
        constraints = ConstraintSet.for_soc(preemption_soc, default_preemptions=0)
        with_constraints = schedule_soc(preemption_soc, 8, constraints=constraints)
        plain = schedule_soc(preemption_soc, 8)
        assert with_constraints.makespan == plain.makespan

    def test_strict_priority_resume_still_valid(self, preemption_soc):
        constraints = ConstraintSet.for_soc(preemption_soc, default_preemptions=2)
        config = SchedulerConfig(strict_priority_resume=True)
        schedule = schedule_soc(preemption_soc, 8, constraints=constraints, config=config)
        schedule.validate(preemption_soc, constraints)


class TestPreemptionWithOtherConstraints:
    def test_preemption_with_power_budget(self, preemption_soc):
        power_max = 1.1 * preemption_soc.max_test_power()
        constraints = ConstraintSet.for_soc(
            preemption_soc, default_preemptions=2, power_max=power_max
        )
        schedule = schedule_soc(preemption_soc, 12, constraints=constraints)
        schedule.validate(preemption_soc, constraints)

    def test_preemption_with_precedence(self, preemption_soc):
        constraints = ConstraintSet.for_soc(
            preemption_soc,
            default_preemptions=2,
            precedence=[("short_0", "long_a")],
        )
        schedule = schedule_soc(preemption_soc, 8, constraints=constraints)
        schedule.validate(preemption_soc, constraints)
        assert (
            schedule.core_summary("long_a").first_begin
            >= schedule.core_summary("short_0").last_end
        )

"""Tests for the plain-text reporting helpers (repro.analysis.reporting)."""


from repro.analysis.experiments import Table1Row, Table2Row
from repro.analysis.reporting import (
    ascii_plot,
    format_figure_series,
    format_table,
    table1_to_text,
    table2_to_text,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(("name", "value"), [("a", 1), ("longer", 23456)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "23456" in lines[3]
        # All lines have equal length thanks to padding.
        assert len({len(line.rstrip()) for line in lines[1:2]}) == 1

    def test_floats_rendered_with_three_decimals(self):
        text = format_table(("x",), [(1.23456,)])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestTableRenderers:
    def test_table1_to_text(self):
        rows = [
            Table1Row(
                soc="d695",
                width=16,
                lower_bound=41232,
                non_preemptive=43410,
                preemptive=43423,
                power_constrained=47574,
            )
        ]
        text = table1_to_text(rows)
        assert "d695" in text
        assert "41232" in text
        assert "47574" in text
        assert "NP/LB" in text

    def test_table2_to_text(self):
        rows = [
            Table2Row(
                soc="p22810",
                alpha=0.3,
                min_testing_time=140222,
                width_of_min_time=63,
                min_data_volume=7377480,
                width_of_min_volume=44,
                min_cost=1.103,
                effective_width=48,
                testing_time_at_effective=164420,
                data_volume_at_effective=7892160,
            )
        ]
        text = table2_to_text(rows)
        assert "p22810" in text
        assert "7377480" in text
        assert "W_e" in text

    def test_format_figure_series(self):
        text = format_figure_series([(1, 10), (2, 20)], x_label="w", y_label="t")
        assert "w" in text.splitlines()[0]
        assert "20" in text


class TestAsciiPlot:
    def test_plot_contains_markers_and_title(self):
        series = [(w, 100 - w) for w in range(1, 20)]
        text = ascii_plot(series, title="demo plot")
        assert "demo plot" in text
        assert "*" in text

    def test_plot_handles_flat_series(self):
        text = ascii_plot([(1, 5), (2, 5), (3, 5)])
        assert "*" in text

    def test_plot_empty_series(self):
        assert ascii_plot([]) == "(no data)"

    def test_plot_extents_labelled(self):
        series = [(0, 0), (10, 100)]
        text = ascii_plot(series)
        assert "100" in text
        assert "0" in text

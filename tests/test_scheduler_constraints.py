"""Tests of constraint-driven scheduling: precedence, concurrency, power, BIST."""

import pytest

from repro.core.scheduler import SchedulerConfig, SchedulerError, schedule_soc
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def soc():
    cores = (
        Core("mem", inputs=6, outputs=6, patterns=12, scan_chains=(10, 10), power=30.0),
        Core("cpu", inputs=8, outputs=8, patterns=20, scan_chains=(16, 16), power=50.0),
        Core("dsp", inputs=4, outputs=4, patterns=15, scan_chains=(12,), power=40.0),
        Core("io", inputs=10, outputs=6, patterns=8, scan_chains=(), power=10.0),
    )
    return Soc("constrained", cores)


class TestPrecedence:
    def test_single_precedence_respected(self, soc):
        constraints = ConstraintSet.for_soc(soc, precedence=[("mem", "cpu")])
        schedule = schedule_soc(soc, 8, constraints=constraints)
        schedule.validate(soc, constraints)
        mem_end = schedule.core_summary("mem").last_end
        cpu_start = schedule.core_summary("cpu").first_begin
        assert cpu_start >= mem_end

    def test_precedence_chain_respected(self, soc):
        constraints = ConstraintSet.for_soc(
            soc, precedence=[("mem", "cpu"), ("cpu", "dsp"), ("dsp", "io")]
        )
        schedule = schedule_soc(soc, 16, constraints=constraints)
        schedule.validate(soc, constraints)
        order = ["mem", "cpu", "dsp", "io"]
        for before, after in zip(order, order[1:]):
            assert (
                schedule.core_summary(after).first_begin
                >= schedule.core_summary(before).last_end
            )

    def test_precedence_increases_or_keeps_makespan(self, soc):
        free = schedule_soc(soc, 16).makespan
        constrained = schedule_soc(
            soc,
            16,
            constraints=ConstraintSet.for_soc(
                soc, precedence=[("mem", "cpu"), ("cpu", "dsp"), ("dsp", "io")]
            ),
        ).makespan
        assert constrained >= free

    def test_abort_at_first_fail_ordering(self, soc):
        """Memories first, as the paper motivates, expressed as precedence."""
        constraints = ConstraintSet.for_soc(
            soc, precedence=[("mem", "cpu"), ("mem", "dsp"), ("mem", "io")]
        )
        schedule = schedule_soc(soc, 8, constraints=constraints)
        mem_end = schedule.core_summary("mem").last_end
        for other in ("cpu", "dsp", "io"):
            assert schedule.core_summary(other).first_begin >= mem_end


class TestConcurrency:
    def test_concurrency_constraint_respected(self, soc):
        constraints = ConstraintSet.for_soc(soc, concurrency=[("cpu", "dsp")])
        schedule = schedule_soc(soc, 32, constraints=constraints)
        schedule.validate(soc, constraints)

    def test_all_pairs_conflict_serialises_schedule(self, soc):
        pairs = [(a, b) for i, a in enumerate(soc.core_names) for b in soc.core_names[i + 1:]]
        constraints = ConstraintSet.for_soc(soc, concurrency=pairs)
        schedule = schedule_soc(soc, 32, constraints=constraints)
        schedule.validate(soc, constraints)
        # No two tests may overlap, so total time is the sum of individual times.
        summaries = sorted(schedule.summaries(), key=lambda s: s.first_begin)
        for first, second in zip(summaries, summaries[1:]):
            assert second.first_begin >= first.last_end


class TestHierarchyAndBist:
    def test_parent_child_never_overlap(self, hierarchical_soc):
        constraints = ConstraintSet.for_soc(hierarchical_soc)
        schedule = schedule_soc(hierarchical_soc, 12, constraints=constraints)
        schedule.validate(hierarchical_soc, constraints)

    def test_shared_bist_engine_serialises_cores(self, hierarchical_soc):
        # Even without an explicit constraint set, the scheduler must not run
        # two cores sharing a BIST engine at the same time.
        schedule = schedule_soc(hierarchical_soc, 12)
        for seg_a in schedule.segments_for("bist_a"):
            for seg_b in schedule.segments_for("bist_b"):
                assert not seg_a.overlaps(seg_b)


class TestPower:
    def test_power_constraint_respected(self, soc):
        constraints = ConstraintSet.for_soc(soc, power_max=80.0)
        schedule = schedule_soc(soc, 32, constraints=constraints)
        schedule.validate(soc, constraints)
        assert schedule.peak_power(soc) <= 80.0

    def test_tight_power_budget_serialises(self, soc):
        constraints = ConstraintSet.for_soc(soc, power_max=55.0)
        schedule = schedule_soc(soc, 32, constraints=constraints)
        schedule.validate(soc, constraints)
        # Only one of the larger cores can run at a time (50+40 > 55).
        assert schedule.peak_power(soc) <= 55.0

    def test_power_constraint_increases_or_keeps_makespan(self, soc):
        free = schedule_soc(soc, 32).makespan
        tight = schedule_soc(
            soc, 32, constraints=ConstraintSet.for_soc(soc, power_max=55.0)
        ).makespan
        assert tight >= free

    def test_infeasible_power_budget_raises(self, soc):
        constraints = ConstraintSet.for_soc(soc, power_max=45.0)  # cpu needs 50
        with pytest.raises(SchedulerError, match="power"):
            schedule_soc(soc, 32, constraints=constraints)


class TestCombinedConstraints:
    def test_all_constraint_kinds_together(self, soc):
        constraints = ConstraintSet.for_soc(
            soc,
            precedence=[("mem", "cpu")],
            concurrency=[("cpu", "dsp")],
            power_max=90.0,
            max_preemptions={"cpu": 1, "dsp": 1},
        )
        schedule = schedule_soc(soc, 16, constraints=constraints)
        schedule.validate(soc, constraints)

    def test_constraints_for_wrong_soc_rejected(self, soc):
        constraints = ConstraintSet(precedence=[("ghost", "cpu")])
        with pytest.raises(Exception):
            schedule_soc(soc, 16, constraints=constraints)

    def test_strict_priority_resume_mode_valid(self, soc):
        constraints = ConstraintSet.for_soc(soc, default_preemptions=2, power_max=90.0)
        config = SchedulerConfig(strict_priority_resume=True)
        schedule = schedule_soc(soc, 16, constraints=constraints, config=config)
        schedule.validate(soc, constraints)

"""Tests for CSV export (repro.analysis.export)."""

import csv
import io

import pytest

from repro.analysis.experiments import Table1Row, Table2Row
from repro.analysis.export import (
    save_csv,
    series_to_csv,
    sweep_to_csv,
    table1_to_csv,
    table2_to_csv,
)
from repro.core.data_volume import TamSweep


def _rows(text):
    return list(csv.reader(io.StringIO(text)))


@pytest.fixture
def table1_rows():
    return [
        Table1Row("d695", 16, 41232, 43410, 43423, 47574),
        Table1Row("d695", 32, 20616, 22229, 21757, 29039),
    ]


@pytest.fixture
def table2_rows():
    return [
        Table2Row("p22810", 0.3, 140222, 63, 7377480, 44, 1.103, 48, 164420, 7892160),
    ]


@pytest.fixture
def sweep():
    return TamSweep(soc_name="x", widths=(2, 4, 8), testing_times=(100, 60, 40))


class TestTableExport:
    def test_table1_csv_structure(self, table1_rows):
        rows = _rows(table1_to_csv(table1_rows))
        assert rows[0][0] == "soc"
        assert len(rows) == 3
        assert rows[1] == ["d695", "16", "41232", "43410", "43423", "47574"]

    def test_table2_csv_structure(self, table2_rows):
        rows = _rows(table2_to_csv(table2_rows))
        assert rows[0][-1] == "data_volume_at_effective"
        assert rows[1][0] == "p22810"
        assert rows[1][1] == "0.3"

    def test_empty_tables(self):
        assert len(_rows(table1_to_csv([]))) == 1
        assert len(_rows(table2_to_csv([]))) == 1


class TestSweepExport:
    def test_sweep_csv_basic(self, sweep):
        rows = _rows(sweep_to_csv(sweep))
        assert rows[0] == ["tam_width", "testing_time", "data_volume"]
        assert rows[1] == ["2", "100", "200"]
        assert len(rows) == 4

    def test_sweep_csv_with_cost_columns(self, sweep):
        rows = _rows(sweep_to_csv(sweep, alphas=(0.0, 1.0)))
        assert rows[0][-2:] == ["cost_alpha_0.0", "cost_alpha_1.0"]
        # alpha=1 cost at the fastest width is exactly 1.0
        assert float(rows[3][-1]) == pytest.approx(1.0)

    def test_series_csv(self):
        rows = _rows(series_to_csv([(1, 10), (2, 20)], x_label="w", y_label="t"))
        assert rows == [["w", "t"], ["1", "10"], ["2", "20"]]


class TestSaveCsv:
    def test_save_round_trip(self, tmp_path, sweep):
        path = tmp_path / "sweep.csv"
        text = sweep_to_csv(sweep)
        save_csv(text, path)
        assert path.read_text(encoding="utf-8") == text

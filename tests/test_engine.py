"""Tests for the parallel parameter-sweep engine (repro.engine)."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.data_volume import sweep_tam_widths
from repro.core.scheduler import best_schedule
from repro.engine import (
    EngineContext,
    EngineError,
    GridError,
    JobResult,
    ParameterGrid,
    ScheduleJob,
    SweepResults,
    best_schedule_grid,
    config_grid,
    expand_config_jobs,
    mode_constraint_sets,
    parallel_tam_sweep,
    run_jobs,
)
from repro.analysis.experiments import run_table1, run_table2
from repro.schedule.schedule import TestSchedule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# A grid small enough to keep the pool tests fast but large enough to spread
# over several workers.
SMALL_PERCENTS = (1, 5, 10)
SMALL_DELTAS = (0, 2)
SMALL_SLACKS = (0, 3)


class TestParameterGrid:
    def test_row_major_expansion_order(self):
        grid = ParameterGrid.of(a=(1, 2), b=("x", "y"))
        assert list(grid.points()) == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_len_is_product_of_axis_sizes(self):
        grid = ParameterGrid.of(a=(1, 2, 3), b=(1, 2), c=(1, 2, 3, 4))
        assert len(grid) == 24
        assert len(list(grid.points())) == 24
        assert len(ParameterGrid()) == 0

    def test_enumerate_points_assigns_serial_indexes(self):
        grid = ParameterGrid.of(a=(1, 2), b=(1, 2))
        indexed = list(grid.enumerate_points(start=10))
        assert [index for index, _ in indexed] == [10, 11, 12, 13]

    def test_from_dict_preserves_axis_order(self):
        grid = ParameterGrid.from_dict({"b": (1,), "a": (2,)})
        assert grid.names == ("b", "a")
        assert grid.values("a") == (2,)

    def test_rejects_empty_axis(self):
        with pytest.raises(GridError):
            ParameterGrid.of(a=())

    def test_rejects_duplicate_axis_name(self):
        with pytest.raises(GridError):
            ParameterGrid((("a", (1,)), ("a", (2,))))

    def test_unknown_axis_lookup(self):
        with pytest.raises(GridError):
            ParameterGrid.of(a=(1,)).values("b")

    def test_with_axis_replaces_and_appends(self):
        grid = ParameterGrid.of(a=(1,), b=(2,))
        assert grid.with_axis("a", (9, 10)).values("a") == (9, 10)
        assert grid.with_axis("c", (3,)).names == ("a", "b", "c")


class TestJobsAndContext:
    def test_job_validation(self):
        with pytest.raises(EngineError):
            ScheduleJob(index=-1, soc="s", width=8)
        with pytest.raises(EngineError):
            ScheduleJob(index=0, soc="s", width=0)

    def test_job_tags(self):
        job = ScheduleJob(index=0, soc="s", width=8, tags=(("mode", "np"),))
        assert job.tag("mode") == "np"
        assert job.tag("missing", default="d") == "d"

    def test_context_resolves_soc_and_constraints(self, small_soc):
        constraints = mode_constraint_sets(small_soc)
        context = EngineContext.for_soc(small_soc, constraints)
        job = ScheduleJob(index=0, soc=small_soc.name, width=8, constraints="preemptive")
        soc, resolved = context.resolve(job)
        assert soc is context.socs[small_soc.name]
        assert resolved is context.constraints["preemptive"]

    def test_context_rejects_unknown_references(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        with pytest.raises(EngineError):
            context.resolve(ScheduleJob(index=0, soc="nope", width=8))
        with pytest.raises(EngineError):
            context.resolve(
                ScheduleJob(index=0, soc=small_soc.name, width=8, constraints="nope")
            )

    def test_run_jobs_rejects_duplicate_indexes(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        jobs = [
            ScheduleJob(index=0, soc=small_soc.name, width=8),
            ScheduleJob(index=0, soc=small_soc.name, width=16),
        ]
        with pytest.raises(EngineError):
            run_jobs(jobs, context)


class TestSerialParallelEquality:
    @pytest.fixture
    def context_and_jobs(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        jobs = expand_config_jobs(
            small_soc.name,
            12,
            config_grid(SMALL_PERCENTS, SMALL_DELTAS, SMALL_SLACKS),
            group=(small_soc.name, 12),
        )
        return context, jobs

    def test_parallel_results_bit_identical_to_serial(self, context_and_jobs):
        context, jobs = context_and_jobs
        serial = run_jobs(jobs, context, workers=0)
        parallel = run_jobs(jobs, context, workers=3)
        assert len(serial) == len(parallel) == len(jobs)
        for left, right in zip(serial, parallel):
            assert left == right  # JobResult equality ignores wall_time/worker
            assert left.schedule == right.schedule
            assert left.schedule.segments == right.schedule.segments

    def test_best_schedule_grid_matches_best_schedule(self, small_soc):
        reference = best_schedule(
            small_soc,
            12,
            percents=SMALL_PERCENTS,
            deltas=SMALL_DELTAS,
            slacks=SMALL_SLACKS,
        )
        for workers in (0, 1, 3):
            candidate = best_schedule_grid(
                small_soc,
                12,
                percents=SMALL_PERCENTS,
                deltas=SMALL_DELTAS,
                slacks=SMALL_SLACKS,
                workers=workers,
            )
            assert candidate == reference

    def test_parallel_tam_sweep_matches_serial_sweep(self, small_soc):
        widths = tuple(range(4, 17, 4))
        reference = sweep_tam_widths(small_soc, widths)
        for workers in (0, 2):
            assert parallel_tam_sweep(small_soc, widths, workers=workers) == reference

    def test_run_table1_identical_across_worker_counts(self, small_soc):
        kwargs = dict(
            widths=(8, 12),
            percents=SMALL_PERCENTS,
            deltas=SMALL_DELTAS,
            slacks=SMALL_SLACKS,
        )
        serial = run_table1(small_soc, workers=0, **kwargs)
        parallel = run_table1(small_soc, workers=4, **kwargs)
        assert serial == parallel

    def test_run_table2_identical_across_worker_counts(self, small_soc):
        widths = tuple(range(4, 17, 4))
        serial_rows, serial_sweep = run_table2(
            small_soc, alphas=(0.25, 0.75), widths=widths, workers=0
        )
        parallel_rows, parallel_sweep = run_table2(
            small_soc, alphas=(0.25, 0.75), widths=widths, workers=2
        )
        assert serial_rows == parallel_rows
        assert serial_sweep == parallel_sweep

    def test_constrained_modes_identical_across_worker_counts(self, small_soc):
        constraints = mode_constraint_sets(small_soc)
        context = EngineContext.for_soc(small_soc, constraints)
        jobs = []
        for mode in (None, "preemptive", "power_constrained"):
            jobs.extend(
                expand_config_jobs(
                    small_soc.name,
                    10,
                    config_grid((1, 5), (0, 2), (3,)),
                    constraints_key=mode,
                    group=(mode,),
                    start_index=len(jobs),
                )
            )
        serial = run_jobs(jobs, context, workers=0)
        parallel = run_jobs(jobs, context, workers=3)
        assert tuple(serial) == tuple(parallel)
        assert serial.best_by_group() == parallel.best_by_group()


class TestWorkerEdgeCases:
    def test_empty_job_list(self, small_soc):
        results = run_jobs([], EngineContext.for_soc(small_soc), workers=4)
        assert len(results) == 0
        assert list(results) == []

    def test_negative_workers_rejected(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        job = ScheduleJob(index=0, soc=small_soc.name, width=8)
        with pytest.raises(EngineError):
            run_jobs([job], context, workers=-1)

    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_single_job(self, small_soc, workers):
        context = EngineContext.for_soc(small_soc)
        job = ScheduleJob(index=0, soc=small_soc.name, width=8)
        results = run_jobs([job], context, workers=workers)
        assert len(results) == 1
        assert results[0].makespan == results[0].schedule.makespan > 0

    def test_more_workers_than_jobs(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        jobs = [
            ScheduleJob(index=i, soc=small_soc.name, width=width)
            for i, width in enumerate((6, 10))
        ]
        capped = run_jobs(jobs, context, workers=64)
        serial = run_jobs(jobs, context, workers=0)
        assert tuple(capped) == tuple(serial)


def _result_with(index, group, makespan):
    """A synthetic JobResult for aggregation tests (no scheduling involved)."""
    job = ScheduleJob(index=index, soc="s", width=4, group=group)
    schedule = TestSchedule(soc_name="s", total_width=4, segments=())
    return JobResult(job=job, makespan=makespan, data_volume=0, schedule=schedule)


class TestResults:
    def test_best_by_group_tie_breaks_on_job_index(self):
        results = SweepResults(
            (
                _result_with(2, ("g",), 100),
                _result_with(0, ("g",), 100),
                _result_with(1, ("g",), 200),
            )
        )
        best = results.best_by_group()
        assert best[("g",)].job.index == 0

    def test_results_sorted_by_job_index(self):
        results = SweepResults((_result_with(1, (), 5), _result_with(0, (), 3)))
        assert [result.job.index for result in results] == [0, 1]

    def test_groups_and_best_for_group(self):
        results = SweepResults(
            (_result_with(0, ("a",), 7), _result_with(1, ("b",), 9))
        )
        assert results.groups == [("a",), ("b",)]
        assert results.best_for_group(("b",)).makespan == 9
        with pytest.raises(EngineError):
            results.best_for_group(("missing",))

    def test_csv_and_json_export(self, tmp_path, small_soc):
        context = EngineContext.for_soc(small_soc)
        jobs = [
            ScheduleJob(
                index=i,
                soc=small_soc.name,
                width=width,
                group=("export",),
                tags=(("mode", "non_preemptive"),),
            )
            for i, width in enumerate((6, 10))
        ]
        results = run_jobs(jobs, context, workers=0)
        csv_text = results.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("index,soc,width,percent,delta")
        assert lines[0].endswith(",mode")
        assert len(lines) == 3
        records = json.loads(results.to_json())
        assert [record["width"] for record in records] == [6, 10]
        assert all(record["mode"] == "non_preemptive" for record in records)
        assert all(record["makespan"] > 0 for record in records)

        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        results.save_csv(csv_path)
        results.save_json(json_path)
        assert csv_path.read_text(encoding="utf-8") == csv_text
        assert json.loads(json_path.read_text(encoding="utf-8")) == records


class TestCollectionHygiene:
    def test_collect_only_reports_no_errors_or_warnings(self):
        """The seed suite had 8 collection errors; collection must stay clean."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "pytest", "--collect-only", "-q"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ERROR" not in result.stdout
        assert "PytestCollectionWarning" not in result.stdout

"""Tests for the seeded synthetic SOC generator (repro.soc.generator)."""

import pytest

from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import schedule_soc
from repro.soc.generator import GeneratorProfile, generate_soc, generate_soc_family


class TestGeneratorProfile:
    def test_defaults_valid(self):
        profile = GeneratorProfile()
        assert profile.min_cores <= profile.max_cores

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_cores": 0},
            {"min_cores": 10, "max_cores": 5},
            {"min_patterns": 0},
            {"max_scan_chains": 0},
            {"min_io": 0},
            {"bidir_fraction": 1.5},
            {"hierarchy_fraction": -0.1},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorProfile(**kwargs)


class TestGenerateSoc:
    def test_deterministic_for_seed(self):
        assert generate_soc(7) == generate_soc(7)

    def test_different_seeds_differ(self):
        assert generate_soc(1) != generate_soc(2)

    def test_respects_core_count_bounds(self):
        profile = GeneratorProfile(min_cores=3, max_cores=5)
        for seed in range(10):
            soc = generate_soc(seed, profile=profile)
            assert 3 <= len(soc) <= 5

    def test_scan_cells_within_bounds(self):
        profile = GeneratorProfile(max_scan_cells=500, combinational_fraction=0.0)
        for seed in range(5):
            soc = generate_soc(seed, profile=profile)
            for core in soc.cores:
                assert core.scan_cells <= 500

    def test_custom_name(self):
        assert generate_soc(3, name="mysoc").name == "mysoc"

    def test_hierarchy_and_bist_fractions(self):
        profile = GeneratorProfile(
            min_cores=12, max_cores=12, hierarchy_fraction=0.6, bist_fraction=0.6
        )
        soc = generate_soc(11, profile=profile)
        assert any(core.parent is not None for core in soc.cores)
        assert any(core.bist_resource is not None for core in soc.cores)

    def test_generated_socs_are_schedulable(self):
        profile = GeneratorProfile(min_cores=4, max_cores=6, max_scan_cells=800, max_patterns=60)
        for seed in range(3):
            soc = generate_soc(seed, profile=profile)
            schedule = schedule_soc(soc, 16)
            schedule.validate(soc)
            assert schedule.makespan >= lower_bound(soc, 16)


class TestGenerateFamily:
    def test_family_size_and_names(self):
        family = generate_soc_family(range(3), name_prefix="fam")
        assert len(family) == 3
        assert [soc.name for soc in family] == ["fam-0", "fam-1", "fam-2"]

    def test_family_shares_profile(self):
        profile = GeneratorProfile(min_cores=2, max_cores=2)
        family = generate_soc_family(range(4), profile=profile)
        assert all(len(soc) == 2 for soc in family)

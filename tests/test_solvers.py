"""Tests for the unified solver registry (repro.solvers).

Covers the ISSUE's acceptance criteria: every registered solver runs
through ``Session.solve(ScheduleRequest(...))`` with makespans identical to
the legacy free functions, the legacy functions survive as deprecated
shims, every solver output validates structurally, and the session's
Pareto rectangle cache is shared across solvers and widths.
"""

import warnings

import pytest

from repro.baselines.exact import exhaustive_schedule
from repro.baselines.fixed_width import fixed_width_schedule
from repro.baselines.shelf import shelf_schedule
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import best_schedule, schedule_soc
from repro.engine.jobs import EngineContext, ScheduleJob
from repro.engine.runner import run_jobs
from repro.schedule.schedule import ScheduleError, ScheduleSegment, TestSchedule
from repro.soc.benchmarks import p93791
from repro.solvers import (
    ScheduleRequest,
    Session,
    Solver,
    SolverCapabilities,
    SolverError,
    SolverRegistry,
    default_registry,
    register_solver,
)

BUILTIN_SOLVERS = ("best", "exhaustive", "fixed-width", "lower-bound", "paper", "shelf")

# Cheap grid for "best"-solver equality tests (the full default grid is the
# paper's 63-point protocol; 4 points are enough to prove the plumbing).
SMALL_GRID = {"percents": (1, 25), "deltas": (0,), "slacks": (3, 6)}


@pytest.fixture(scope="module")
def session():
    """One session for the whole module, so cache sharing is exercised."""
    return Session()


@pytest.fixture(scope="module")
def p93791_soc_module():
    return p93791()


def _legacy(func, *args, **kwargs):
    """Call a deprecated shim with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return func(*args, **kwargs)


class TestRegistry:
    def test_builtin_solvers_registered(self):
        assert tuple(default_registry().names()) == BUILTIN_SOLVERS

    def test_name_normalization(self):
        registry = default_registry()
        assert "fixed_width" in registry
        assert "FIXED-WIDTH" in registry
        assert registry.info("fixed_width").name == "fixed-width"

    def test_unknown_solver_raises_with_known_names(self, session, small_soc):
        request = ScheduleRequest(soc=small_soc, total_width=8, solver="bogus")
        with pytest.raises(SolverError, match="paper"):
            session.solve(request)

    def test_duplicate_registration_raises(self):
        registry = SolverRegistry()
        caps = SolverCapabilities(description="x")
        registry.register("dup", lambda session: None, caps)
        with pytest.raises(SolverError, match="already registered"):
            registry.register("dup", lambda session: None, caps)
        registry.register("dup", lambda session: None, caps, replace=True)

    def test_capabilities_metadata(self):
        registry = default_registry()
        assert registry.capabilities_of("paper").supports_constraints
        assert registry.capabilities_of("paper").supports_power
        assert not registry.capabilities_of("shelf").supports_constraints
        assert registry.capabilities_of("exhaustive").exact
        assert not registry.capabilities_of("lower-bound").produces_schedule

    def test_custom_solver_registration(self, small_soc):
        """The README's ~10-line example: a custom solver in a local registry."""
        registry = SolverRegistry()

        @register_solver(
            "serial",
            capabilities=SolverCapabilities(description="all cores one after another"),
            registry=registry,
        )
        class SerialSolver(Solver):
            def solve(self, request):
                sets = self.rectangle_sets(request.soc, request.total_width)
                clock, segments = 0, []
                for name, rect in sets.items():
                    width = rect.effective_width(request.total_width)
                    end = clock + rect.time_at(width)
                    segments.append(
                        ScheduleSegment(core=name, start=clock, end=end, width=width)
                    )
                    clock = end
                schedule = TestSchedule(
                    soc_name=request.soc.name,
                    total_width=request.total_width,
                    segments=tuple(segments),
                )
                return self.schedule_result(request, schedule)

        session = Session(registry=registry)
        result = session.solve(
            ScheduleRequest(soc=small_soc, total_width=8, solver="serial")
        )
        assert result.makespan > 0
        result.schedule.validate(small_soc)
        # The default registry is untouched by the local registration.
        assert "serial" not in default_registry()


class TestSolverEquivalence:
    """Registry results must be identical to the legacy entry points."""

    @pytest.mark.parametrize("width", (16, 32, 64))
    def test_paper_matches_schedule_soc_on_d695(self, session, d695_soc, width):
        result = session.solve(ScheduleRequest(soc=d695_soc, total_width=width))
        legacy = _legacy(schedule_soc, d695_soc, width)
        assert result.schedule == legacy
        assert result.makespan == legacy.makespan

    @pytest.mark.parametrize("width", (16, 32, 64))
    def test_paper_matches_schedule_soc_on_p93791(
        self, session, p93791_soc_module, width
    ):
        result = session.solve(
            ScheduleRequest(soc=p93791_soc_module, total_width=width)
        )
        legacy = _legacy(schedule_soc, p93791_soc_module, width)
        assert result.schedule == legacy

    @pytest.mark.parametrize("width", (16, 32, 64))
    def test_fixed_width_matches_legacy(self, session, d695_soc, width):
        result = session.solve(
            ScheduleRequest(soc=d695_soc, total_width=width, solver="fixed-width")
        )
        legacy = _legacy(fixed_width_schedule, d695_soc, width)
        assert result.makespan == legacy.makespan
        assert result.schedule == legacy.schedule
        assert tuple(result.metadata["bus_widths"]) == legacy.bus_widths
        assert result.metadata["assignment"] == legacy.assignment

    @pytest.mark.parametrize("width", (16, 32, 64))
    def test_fixed_width_matches_legacy_on_p93791(
        self, session, p93791_soc_module, width
    ):
        result = session.solve(
            ScheduleRequest(
                soc=p93791_soc_module, total_width=width, solver="fixed-width"
            )
        )
        legacy = _legacy(fixed_width_schedule, p93791_soc_module, width)
        assert result.makespan == legacy.makespan
        assert result.schedule == legacy.schedule

    @pytest.mark.parametrize("width", (16, 32, 64))
    def test_shelf_matches_legacy(self, session, d695_soc, width):
        result = session.solve(
            ScheduleRequest(soc=d695_soc, total_width=width, solver="shelf")
        )
        assert result.schedule == _legacy(shelf_schedule, d695_soc, width)

    @pytest.mark.parametrize("width", (16, 32, 64))
    def test_shelf_matches_legacy_on_p93791(self, session, p93791_soc_module, width):
        result = session.solve(
            ScheduleRequest(soc=p93791_soc_module, total_width=width, solver="shelf")
        )
        assert result.schedule == _legacy(shelf_schedule, p93791_soc_module, width)

    def test_exhaustive_matches_legacy(self, session, small_soc):
        result = session.solve(
            ScheduleRequest(soc=small_soc, total_width=8, solver="exhaustive")
        )
        assert result.schedule == _legacy(exhaustive_schedule, small_soc, 8)

    def test_exhaustive_refuses_large_socs_like_legacy(self, session, d695_soc):
        request = ScheduleRequest(soc=d695_soc, total_width=16, solver="exhaustive")
        # The refusal surfaces as SolverError (which is still a ValueError,
        # like the legacy function raised), so callers handle one type.
        with pytest.raises(SolverError, match="limited to"):
            session.solve(request)

    def test_infeasible_constraints_normalised_to_solver_error(self, d695_soc):
        from repro.soc.constraints import ConstraintSet

        session = Session()
        request = ScheduleRequest(
            soc=d695_soc, total_width=32, constraints=ConstraintSet(power_max=0.5)
        )
        # The scheduler's SchedulerError surfaces as SolverError, so callers
        # (and the CLI) handle every solver refusal through one type.
        with pytest.raises(SolverError, match="power budget"):
            session.solve(request)

    def test_mismatched_rectangle_sets_rejected(self, small_soc):
        from repro.core.rectangles import build_rectangle_sets
        from repro.core.scheduler import run_paper_scheduler

        wrong = build_rectangle_sets(small_soc, max_width=16)
        with pytest.raises(ValueError, match="max_width"):
            run_paper_scheduler(small_soc, 8, rectangle_sets=wrong)

    def test_best_matches_legacy_grid(self, session, d695_soc):
        result = session.solve(
            ScheduleRequest(
                soc=d695_soc, total_width=32, solver="best", options=SMALL_GRID
            )
        )
        legacy = _legacy(best_schedule, d695_soc, 32, **SMALL_GRID)
        assert result.schedule == legacy
        assert result.metadata["grid_points"] == 4

    def test_lower_bound_matches_legacy(self, session, d695_soc):
        result = session.solve(
            ScheduleRequest(soc=d695_soc, total_width=32, solver="lower-bound")
        )
        assert result.makespan == lower_bound(d695_soc, 32)
        assert result.schedule is None
        assert result.is_bound
        assert result.makespan == max(
            result.metadata["area_bound"], result.metadata["bottleneck_bound"]
        )

    def test_paper_with_constraints_matches_legacy(self, small_soc):
        from repro.soc.constraints import ConstraintSet

        constraints = ConstraintSet.for_soc(
            small_soc,
            precedence=[("alpha", "delta")],
            concurrency=[("beta", "gamma")],
            power_max=200.0,
            max_preemptions={"gamma": 2},
        )
        session = Session()
        result = session.solve(
            ScheduleRequest(soc=small_soc, total_width=8, constraints=constraints)
        )
        legacy = _legacy(schedule_soc, small_soc, 8, constraints=constraints)
        assert result.schedule == legacy


class TestSolverOutputsValidate:
    """Satellite: every solver's output passes TestSchedule.validate()."""

    def test_every_schedule_producing_solver_validates(self, small_soc):
        session = Session()
        for name in session.solvers():
            result = session.solve(
                ScheduleRequest(soc=small_soc, total_width=8, solver=name)
            )
            if result.schedule is None:
                continue
            result.schedule.validate(small_soc)  # completeness + structure
            result.schedule.validate()  # zero-argument structural form

    def test_session_rejects_invalid_solver_output(self, small_soc):
        registry = SolverRegistry()

        @register_solver(
            "overbooked",
            capabilities=SolverCapabilities(description="exceeds the TAM"),
            registry=registry,
        )
        class OverbookedSolver(Solver):
            def solve(self, request):
                segments = tuple(
                    ScheduleSegment(
                        core=core.name, start=0, end=10, width=request.total_width
                    )
                    for core in request.soc.cores
                )
                schedule = TestSchedule(
                    soc_name=request.soc.name,
                    total_width=request.total_width,
                    segments=segments,
                )
                return self.schedule_result(request, schedule)

        session = Session(registry=registry)
        with pytest.raises(ScheduleError, match="TAM width exceeded"):
            session.solve(
                ScheduleRequest(soc=small_soc, total_width=4, solver="overbooked")
            )

    def test_validate_zero_arg_catches_overlap(self):
        schedule = TestSchedule(
            soc_name="x",
            total_width=4,
            segments=(
                ScheduleSegment(core="a", start=0, end=10, width=3),
                ScheduleSegment(core="b", start=5, end=15, width=3),
            ),
        )
        with pytest.raises(ScheduleError, match="TAM width exceeded"):
            schedule.validate()


class TestDeprecatedShims:
    """Satellite: legacy functions warn and agree with the registry on d695."""

    def test_schedule_soc_warns_and_matches_registry(self, d695_soc):
        session = Session()
        registry_result = session.solve(
            ScheduleRequest(soc=d695_soc, total_width=32)
        )
        with pytest.warns(DeprecationWarning, match="schedule_soc"):
            shim = schedule_soc(d695_soc, 32)
        assert shim == registry_result.schedule

    def test_best_schedule_warns_and_matches_registry(self, d695_soc):
        session = Session()
        registry_result = session.solve(
            ScheduleRequest(
                soc=d695_soc, total_width=16, solver="best", options=SMALL_GRID
            )
        )
        with pytest.warns(DeprecationWarning, match="best_schedule"):
            shim = best_schedule(d695_soc, 16, **SMALL_GRID)
        assert shim == registry_result.schedule

    def test_fixed_width_schedule_warns_and_matches_registry(self, d695_soc):
        session = Session()
        registry_result = session.solve(
            ScheduleRequest(soc=d695_soc, total_width=32, solver="fixed-width")
        )
        with pytest.warns(DeprecationWarning, match="fixed_width_schedule"):
            shim = fixed_width_schedule(d695_soc, 32)
        assert shim.schedule == registry_result.schedule

    def test_shelf_schedule_warns_and_matches_registry(self, d695_soc):
        session = Session()
        registry_result = session.solve(
            ScheduleRequest(soc=d695_soc, total_width=32, solver="shelf")
        )
        with pytest.warns(DeprecationWarning, match="shelf_schedule"):
            shim = shelf_schedule(d695_soc, 32)
        assert shim == registry_result.schedule

    def test_exhaustive_schedule_warns_and_matches_registry(self, small_soc):
        session = Session()
        registry_result = session.solve(
            ScheduleRequest(soc=small_soc, total_width=8, solver="exhaustive")
        )
        with pytest.warns(DeprecationWarning, match="exhaustive_schedule"):
            shim = exhaustive_schedule(small_soc, 8)
        assert shim == registry_result.schedule


class TestSessionCache:
    def test_cache_shared_across_solvers_and_widths(self, d695_soc):
        session = Session()
        for solver in ("paper", "shelf", "fixed-width", "lower-bound"):
            for width in (16, 32):
                session.solve(
                    ScheduleRequest(soc=d695_soc, total_width=width, solver=solver)
                )
        info = session.cache_info()
        # All four solvers build their rectangles at max_core_width=64, so
        # one miss fills the cache for everything else.
        assert info.entries == 1
        assert info.misses == 1
        assert info.hits == 7

    def test_clear_cache_resets_statistics(self, d695_soc):
        session = Session()
        session.solve(ScheduleRequest(soc=d695_soc, total_width=16))
        session.clear_cache()
        info = session.cache_info()
        assert (info.hits, info.misses, info.entries) == (0, 0, 0)

    def test_wall_time_is_stamped(self, small_soc):
        session = Session()
        result = session.solve(ScheduleRequest(soc=small_soc, total_width=8))
        assert result.wall_time > 0

    def test_unknown_option_raises(self, session, small_soc):
        request = ScheduleRequest(
            soc=small_soc, total_width=8, solver="shelf", options={"bogus": 1}
        )
        with pytest.raises(SolverError, match="bogus"):
            session.solve(request)


class TestEngineIntegration:
    """Engine jobs run through Session.solve and can name any solver."""

    def test_job_with_shelf_solver(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        jobs = [
            ScheduleJob(index=0, soc=small_soc.name, width=8, solver="shelf"),
            ScheduleJob(index=1, soc=small_soc.name, width=8),
        ]
        results = run_jobs(jobs, context, workers=0)
        assert results[0].schedule == _legacy(shelf_schedule, small_soc, 8)
        assert results[1].schedule == _legacy(schedule_soc, small_soc, 8)

    def test_bound_only_solver_rejected_as_job(self, small_soc):
        from repro.engine.jobs import EngineError

        context = EngineContext.for_soc(small_soc)
        jobs = [ScheduleJob(index=0, soc=small_soc.name, width=8, solver="lower-bound")]
        with pytest.raises(EngineError, match="no schedule"):
            run_jobs(jobs, context, workers=0)

    def test_csv_records_carry_solver_column(self, small_soc):
        context = EngineContext.for_soc(small_soc)
        jobs = [ScheduleJob(index=0, soc=small_soc.name, width=8, solver="shelf")]
        results = run_jobs(jobs, context, workers=0)
        records = results.to_records()
        assert records[0]["solver"] == "shelf"
        assert ",solver," in results.to_csv().splitlines()[0]

"""Unit tests for the Core data model (repro.soc.core)."""

import pytest

from repro.soc.core import Core, total_test_bits


class TestCoreConstruction:
    def test_basic_fields(self):
        core = Core("c1", inputs=3, outputs=4, bidirs=2, patterns=7, scan_chains=(5, 6))
        assert core.name == "c1"
        assert core.inputs == 3
        assert core.outputs == 4
        assert core.bidirs == 2
        assert core.patterns == 7
        assert core.scan_chains == (5, 6)

    def test_scan_chains_are_normalised_to_tuple(self):
        core = Core("c1", inputs=1, outputs=1, patterns=1, scan_chains=[3, 4])
        assert isinstance(core.scan_chains, tuple)
        assert core.scan_chains == (3, 4)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Core("", inputs=1, outputs=1, patterns=1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            Core("c", inputs=-1, outputs=1, patterns=1)

    def test_negative_outputs_rejected(self):
        with pytest.raises(ValueError):
            Core("c", inputs=1, outputs=-1, patterns=1)

    def test_zero_patterns_rejected(self):
        with pytest.raises(ValueError):
            Core("c", inputs=1, outputs=1, patterns=0)

    def test_non_positive_scan_chain_rejected(self):
        with pytest.raises(ValueError):
            Core("c", inputs=1, outputs=1, patterns=1, scan_chains=(0,))

    def test_core_without_terminals_rejected(self):
        with pytest.raises(ValueError):
            Core("c", inputs=0, outputs=0, bidirs=0, patterns=1, scan_chains=())

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Core("c", inputs=1, outputs=1, patterns=1, power=-2.0)

    def test_core_is_hashable_and_frozen(self):
        core = Core("c", inputs=1, outputs=1, patterns=1)
        assert hash(core) == hash(Core("c", inputs=1, outputs=1, patterns=1))
        with pytest.raises(AttributeError):
            core.inputs = 5  # type: ignore[misc]


class TestDerivedQuantities:
    def test_scan_cells(self):
        core = Core("c", inputs=1, outputs=1, patterns=1, scan_chains=(5, 7, 9))
        assert core.scan_cells == 21
        assert core.num_scan_chains == 3

    def test_combinational_detection(self):
        comb = Core.combinational("c", inputs=3, outputs=3, patterns=4)
        assert comb.is_combinational
        seq = Core("s", inputs=3, outputs=3, patterns=4, scan_chains=(2,))
        assert not seq.is_combinational

    def test_wrapper_cell_counts_include_bidirs(self):
        core = Core("c", inputs=3, outputs=4, bidirs=2, patterns=1, scan_chains=(5,))
        assert core.wrapper_input_cells == 5
        assert core.wrapper_output_cells == 6

    def test_test_bits_per_pattern(self):
        core = Core("c", inputs=3, outputs=4, bidirs=2, patterns=1, scan_chains=(5,))
        # stimulus = 3 + 2 + 5, response = 4 + 2 + 5
        assert core.test_bits_per_pattern == 10 + 11

    def test_total_test_bits_scales_with_patterns(self):
        core = Core("c", inputs=3, outputs=4, patterns=10, scan_chains=(5,))
        assert core.total_test_bits == core.test_bits_per_pattern * 10

    def test_default_power_is_bits_per_pattern(self):
        core = Core("c", inputs=3, outputs=4, patterns=10, scan_chains=(5,))
        assert core.test_power == float(core.test_bits_per_pattern)

    def test_explicit_power_overrides_default(self):
        core = Core("c", inputs=3, outputs=4, patterns=10, power=123.0)
        assert core.test_power == 123.0

    def test_with_power_returns_new_core(self):
        core = Core("c", inputs=3, outputs=4, patterns=10)
        powered = core.with_power(9.0)
        assert powered.test_power == 9.0
        assert core.power is None
        assert powered.name == core.name


class TestConstructors:
    def test_balanced_scan_splits_evenly(self):
        core = Core.balanced_scan("c", inputs=1, outputs=1, patterns=1, scan_cells=10, num_chains=4)
        assert sorted(core.scan_chains, reverse=True) == [3, 3, 2, 2]
        assert core.scan_cells == 10

    def test_balanced_scan_exact_division(self):
        core = Core.balanced_scan("c", inputs=1, outputs=1, patterns=1, scan_cells=12, num_chains=4)
        assert core.scan_chains == (3, 3, 3, 3)

    def test_balanced_scan_rejects_more_chains_than_cells(self):
        with pytest.raises(ValueError):
            Core.balanced_scan("c", inputs=1, outputs=1, patterns=1, scan_cells=2, num_chains=4)

    def test_balanced_scan_rejects_zero_chains(self):
        with pytest.raises(ValueError):
            Core.balanced_scan("c", inputs=1, outputs=1, patterns=1, scan_cells=2, num_chains=0)

    def test_replace(self):
        core = Core("c", inputs=3, outputs=4, patterns=10)
        other = core.replace(patterns=20)
        assert other.patterns == 20
        assert other.inputs == 3

    def test_describe_mentions_name_and_patterns(self):
        core = Core("mycore", inputs=3, outputs=4, patterns=10, scan_chains=(5, 5))
        text = core.describe()
        assert "mycore" in text
        assert "10 patterns" in text
        assert "2 scan chains" in text

    def test_describe_combinational(self):
        core = Core.combinational("comb", inputs=3, outputs=4, patterns=10)
        assert "combinational" in core.describe()


def test_total_test_bits_helper():
    cores = [
        Core("a", inputs=1, outputs=1, patterns=2),
        Core("b", inputs=2, outputs=2, patterns=3),
    ]
    assert total_test_bits(cores) == sum(c.total_test_bits for c in cores)

"""Tests of the benchmark SOCs and their calibration against the paper.

The lower-bound checks encode the calibration targets from DESIGN.md
section 5: d695 reproduces the paper's Table 1 lower bounds almost exactly,
and the synthetic Philips stand-ins reproduce them to within a few percent.
"""

import pytest

from repro.core.lower_bounds import lower_bound
from repro.soc.benchmarks import d695, get_benchmark, list_benchmarks, p22810, p34392, p93791
from repro.wrapper.pareto import minimum_testing_time, pareto_points


class TestRegistry:
    def test_list_benchmarks(self):
        assert set(list_benchmarks()) == {"d695", "p22810", "p34392", "p93791"}

    @pytest.mark.parametrize("name", ["d695", "p22810", "p34392", "p93791"])
    def test_get_benchmark_by_name(self, name):
        soc = get_benchmark(name)
        assert soc.name == name

    def test_get_benchmark_case_insensitive(self):
        assert get_benchmark("D695").name == "d695"

    def test_get_benchmark_unknown(self):
        with pytest.raises(KeyError):
            get_benchmark("p12345")

    def test_builders_return_fresh_equal_objects(self):
        assert d695() == d695()
        assert d695() is not d695()


class TestD695:
    def test_core_count_and_names(self, d695_soc):
        assert len(d695_soc) == 10
        assert "s38417" in d695_soc
        assert "c6288" in d695_soc

    def test_combinational_cores(self, d695_soc):
        assert d695_soc.core("c6288").is_combinational
        assert d695_soc.core("c7552").is_combinational
        assert not d695_soc.core("s38417").is_combinational

    def test_scan_volume(self, d695_soc):
        # Published d695 structural data: ~1.2e6 stimulus+response bits, i.e.
        # ~6.6e5 TAM wire-cycles of scan-in dominated transfer.
        assert 1.1e6 < d695_soc.total_test_bits < 1.4e6

    @pytest.mark.parametrize(
        "width,paper_lb",
        [(16, 41232), (32, 20616), (48, 13744), (64, 10308)],
    )
    def test_lower_bounds_match_paper(self, d695_soc, width, paper_lb):
        ours = lower_bound(d695_soc, width)
        assert abs(ours - paper_lb) / paper_lb < 0.01


class TestPhilipsStandIns:
    @pytest.mark.parametrize(
        "builder,cores", [(p22810, 24), (p34392, 19), (p93791, 32)]
    )
    def test_core_counts(self, builder, cores):
        assert len(builder()) == cores

    @pytest.mark.parametrize(
        "builder,width,paper_lb,tolerance",
        [
            (p22810, 16, 421473, 0.03),
            (p22810, 64, 105369, 0.03),
            (p34392, 16, 936882, 0.03),
            (p34392, 32, 544579, 0.03),
            (p93791, 16, 1749388, 0.03),
            (p93791, 64, 437347, 0.03),
        ],
    )
    def test_lower_bounds_close_to_paper(self, builder, width, paper_lb, tolerance):
        soc = builder()
        ours = lower_bound(soc, width)
        assert abs(ours - paper_lb) / paper_lb < tolerance

    def test_p34392_core18_is_the_bottleneck(self, p34392_soc):
        """Core 18 saturates around 5.45e5 cycles and dominates the wide-TAM LB."""
        core18 = p34392_soc.core("Core 18")
        t_min = minimum_testing_time(core18, 64)
        assert abs(t_min - 544579) / 544579 < 0.01
        others = [minimum_testing_time(c, 64) for c in p34392_soc.cores if c.name != "Core 18"]
        assert max(others) < t_min
        assert lower_bound(p34392_soc, 32) == t_min

    def test_p93791_core6_staircase_saturates_near_47(self, p93791_soc):
        """Figure 1: the Core 6 staircase flattens at a Pareto width near 47."""
        core6 = p93791_soc.core("Core 6")
        points = pareto_points(core6, 64)
        assert 44 <= points[-1].width <= 50
        # Saturated testing time within ~2 % of the paper's 114317 cycles.
        assert abs(points[-1].time - 114317) / 114317 < 0.02

    def test_all_core_names_unique_pattern(self, p93791_soc):
        assert p93791_soc.core_names[0] == "Core 1"
        assert p93791_soc.core_names[-1] == "Core 32"

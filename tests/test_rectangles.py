"""Unit tests for rectangle sets (repro.core.rectangles)."""

import pytest

from repro.core.rectangles import Rectangle, RectangleSet, build_rectangle_sets
from repro.soc.core import Core
from repro.wrapper.design_wrapper import testing_time
from repro.wrapper.pareto import pareto_points


@pytest.fixture
def core():
    return Core("c", inputs=10, outputs=14, patterns=9, scan_chains=(12, 8, 8, 4))


class TestRectangle:
    def test_area(self):
        rect = Rectangle(core="c", width=4, time=100)
        assert rect.area == 400


class TestRectangleSet:
    def test_points_match_pareto_module(self, core):
        rect_set = RectangleSet(core, max_width=32)
        assert list(rect_set.points) == pareto_points(core, 32)

    def test_rejects_bad_max_width(self, core):
        with pytest.raises(ValueError):
            RectangleSet(core, max_width=0)

    def test_rectangles_are_one_per_point(self, core):
        rect_set = RectangleSet(core, max_width=32)
        assert len(rect_set.rectangles) == len(rect_set)
        for rect, point in zip(rect_set.rectangles, rect_set.points):
            assert rect.width == point.width
            assert rect.time == point.time
            assert rect.core == core.name

    def test_effective_width_snaps_down(self, core):
        rect_set = RectangleSet(core, max_width=64)
        widths = [p.width for p in rect_set.points]
        for query in range(1, 40):
            expected = max(w for w in widths if w <= query)
            assert rect_set.effective_width(query) == expected

    def test_effective_width_rejects_zero(self, core):
        with pytest.raises(ValueError):
            RectangleSet(core).effective_width(0)

    def test_time_at_matches_wrapper_time(self, core):
        rect_set = RectangleSet(core, max_width=64)
        for width in (1, 2, 5, 9, 17, 33, 64):
            assert rect_set.time_at(width) == testing_time(core, width)

    def test_min_time_and_max_pareto_width(self, core):
        rect_set = RectangleSet(core, max_width=64)
        assert rect_set.min_time == rect_set.time_at(64)
        assert rect_set.time_at(rect_set.max_pareto_width) == rect_set.min_time

    def test_min_area(self, core):
        rect_set = RectangleSet(core, max_width=64)
        assert rect_set.min_area == min(p.width * p.time for p in rect_set.points)

    def test_preferred_width_respects_cap(self, core):
        rect_set = RectangleSet(core, max_width=64)
        width = rect_set.preferred_width(percent=5, delta=0, width_cap=6)
        assert width <= 6

    def test_preferred_width_is_pareto(self, core):
        rect_set = RectangleSet(core, max_width=64)
        width = rect_set.preferred_width(percent=5, delta=2, width_cap=64)
        assert width in {p.width for p in rect_set.points}

    def test_preemption_overhead_positive(self, core):
        rect_set = RectangleSet(core, max_width=64)
        assert rect_set.preemption_overhead(4) > 0

    def test_core_accessors(self, core):
        rect_set = RectangleSet(core, max_width=16)
        assert rect_set.core is core
        assert rect_set.core_name == "c"
        assert rect_set.max_width == 16


class TestBuildRectangleSets:
    def test_one_set_per_core(self, small_soc):
        sets = build_rectangle_sets(small_soc, max_width=16)
        assert set(sets) == set(small_soc.core_names)
        for name, rect_set in sets.items():
            assert rect_set.core_name == name

    def test_respects_max_width(self, small_soc):
        sets = build_rectangle_sets(small_soc, max_width=8)
        for rect_set in sets.values():
            assert rect_set.max_pareto_width <= 8

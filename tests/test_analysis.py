"""Tests for the interprocedural analysis layer and the REP007-REP010 rules.

Covers the three analysis passes (symbol table, call graph, effects
fixpoint) on purpose-built multi-module fixtures -- decorator resolution,
re-exports, registry-dispatch indirection, typed method calls through a
``Session``-style factory -- plus bad/good fixture pairs per rule with
exact (rule, line) and witness-chain assertions, JSON round-trips, and
the meta-test that the shipped tree is REP007-REP010 clean.
"""

import ast
from pathlib import Path

from repro.staticcheck import run_lint
from repro.staticcheck.analysis import (
    CallGraph,
    ProjectAnalysis,
    SymbolTable,
    analyze_paths,
    call_graph_from_json,
    call_graph_to_json,
    effects_from_json,
    effects_to_dict,
    effects_to_json,
    module_name_for,
    propagate_effects,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_project(modules):
    """Build a ProjectAnalysis from {module_name: source} pairs."""
    entries = [
        (name, f"{name.replace('.', '/')}.py", source, ast.parse(source))
        for name, source in sorted(modules.items())
    ]
    return ProjectAnalysis.build(entries)


def lint_fixture(tmp_path, source, select, name="fixture.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return run_lint([path], select=select)


def codes_and_lines(report):
    return [(f.rule, f.line) for f in report.findings]


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
class TestSymbolTable:
    def test_module_name_for(self, tmp_path):
        root = tmp_path / "src"
        (root / "pkg" / "sub").mkdir(parents=True)
        module = root / "pkg" / "sub" / "mod.py"
        package = root / "pkg" / "__init__.py"
        module.touch()
        package.touch()
        assert module_name_for(module, [root]) == "pkg.sub.mod"
        assert module_name_for(package, [root]) == "pkg"
        outside = tmp_path / "fixture.py"
        outside.touch()
        assert module_name_for(outside, [root]) == "fixture"

    def test_imports_and_aliases(self):
        analysis = build_project(
            {
                "pkg.util": "def helper():\n    return 1\n",
                "pkg.main": (
                    "from pkg.util import helper as h\n"
                    "import pkg.util as u\n"
                    "def run():\n"
                    "    return h() + u.helper()\n"
                ),
            }
        )
        table = analysis.table
        assert table.resolve("pkg.main", "h") == "pkg.util.helper"
        assert table.resolve("pkg.main", "u.helper") == "pkg.util.helper"

    def test_reexport_chain_through_package_init(self):
        analysis = build_project(
            {
                "pkg": "from pkg.impl import work\n",
                "pkg.impl": "def work():\n    return 1\n",
                "client": (
                    "from pkg import work\n"
                    "def go():\n"
                    "    return work()\n"
                ),
            }
        )
        table = analysis.table
        assert table.resolve("client", "work") == "pkg.impl.work"
        assert table.resolve_absolute("pkg.work") == "pkg.impl.work"

    def test_relative_imports(self):
        analysis = build_project(
            {
                "pkg.a": "def fa():\n    return 1\n",
                "pkg.b": (
                    "from .a import fa\n"
                    "def fb():\n"
                    "    return fa()\n"
                ),
            }
        )
        assert analysis.table.resolve("pkg.b", "fa") == "pkg.a.fa"

    def test_decorator_resolution(self):
        analysis = build_project(
            {
                "pkg.reg": (
                    "def register_solver(name, capabilities=None):\n"
                    "    def deco(cls):\n"
                    "        return cls\n"
                    "    return deco\n"
                ),
                "pkg.impl": (
                    "from pkg.reg import register_solver as reg\n"
                    "@reg('x', capabilities=object())\n"
                    "class Impl:\n"
                    "    '''Doc.'''\n"
                    "    def solve(self, request):\n"
                    "        return request\n"
                ),
            }
        )
        table = analysis.table
        assert table.classes["pkg.impl.Impl"].decorators == (
            "pkg.reg.register_solver",
        )
        assert table.classes_decorated_by(("register_solver",)) == ["pkg.impl.Impl"]

    def test_method_resolution_through_project_bases(self):
        analysis = build_project(
            {
                "pkg.base": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 1\n"
                ),
                "pkg.child": (
                    "from pkg.base import Base\n"
                    "class Child(Base):\n"
                    "    def own(self):\n"
                    "        return self.shared()\n"
                ),
            }
        )
        table = analysis.table
        assert (
            table.method_of("pkg.child.Child", "shared") == "pkg.base.Base.shared"
        )
        # The self.shared() call resolves through the base class.
        edges = analysis.call_graph.callees("pkg.child.Child.own")
        assert any(e.callee == "pkg.base.Base.shared" for e in edges)

    def test_fork_local_pragma_names(self):
        analysis = build_project(
            {
                "pkg.state": (
                    "BOARD = None  # repro: fork-local\n"
                    "CACHE = {}\n"
                ),
            }
        )
        assert analysis.table.fork_local_names("pkg.state") == {"BOARD"}


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
SESSION_PROJECT = {
    "pkg.registry": (
        "def register_solver(name, capabilities=None):\n"
        "    def deco(cls):\n"
        "        return cls\n"
        "    return deco\n"
    ),
    "pkg.solvers": (
        "from pkg.registry import register_solver\n"
        "@register_solver('alpha', capabilities=object())\n"
        "class Alpha:\n"
        "    '''Alpha.'''\n"
        "    def solve(self, request):\n"
        "        return request\n"
        "@register_solver('beta', capabilities=object())\n"
        "class Beta:\n"
        "    '''Beta.'''\n"
        "    def solve(self, request):\n"
        "        return helper(request)\n"
        "def helper(request):\n"
        "    return request\n"
    ),
    "pkg.session": (
        "from pkg.solvers import Alpha\n"
        "class Session:\n"
        "    def solve(self, request):\n"
        "        solver = Alpha()\n"
        "        return solver.solve(request)\n"
        "def get_default_session() -> Session:\n"
        "    return Session()\n"
    ),
    "pkg.api": (
        "from pkg.session import get_default_session\n"
        "def run_all(requests):\n"
        "    session = get_default_session()\n"
        "    return [session.solve(r) for r in requests]\n"
    ),
}


class TestCallGraph:
    def test_method_call_through_session_factory(self):
        analysis = build_project(SESSION_PROJECT)
        edges = analysis.call_graph.callees("pkg.api.run_all")
        # session = get_default_session() types the receiver via the
        # factory's return annotation, so session.solve resolves.
        assert any(
            e.callee == "pkg.session.Session.solve" and e.kind == "call"
            for e in edges
        )

    def test_registry_dispatch_fans_out(self):
        analysis = build_project(SESSION_PROJECT)
        edges = analysis.call_graph.callees("pkg.api.run_all")
        dispatched = {e.callee for e in edges if e.kind == "dispatch"}
        assert "pkg.solvers.Alpha.solve" in dispatched
        assert "pkg.solvers.Beta.solve" in dispatched

    def test_constructor_typed_receiver(self):
        analysis = build_project(SESSION_PROJECT)
        edges = analysis.call_graph.callees("pkg.session.Session.solve")
        assert any(
            e.callee == "pkg.solvers.Alpha.solve" and e.kind == "call"
            for e in edges
        )

    def test_annotation_typed_receiver(self):
        analysis = build_project(
            {
                "pkg.s": (
                    "class Session:\n"
                    "    def solve(self, request):\n"
                    "        return request\n"
                ),
                "pkg.c": (
                    "from pkg.s import Session\n"
                    "def drive(session: Session, request):\n"
                    "    return session.solve(request)\n"
                ),
            }
        )
        edges = analysis.call_graph.callees("pkg.c.drive")
        assert any(e.callee == "pkg.s.Session.solve" for e in edges)

    def test_entry_points_from_payload_and_initializer(self):
        analysis = build_project(
            {
                "pkg.exec": (
                    "def _execute_task(item):\n"
                    "    return item\n"
                    "def _init_worker():\n"
                    "    pass\n"
                    "def run(pool, mp):\n"
                    "    mp.Pool(2, initializer=_init_worker)\n"
                    "    return list(pool.imap_unordered(_execute_task, [1]))\n"
                ),
            }
        )
        assert analysis.call_graph.entry_points == (
            "pkg.exec._execute_task",
            "pkg.exec._init_worker",
        )

    def test_reachable_witness_chains(self):
        analysis = build_project(SESSION_PROJECT | {
            "pkg.exec": (
                "from pkg.api import run_all\n"
                "def _execute_task(requests):\n"
                "    return run_all(requests)\n"
                "def run(pool, items):\n"
                "    return list(pool.imap_unordered(_execute_task, items))\n"
            ),
        })
        chains = analysis.worker_reachable()
        assert chains["pkg.solvers.helper"] == (
            "pkg.exec._execute_task",
            "pkg.api.run_all",
            "pkg.solvers.Beta.solve",
            "pkg.solvers.helper",
        )

    def test_json_round_trip_and_determinism(self):
        first = build_project(SESSION_PROJECT)
        second = build_project(SESSION_PROJECT)
        payload = call_graph_to_json(first.call_graph)
        assert payload == call_graph_to_json(second.call_graph)
        assert call_graph_from_json(payload) == first.call_graph.to_dict()


# ----------------------------------------------------------------------
# Effects
# ----------------------------------------------------------------------
class TestEffects:
    def test_local_effect_kinds(self):
        analysis = build_project(
            {
                "pkg.fx": (
                    "STATE = {}\n"
                    "COUNT = 0\n"
                    "def writes_global():\n"
                    "    global COUNT\n"
                    "    COUNT += 1\n"
                    "    STATE['k'] = 1\n"
                    "    STATE.update(a=2)\n"
                    "class Box:\n"
                    "    def set(self, v):\n"
                    "        self.v = v\n"
                    "def does_io(path):\n"
                    "    return open(path).read()\n"
                    "def pure(x):\n"
                    "    local = {}\n"
                    "    local['x'] = x\n"
                    "    return local\n"
                ),
            }
        )
        fx = analysis.local_effects
        writer = fx["pkg.fx.writes_global"]
        assert {w.name for w in writer.global_writes} == {"COUNT", "STATE"}
        assert {w.line for w in writer.global_writes} == {5, 6, 7}
        assert fx["pkg.fx.Box.set"].instance_writes == (10,)
        assert fx["pkg.fx.does_io"].io_calls == (12,)
        assert fx["pkg.fx.pure"].is_pure

    def test_local_shadowing_is_not_a_global_write(self):
        analysis = build_project(
            {
                "pkg.fx": (
                    "CACHE = {}\n"
                    "def scratch():\n"
                    "    CACHE = {}\n"
                    "    CACHE['x'] = 1\n"
                    "    return CACHE\n"
                ),
            }
        )
        assert analysis.local_effects["pkg.fx.scratch"].is_pure

    def test_fixpoint_on_mutual_recursion(self):
        analysis = build_project(
            {
                "pkg.rec": (
                    "STATE = {}\n"
                    "def even(n):\n"
                    "    if n == 0:\n"
                    "        return True\n"
                    "    STATE['n'] = n\n"
                    "    return odd(n - 1)\n"
                    "def odd(n):\n"
                    "    if n == 0:\n"
                    "        return False\n"
                    "    return even(n - 1)\n"
                ),
            }
        )
        # odd never writes locally, but its propagated summary absorbs
        # even's write through the 2-cycle (one SCC, single pass).
        assert analysis.local_effects["pkg.rec.odd"].is_pure
        propagated = analysis.effects["pkg.rec.odd"]
        assert [w.name for w in propagated.global_writes] == ["STATE"]
        assert analysis.effects["pkg.rec.even"].global_writes == (
            propagated.global_writes
        )

    def test_propagation_is_transitive_over_chains(self):
        analysis = build_project(
            {
                "pkg.chain": (
                    "LOG = []\n"
                    "def sink(x):\n"
                    "    LOG.append(x)\n"
                    "def mid(x):\n"
                    "    return sink(x)\n"
                    "def top(x):\n"
                    "    return mid(x)\n"
                ),
            }
        )
        assert analysis.local_effects["pkg.chain.top"].is_pure
        assert [w.writer for w in analysis.effects["pkg.chain.top"].global_writes] == [
            "pkg.chain.sink"
        ]

    def test_memoized_detection_is_not_propagated(self):
        analysis = build_project(
            {
                "pkg.memo": (
                    "from functools import lru_cache\n"
                    "@lru_cache(maxsize=None)\n"
                    "def cached(x):\n"
                    "    return x * x\n"
                    "def caller(x):\n"
                    "    return cached(x)\n"
                ),
            }
        )
        assert analysis.local_effects["pkg.memo.cached"].memoized
        assert analysis.effects["pkg.memo.cached"].memoized
        assert not analysis.effects["pkg.memo.caller"].memoized

    def test_effects_json_round_trip(self):
        analysis = build_project(SESSION_PROJECT)
        payload = effects_to_json(analysis.local_effects, analysis.effects)
        assert effects_from_json(payload) == effects_to_dict(
            analysis.local_effects, analysis.effects
        )

    def test_propagate_effects_accepts_prebuilt_graph(self):
        entries = [
            ("m", "m.py", "def f():\n    return g()\ndef g():\n    return 1\n",
             ast.parse("def f():\n    return g()\ndef g():\n    return 1\n")),
        ]
        table = SymbolTable.build(entries)
        graph = CallGraph.build(table)
        effects = propagate_effects(graph)
        assert effects["m.f"].is_pure and effects["m.g"].is_pure


# ----------------------------------------------------------------------
# REP007: worker-reachable mutation
# ----------------------------------------------------------------------
class TestRep007WorkerMutation:
    BAD = (
        "STATE = {}\n"
        "def _execute_task(item):\n"
        "    STATE['last'] = item\n"
        "    return item\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_execute_task, items))\n"
    )
    GOOD = (
        "STATE = {}  # repro: fork-local\n"
        "CACHE = {}\n"
        "def _execute_task(item):\n"
        "    STATE['last'] = item\n"
        "    return item\n"
        "def _init_worker(payload):\n"
        "    CACHE['socs'] = payload\n"
        "def prime_context_caches(pairs):\n"
        "    CACHE['pairs'] = pairs\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_execute_task, items))\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.BAD, ["REP007"])
        assert codes_and_lines(report) == [("REP007", 3)]
        assert report.findings[0].chain == ("fixture._execute_task",)

    def test_good_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD, ["REP007"])
        assert report.findings == ()

    def test_transitive_write_is_anchored_at_the_writer(self, tmp_path):
        source = (
            "BOARD = {}\n"
            "def publish(value):\n"
            "    BOARD['best'] = value\n"
            "def _execute_task(item):\n"
            "    publish(item)\n"
            "    return item\n"
            "def run(pool, items):\n"
            "    return list(pool.imap_unordered(_execute_task, items))\n"
        )
        report = lint_fixture(tmp_path, source, ["REP007"])
        assert codes_and_lines(report) == [("REP007", 3)]
        assert report.findings[0].chain == (
            "fixture._execute_task",
            "fixture.publish",
        )

    def test_suppression_applies_to_project_findings(self, tmp_path):
        source = self.BAD.replace(
            "    STATE['last'] = item\n",
            "    STATE['last'] = item  # repro: noqa REP007\n",
        )
        report = lint_fixture(tmp_path, source, ["REP007"])
        assert report.findings == ()
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# REP008: unprimed worker cache
# ----------------------------------------------------------------------
class TestRep008WorkerCache:
    BAD = (
        "from functools import lru_cache\n"
        "@lru_cache(maxsize=None)\n"
        "def curve(x):\n"
        "    return x * x\n"
        "def _task(x):\n"
        "    return curve(x)\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_task, items))\n"
    )
    GOOD_PRIMED = (
        "from functools import lru_cache\n"
        "@lru_cache(maxsize=None)\n"
        "def curve(x):\n"
        "    return x * x\n"
        "def prime_context_caches(pairs):\n"
        "    for x in pairs:\n"
        "        curve(x)\n"
        "def _task(x):\n"
        "    return curve(x)\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_task, items))\n"
    )
    GOOD_FORK_LOCAL = (
        "from functools import lru_cache\n"
        "@lru_cache(maxsize=None)  # repro: fork-local\n"
        "def curve(x):\n"
        "    return x * x\n"
        "def _task(x):\n"
        "    return curve(x)\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_task, items))\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.BAD, ["REP008"])
        assert codes_and_lines(report) == [("REP008", 3)]
        assert report.findings[0].chain == ("fixture._task", "fixture.curve")

    def test_primed_memo_is_clean(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD_PRIMED, ["REP008"])
        assert report.findings == ()

    def test_fork_local_memo_is_clean(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD_FORK_LOCAL, ["REP008"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# REP009: swallowed failures
# ----------------------------------------------------------------------
class TestRep009SwallowedFailure:
    BAD = (
        "def risky(work):\n"
        "    try:\n"
        "        return work()\n"
        "    except Exception:\n"
        "        pass\n"
        "def _execute_task(work):\n"
        "    try:\n"
        "        return work()\n"
        "    except:\n"
        "        return None\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_execute_task, items))\n"
    )
    GOOD = (
        "def careful(work):\n"
        "    try:\n"
        "        return work()\n"
        "    except ValueError:\n"
        "        return None\n"
        "def flagged(work, result):\n"
        "    try:\n"
        "        return work()\n"
        "    except Exception:\n"
        "        result.degraded_to_serial = True\n"
        "        return None\n"
        "def logged(work, log):\n"
        "    try:\n"
        "        return work()\n"
        "    except Exception:\n"
        "        log.warning('task failed')\n"
        "        raise\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.BAD, ["REP009"])
        assert codes_and_lines(report) == [("REP009", 4), ("REP009", 9)]
        by_line = {f.line: f for f in report.findings}
        assert by_line[4].chain == ()  # not on the parallel path
        assert by_line[9].chain == ("fixture._execute_task",)

    def test_good_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD, ["REP009"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# REP011: unjournalled recovery handlers
# ----------------------------------------------------------------------
class TestRep011UnjournalledRecovery:
    BAD = (
        "def watchdog(iterator):\n"
        "    try:\n"
        "        return next(iterator)\n"
        "    except TimeoutError:\n"
        "        return None\n"
        "def _execute_task(work):\n"
        "    try:\n"
        "        return work()\n"
        "    except BrokenPipeError:\n"
        "        return None\n"
        "def run(pool, items):\n"
        "    return list(pool.imap_unordered(_execute_task, items))\n"
    )
    GOOD = (
        "def journalled(iterator, journal):\n"
        "    try:\n"
        "        return next(iterator)\n"
        "    except TimeoutError:\n"
        "        journal.failure(kind='pool-stall', action='resurrect')\n"
        "        return None\n"
        "def reraised(work):\n"
        "    try:\n"
        "        return work()\n"
        "    except BrokenPipeError:\n"
        "        raise\n"
        "def recorded(work, failures):\n"
        "    try:\n"
        "        return work()\n"
        "    except InjectedFault as error:\n"
        "        failures.record(error)\n"
        "        return None\n"
        "def unrelated(work):\n"
        "    try:\n"
        "        return work()\n"
        "    except ValueError:\n"
        "        return None\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.BAD, ["REP011"])
        assert codes_and_lines(report) == [("REP011", 4), ("REP011", 9)]
        by_line = {f.line: f for f in report.findings}
        assert by_line[4].chain == ()  # not on the parallel path
        assert by_line[9].chain == ("fixture._execute_task",)
        assert "FailureRecord" in by_line[9].message

    def test_good_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD, ["REP011"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# REP012: shm lifecycle boundary
# ----------------------------------------------------------------------
class TestRep012ShmLifecycle:
    BAD = (
        "from multiprocessing import shared_memory\n"
        "def sidechannel(blob):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=len(blob))\n"
        "    segment.buf[: len(blob)] = blob\n"
        "    return segment.name\n"
        "_SCRATCH = shared_memory.SharedMemory(create=True, size=64)\n"
    )
    GOOD = (
        "from multiprocessing import shared_memory\n"
        "def _create_segment(size):\n"
        "    return shared_memory.SharedMemory(create=True, size=size)\n"
        "def _attach_segment(name):\n"
        "    return shared_memory.SharedMemory(name=name)\n"
        "def publish_plan(blob):\n"
        "    segment = _create_segment(len(blob))\n"
        "    segment.buf[: len(blob)] = blob\n"
        "    return segment.name\n"
        "def load_plan(name):\n"
        "    return _attach_segment(name)\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.BAD, ["REP012"])
        assert codes_and_lines(report) == [("REP012", 3), ("REP012", 6)]
        by_line = {f.line: f for f in report.findings}
        assert "function 'fixture.sidechannel'" in by_line[3].message
        assert "module level" in by_line[6].message

    def test_good_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD, ["REP012"])
        assert report.findings == ()

    def test_creation_outside_lifecycle_reach_is_flagged(self, tmp_path):
        # A helper with the sanctioned *shape* but never called from a
        # lifecycle entry is still a violation.
        source = (
            "from multiprocessing import shared_memory\n"
            "def _create_segment(size):\n"
            "    return shared_memory.SharedMemory(create=True, size=size)\n"
            "def unrelated(blob):\n"
            "    return _create_segment(len(blob))\n"
        )
        report = lint_fixture(tmp_path, source, ["REP012"])
        assert codes_and_lines(report) == [("REP012", 3)]


# ----------------------------------------------------------------------
# REP013: unsettled service request handlers
# ----------------------------------------------------------------------
class TestRep013UnsettledServiceHandler:
    BAD = (
        "def _solve_ticket(session, ticket):\n"
        "    try:\n"
        "        return session.solve(ticket.request)\n"
        "    except CancelledSolve:\n"
        "        return None\n"
        "def process(session, message):\n"
        "    try:\n"
        "        return _solve_ticket(session, message)\n"
        "    except Exception:\n"
        "        return None\n"
    )
    GOOD = (
        "def settled(session, ticket, supervisor):\n"
        "    try:\n"
        "        return session.solve(ticket.request)\n"
        "    except CancelledSolve as error:\n"
        "        supervisor._settle_cancelled(ticket, error.reason)\n"
        "        return None\n"
        "def journalled(session, ticket, supervisor):\n"
        "    try:\n"
        "        return session.solve(ticket.request)\n"
        "    except SolverError as error:\n"
        "        supervisor._finish_failed(ticket, 'solver-error')\n"
        "        return None\n"
        "def reraised(session, ticket):\n"
        "    try:\n"
        "        return session.solve(ticket.request)\n"
        "    except BrokenPipeError:\n"
        "        raise\n"
        "def unrelated(mapping, key):\n"
        "    try:\n"
        "        return mapping[key]\n"
        "    except KeyError:\n"
        "        return None\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(
            tmp_path, self.BAD, ["REP013"], name="service_fixture.py"
        )
        assert codes_and_lines(report) == [("REP013", 4), ("REP013", 9)]
        by_line = {f.line: f for f in report.findings}
        # process() is a service entry; the nested helper carries a chain.
        assert by_line[4].chain == (
            "service_fixture.process",
            "service_fixture._solve_ticket",
        )
        assert by_line[9].chain == ("service_fixture.process",)
        assert "journal" in by_line[9].message

    def test_good_fixture(self, tmp_path):
        report = lint_fixture(
            tmp_path, self.GOOD, ["REP013"], name="service_fixture.py"
        )
        assert report.findings == ()

    def test_shipped_service_package_is_clean(self):
        service_dir = REPO_ROOT / "src" / "repro" / "service"
        report = run_lint([service_dir], select=["REP013"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# REP010: hot-path complexity
# ----------------------------------------------------------------------
class TestRep010HotPath:
    BAD = (
        "def hot(items):\n"
        "    seen = []\n"
        "    for item in items:\n"
        "        if item in seen:\n"
        "            continue\n"
        "        seen = seen + [item]\n"
        "        pos = seen.index(item)\n"
        "    events = list(items)\n"
        "    while events:\n"
        "        events = sorted(events)\n"
        "        events.pop()\n"
    )
    GOOD = (
        "import heapq\n"
        "def cool(items):\n"
        "    seen = set()\n"
        "    out = []\n"
        "    for item in items:\n"
        "        if item in seen:\n"
        "            continue\n"
        "        seen.add(item)\n"
        "        out.append(item)\n"
        "    heap = list(out)\n"
        "    heapq.heapify(heap)\n"
        "    while heap:\n"
        "        heapq.heappop(heap)\n"
        "    return out\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.BAD, ["REP010"])
        assert codes_and_lines(report) == [
            ("REP010", 4),
            ("REP010", 6),
            ("REP010", 7),
            ("REP010", 10),
        ]

    def test_good_fixture(self, tmp_path):
        report = lint_fixture(tmp_path, self.GOOD, ["REP010"])
        assert report.findings == ()

    def test_annotated_list_parameter_counts(self, tmp_path):
        source = (
            "from typing import List\n"
            "def scan(rows: List[int], probes):\n"
            "    for probe in probes:\n"
            "        if probe in rows:\n"
            "            return probe\n"
            "    return None\n"
        )
        report = lint_fixture(tmp_path, source, ["REP010"])
        assert codes_and_lines(report) == [("REP010", 4)]

    def test_membership_against_set_is_fine(self, tmp_path):
        source = (
            "def scan(items):\n"
            "    seen = set()\n"
            "    for item in items:\n"
            "        if item in seen:\n"
            "            continue\n"
            "        seen.add(item)\n"
        )
        report = lint_fixture(tmp_path, source, ["REP010"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# Shipped tree + CLI-facing integration
# ----------------------------------------------------------------------
class TestShippedTreeInterprocedural:
    def test_shipped_tree_is_rep007_to_rep012_clean(self):
        report = run_lint(
            [REPO_ROOT / "src" / "repro"],
            select=["REP007", "REP008", "REP009", "REP010", "REP011", "REP012"],
            source_roots=[REPO_ROOT / "src", REPO_ROOT],
        )
        assert report.findings == ()

    def test_shipped_executor_entry_points_are_discovered(self):
        analysis = analyze_paths(
            sorted((REPO_ROOT / "src" / "repro" / "engine").rglob("*.py")),
            [REPO_ROOT / "src"],
            display_root=REPO_ROOT,
        )
        assert "repro.engine.executor._execute_chunk" in analysis.call_graph.entry_points
        assert "repro.engine.executor._init_worker" in analysis.call_graph.entry_points
        # _execute_task is no longer dispatched directly (the parent chunks
        # tasks itself to keep the watchdog's timeout API) but must stay
        # worker-reachable through _execute_chunk.
        reachable = analysis.worker_reachable()
        assert "repro.engine.executor._execute_task" in reachable

    def test_shipped_board_write_is_fork_local_sanctioned(self):
        analysis = analyze_paths(
            sorted((REPO_ROOT / "src" / "repro").rglob("*.py")),
            [REPO_ROOT / "src"],
            display_root=REPO_ROOT,
        )
        fork_local = analysis.table.fork_local_names("repro.engine.executor")
        assert "_WORKER_BOARD" in fork_local

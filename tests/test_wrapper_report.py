"""Tests for wrapper implementation plans (repro.wrapper.report)."""

import pytest

from repro.core.scheduler import schedule_soc
from repro.soc.core import Core
from repro.wrapper.design_wrapper import design_wrapper, testing_time
from repro.wrapper.report import (
    core_wrapper_plan,
    format_soc_wrapper_plans,
    format_wrapper_plan,
    wrapper_plans_for_schedule,
)


@pytest.fixture
def core():
    return Core("demo", inputs=9, outputs=7, bidirs=2, patterns=11, scan_chains=(12, 8, 8, 5))


class TestCoreWrapperPlan:
    def test_plan_matches_design(self, core):
        plan = core_wrapper_plan(core, 4)
        design = design_wrapper(core, 4)
        assert plan.core == "demo"
        assert plan.tam_width == 4
        assert plan.scan_in_length == design.scan_in_length
        assert plan.scan_out_length == design.scan_out_length
        assert plan.testing_time == design.testing_time
        assert len(plan.chains) == 4

    def test_plan_accounts_for_every_cell(self, core):
        plan = core_wrapper_plan(core, 3)
        assert sum(sum(chain.internal_chains) for chain in plan.chains) == core.scan_cells
        assert sum(chain.input_cells for chain in plan.chains) == core.inputs
        assert sum(chain.output_cells for chain in plan.chains) == core.outputs
        assert sum(chain.bidir_cells for chain in plan.chains) == core.bidirs

    def test_used_chains(self, core):
        wide = core_wrapper_plan(core, 16)
        assert wide.used_chains <= 16
        narrow = core_wrapper_plan(core, 2)
        assert narrow.used_chains == 2

    def test_chain_lengths_consistent(self, core):
        plan = core_wrapper_plan(core, 5)
        for chain in plan.chains:
            internal = sum(chain.internal_chains)
            assert chain.scan_in_length == internal + chain.input_cells + chain.bidir_cells
            assert chain.scan_out_length == internal + chain.output_cells + chain.bidir_cells


class TestSchedulePlans:
    def test_plans_cover_every_core(self, small_soc):
        schedule = schedule_soc(small_soc, 8)
        plans = wrapper_plans_for_schedule(small_soc, schedule)
        assert set(plans) == set(small_soc.core_names)
        for name, plan in plans.items():
            assert plan.tam_width == schedule.core_summary(name).widths[0]

    def test_plan_testing_time_matches_wrapper_model(self, small_soc):
        schedule = schedule_soc(small_soc, 8)
        plans = wrapper_plans_for_schedule(small_soc, schedule)
        for name, plan in plans.items():
            expected = testing_time(small_soc.core(name), plan.tam_width)
            # The plan reports the raw design time at exactly that width,
            # which can only be >= the best-over-width value.
            assert plan.testing_time >= expected


class TestFormatting:
    def test_format_single_plan(self, core):
        text = format_wrapper_plan(core_wrapper_plan(core, 3))
        assert "demo" in text
        assert "chain 0" in text and "chain 2" in text
        assert "si=" in text and "so=" in text

    def test_unused_chains_marked(self):
        sparse = Core("sparse", inputs=1, outputs=1, patterns=4, scan_chains=(5,))
        text = format_wrapper_plan(core_wrapper_plan(sparse, 8))
        assert "(unused)" in text

    def test_format_soc_plans(self, small_soc):
        schedule = schedule_soc(small_soc, 8)
        text = format_soc_wrapper_plans(small_soc, schedule)
        for name in small_soc.core_names:
            assert name in text
        assert "Wrapper implementation plan" in text

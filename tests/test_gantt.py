"""Tests for the ASCII Gantt renderer (repro.schedule.gantt)."""

import pytest

from repro.core.scheduler import schedule_soc
from repro.schedule.gantt import render_gantt
from repro.schedule.schedule import ScheduleSegment, TestSchedule


def _schedule():
    return TestSchedule(
        soc_name="demo",
        total_width=8,
        segments=(
            ScheduleSegment(core="a", start=0, end=50, width=4),
            ScheduleSegment(core="b", start=0, end=30, width=4),
            ScheduleSegment(core="b", start=60, end=80, width=4),
        ),
    )


class TestRenderGantt:
    def test_contains_every_core_and_header(self):
        text = render_gantt(_schedule())
        assert "demo" in text
        assert "a [w=4]" in text
        assert "b [w=4]" in text
        assert "TAM width 8" in text

    def test_row_width_matches_columns(self):
        text = render_gantt(_schedule(), columns=40)
        rows = [line for line in text.splitlines() if "|" in line and "[w=" in line]
        for row in rows:
            body = row.split("|")[1]
            assert len(body) == 40

    def test_preempted_core_has_gap(self):
        text = render_gantt(_schedule(), columns=80)
        row_b = next(line for line in text.splitlines() if line.startswith("b "))
        body = row_b.split("|")[1]
        assert "#" in body and "." in body
        # The gap between 30 and 60 must show as empty space between filled runs.
        assert "#." in body and ".#" in body

    def test_empty_schedule(self):
        empty = TestSchedule(soc_name="x", total_width=4, segments=())
        assert render_gantt(empty) == "(empty schedule)"

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            render_gantt(_schedule(), columns=0)

    def test_utilisation_line_present(self):
        assert "utilisation" in render_gantt(_schedule())

    def test_renders_real_schedule(self, d695_soc):
        schedule = schedule_soc(d695_soc, 32)
        text = render_gantt(schedule)
        for core in d695_soc.core_names:
            assert core in text

"""Unit tests for schedule data structures and validation (repro.schedule)."""

import pytest

from repro.schedule.schedule import ScheduleError, ScheduleSegment, TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def two_core_soc():
    return Soc(
        "duo",
        (
            Core("a", inputs=2, outputs=2, patterns=5, scan_chains=(4,), power=10.0),
            Core("b", inputs=2, outputs=2, patterns=5, scan_chains=(4,), power=20.0),
        ),
    )


def _schedule(segments, width=8, name="duo"):
    return TestSchedule(soc_name=name, total_width=width, segments=tuple(segments))


class TestScheduleSegment:
    def test_duration_and_area(self):
        seg = ScheduleSegment(core="a", start=10, end=25, width=4)
        assert seg.duration == 15
        assert seg.area == 60

    def test_invalid_segments(self):
        with pytest.raises(ScheduleError):
            ScheduleSegment(core="a", start=-1, end=5, width=1)
        with pytest.raises(ScheduleError):
            ScheduleSegment(core="a", start=5, end=5, width=1)
        with pytest.raises(ScheduleError):
            ScheduleSegment(core="a", start=0, end=5, width=0)

    def test_overlap_detection(self):
        first = ScheduleSegment(core="a", start=0, end=10, width=1)
        second = ScheduleSegment(core="b", start=5, end=15, width=1)
        third = ScheduleSegment(core="c", start=10, end=20, width=1)
        assert first.overlaps(second)
        assert not first.overlaps(third)  # touching boundaries do not overlap


class TestScheduleAggregates:
    def test_makespan_and_idle_area(self):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=4),
                ScheduleSegment(core="b", start=0, end=20, width=4),
            ]
        )
        assert sched.makespan == 20
        assert sched.occupied_area == 40 + 80
        assert sched.idle_area == 8 * 20 - 120
        assert sched.tam_utilization == pytest.approx(120 / 160)

    def test_empty_schedule(self):
        sched = _schedule([])
        assert sched.makespan == 0
        assert sched.tam_utilization == 0.0
        assert sched.peak_width() == 0

    def test_segments_sorted_by_start(self):
        sched = _schedule(
            [
                ScheduleSegment(core="b", start=10, end=20, width=1),
                ScheduleSegment(core="a", start=0, end=5, width=1),
            ]
        )
        assert sched.segments[0].core == "a"

    def test_scheduled_cores_and_preemptions(self):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="a", start=15, end=20, width=2),
                ScheduleSegment(core="b", start=0, end=5, width=2),
            ]
        )
        assert set(sched.scheduled_cores) == {"a", "b"}
        assert sched.preemptions_of("a") == 1
        assert sched.preemptions_of("b") == 0

    def test_core_summary(self):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="a", start=15, end=20, width=2),
            ]
        )
        summary = sched.core_summary("a")
        assert summary.first_begin == 0
        assert summary.last_end == 20
        assert summary.total_time == 15
        assert summary.preemptions == 1

    def test_core_summary_missing(self):
        with pytest.raises(KeyError):
            _schedule([]).core_summary("ghost")

    def test_width_profile_and_peak(self):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=3),
                ScheduleSegment(core="b", start=5, end=15, width=4),
            ]
        )
        assert sched.peak_width() == 7
        profile = dict(sched.width_profile())
        assert profile[0] == 3
        assert profile[5] == 7
        assert profile[10] == 4
        assert profile[15] == 0

    def test_power_profile_and_peak(self, two_core_soc):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=3),
                ScheduleSegment(core="b", start=5, end=15, width=4),
            ]
        )
        assert sched.peak_power(two_core_soc) == pytest.approx(30.0)


class TestValidation:
    def test_valid_schedule_passes(self, two_core_soc):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=3),
                ScheduleSegment(core="b", start=0, end=10, width=5),
            ]
        )
        sched.validate(two_core_soc)

    def test_unknown_core_rejected(self, two_core_soc):
        sched = _schedule(
            [
                ScheduleSegment(core="ghost", start=0, end=10, width=3),
                ScheduleSegment(core="a", start=0, end=5, width=1),
                ScheduleSegment(core="b", start=0, end=5, width=1),
            ]
        )
        with pytest.raises(ScheduleError, match="unknown"):
            sched.validate(two_core_soc)

    def test_missing_core_rejected(self, two_core_soc):
        sched = _schedule([ScheduleSegment(core="a", start=0, end=10, width=3)])
        with pytest.raises(ScheduleError, match="does not test"):
            sched.validate(two_core_soc)

    def test_width_capacity_violation(self, two_core_soc):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=6),
                ScheduleSegment(core="b", start=0, end=10, width=6),
            ],
            width=8,
        )
        with pytest.raises(ScheduleError, match="TAM width exceeded"):
            sched.validate(two_core_soc)

    def test_self_overlap_rejected(self, two_core_soc):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="a", start=5, end=12, width=2),
                ScheduleSegment(core="b", start=0, end=3, width=2),
            ]
        )
        with pytest.raises(ScheduleError, match="overlapping"):
            sched.validate(two_core_soc)

    def test_precedence_violation(self, two_core_soc):
        constraints = ConstraintSet(precedence=[("a", "b")])
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="b", start=5, end=12, width=2),
            ]
        )
        with pytest.raises(ScheduleError, match="precedence"):
            sched.validate(two_core_soc, constraints)

    def test_precedence_satisfied(self, two_core_soc):
        constraints = ConstraintSet(precedence=[("a", "b")])
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="b", start=10, end=12, width=2),
            ]
        )
        sched.validate(two_core_soc, constraints)

    def test_concurrency_violation(self, two_core_soc):
        constraints = ConstraintSet(concurrency=[("a", "b")])
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="b", start=9, end=12, width=2),
            ]
        )
        with pytest.raises(ScheduleError, match="concurrency"):
            sched.validate(two_core_soc, constraints)

    def test_power_violation(self, two_core_soc):
        constraints = ConstraintSet(power_max=25.0)
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=2),
                ScheduleSegment(core="b", start=0, end=10, width=2),
            ]
        )
        with pytest.raises(ScheduleError, match="power"):
            sched.validate(two_core_soc, constraints)

    def test_preemption_limit_violation(self, two_core_soc):
        constraints = ConstraintSet(max_preemptions={"a": 0})
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=5, width=2),
                ScheduleSegment(core="a", start=10, end=15, width=2),
                ScheduleSegment(core="b", start=0, end=5, width=2),
            ]
        )
        with pytest.raises(ScheduleError, match="preempted"):
            sched.validate(two_core_soc, constraints)

    def test_duration_check_with_expected_times(self, two_core_soc):
        expected = {"a": {3: 20}, "b": {5: 10}}
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=3),
                ScheduleSegment(core="b", start=0, end=10, width=5),
            ]
        )
        with pytest.raises(ScheduleError, match="under-tested"):
            sched.validate(two_core_soc, expected_times=expected)

    def test_describe_contains_core_lines(self):
        sched = _schedule(
            [
                ScheduleSegment(core="a", start=0, end=10, width=3),
                ScheduleSegment(core="b", start=0, end=10, width=5),
            ]
        )
        text = sched.describe()
        assert "a:" in text and "b:" in text and "makespan" in text

"""Unit tests for BFD partitioning of scan elements (repro.wrapper.partition)."""

import pytest

from repro.wrapper.partition import (
    WrapperChain,
    distribute_bidir_cells,
    distribute_input_cells,
    distribute_output_cells,
    partition_scan_chains,
)


class TestWrapperChain:
    def test_lengths(self):
        chain = WrapperChain(internal_chains=[5, 3], input_cells=2, output_cells=4, bidir_cells=1)
        assert chain.internal_length == 8
        assert chain.scan_in_length == 8 + 2 + 1
        assert chain.scan_out_length == 8 + 4 + 1

    def test_is_empty(self):
        assert WrapperChain().is_empty
        assert not WrapperChain(input_cells=1).is_empty
        assert not WrapperChain(internal_chains=[2]).is_empty


class TestPartitionScanChains:
    def test_single_bin_gets_everything(self):
        chains = partition_scan_chains([5, 3, 7], 1)
        assert len(chains) == 1
        assert sorted(chains[0].internal_chains) == [3, 5, 7]

    def test_bins_than_chains_leaves_empties(self):
        chains = partition_scan_chains([5, 3], 4)
        assert len(chains) == 4
        assert sum(len(c.internal_chains) for c in chains) == 2
        assert sum(1 for c in chains if c.is_empty) == 2

    def test_balances_equal_chains(self):
        chains = partition_scan_chains([10] * 6, 3)
        assert [c.internal_length for c in chains] == [20, 20, 20]

    def test_lpt_is_optimal_for_simple_case(self):
        # chains 7,6,5,4 over 2 bins: LPT gives {7,4} and {6,5} -> makespan 11.
        chains = partition_scan_chains([7, 6, 5, 4], 2)
        assert max(c.internal_length for c in chains) == 11

    def test_total_cells_preserved(self):
        lengths = [13, 8, 21, 3, 5, 2]
        chains = partition_scan_chains(lengths, 3)
        assert sum(c.internal_length for c in chains) == sum(lengths)

    def test_zero_bins_rejected(self):
        with pytest.raises(ValueError):
            partition_scan_chains([1], 0)

    def test_non_positive_length_rejected(self):
        with pytest.raises(ValueError):
            partition_scan_chains([0], 2)

    def test_empty_scan_chain_list(self):
        chains = partition_scan_chains([], 3)
        assert all(c.is_empty for c in chains)

    def test_deterministic(self):
        first = partition_scan_chains([9, 9, 4, 4, 2], 3)
        second = partition_scan_chains([9, 9, 4, 4, 2], 3)
        assert [c.internal_chains for c in first] == [c.internal_chains for c in second]


class TestCellDistribution:
    def test_input_cells_balance_scan_in(self):
        chains = partition_scan_chains([10, 2], 2)
        distribute_input_cells(chains, 6)
        # The 6 input cells should flow to the shorter chain first.
        scan_ins = sorted(c.scan_in_length for c in chains)
        assert scan_ins == [8, 10]

    def test_output_cells_balance_scan_out(self):
        chains = partition_scan_chains([10, 2], 2)
        distribute_output_cells(chains, 4)
        scan_outs = sorted(c.scan_out_length for c in chains)
        assert scan_outs == [6, 10]

    def test_input_cells_do_not_affect_scan_out(self):
        chains = partition_scan_chains([4, 4], 2)
        distribute_input_cells(chains, 5)
        assert all(c.scan_out_length == 4 for c in chains)

    def test_bidir_cells_affect_both(self):
        chains = partition_scan_chains([], 2)
        distribute_bidir_cells(chains, 3)
        assert sum(c.bidir_cells for c in chains) == 3
        assert all(c.scan_in_length == c.scan_out_length for c in chains)

    def test_counts_conserved(self):
        chains = partition_scan_chains([5, 5, 5], 3)
        distribute_input_cells(chains, 11)
        distribute_output_cells(chains, 7)
        distribute_bidir_cells(chains, 2)
        assert sum(c.input_cells for c in chains) == 11
        assert sum(c.output_cells for c in chains) == 7
        assert sum(c.bidir_cells for c in chains) == 2

    def test_zero_count_is_noop(self):
        chains = partition_scan_chains([5], 1)
        distribute_input_cells(chains, 0)
        assert chains[0].input_cells == 0

    def test_negative_count_rejected(self):
        chains = partition_scan_chains([5], 1)
        with pytest.raises(ValueError):
            distribute_input_cells(chains, -1)

    def test_balanced_spread_over_empty_chains(self):
        chains = partition_scan_chains([], 4)
        distribute_input_cells(chains, 10)
        counts = sorted(c.input_cells for c in chains)
        assert counts == [2, 2, 3, 3]

"""Tests for the baseline packers (fixed-width, shelf, exhaustive reference)."""

import pytest

from repro.baselines.exact import exhaustive_schedule
from repro.baselines.fixed_width import FixedWidthResult, fixed_width_schedule
from repro.baselines.shelf import shelf_schedule
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import best_schedule, schedule_soc
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def tiny_soc():
    """Three cores with small Pareto sets, safe for exhaustive search."""
    cores = (
        Core("a", inputs=2, outputs=2, patterns=8, scan_chains=(6, 6)),
        Core("b", inputs=3, outputs=1, patterns=12, scan_chains=(10,)),
        Core("c", inputs=4, outputs=4, patterns=5, scan_chains=()),
    )
    return Soc("tiny", cores)


class TestFixedWidthBaseline:
    def test_result_structure(self, small_soc):
        result = fixed_width_schedule(small_soc, 8, max_buses=2)
        assert isinstance(result, FixedWidthResult)
        assert sum(result.bus_widths) <= 8
        assert set(result.assignment) == set(small_soc.core_names)
        result.schedule.validate(small_soc)

    def test_cores_on_a_bus_run_sequentially(self, small_soc):
        result = fixed_width_schedule(small_soc, 8, max_buses=2)
        by_bus = {}
        for name, bus in result.assignment.items():
            by_bus.setdefault(bus, []).append(name)
        for bus, names in by_bus.items():
            segments = sorted(
                (result.schedule.segments_for(n)[0] for n in names), key=lambda s: s.start
            )
            for first, second in zip(segments, segments[1:]):
                assert second.start >= first.end

    def test_makespan_at_least_lower_bound(self, small_soc):
        result = fixed_width_schedule(small_soc, 8, max_buses=3)
        assert result.makespan >= lower_bound(small_soc, 8)

    def test_flexible_packer_beats_fixed_width_at_wide_tams(self, d695_soc):
        """The paper's central architectural claim: flexible-width TAMs use
        wires more efficiently than fixed-width partitions, most visibly at
        wide TAMs where a handful of buses cannot exploit all wires."""
        width = 64
        fixed = fixed_width_schedule(d695_soc, width, max_buses=3)
        flexible = best_schedule(
            d695_soc, width, percents=(1, 10, 25, 60), deltas=(0, 2), slacks=(0, 3)
        )
        assert flexible.makespan < fixed.makespan

    def test_flexible_packer_competitive_at_narrow_tams(self, d695_soc):
        """At narrow TAMs serial-per-bus schedules are near optimal, so the
        exhaustive fixed-width baseline can edge ahead; the flexible packer
        must stay within a few percent of it (see EXPERIMENTS.md)."""
        width = 32
        fixed = fixed_width_schedule(d695_soc, width, max_buses=3)
        flexible = best_schedule(
            d695_soc, width, percents=(1, 10, 25, 60, 75), deltas=(0, 2), slacks=(0, 3)
        )
        assert flexible.makespan <= 1.05 * fixed.makespan

    def test_more_buses_never_hurt(self, small_soc):
        one = fixed_width_schedule(small_soc, 8, max_buses=1).makespan
        three = fixed_width_schedule(small_soc, 8, max_buses=3).makespan
        assert three <= one

    def test_invalid_width(self, small_soc):
        with pytest.raises(ValueError):
            fixed_width_schedule(small_soc, 0)


class TestShelfBaseline:
    def test_schedule_valid(self, small_soc):
        schedule = shelf_schedule(small_soc, 8)
        schedule.validate(small_soc)

    def test_no_test_spans_shelf_boundaries(self, small_soc):
        schedule = shelf_schedule(small_soc, 8)
        for core in small_soc.core_names:
            assert len(schedule.segments_for(core)) == 1

    def test_flexible_packer_beats_or_matches_shelf(self, d695_soc):
        width = 32
        shelf = shelf_schedule(d695_soc, width)
        flexible = best_schedule(
            d695_soc, width, percents=(1, 10, 25), deltas=(0, 2), slacks=(0, 3)
        )
        assert flexible.makespan <= shelf.makespan

    def test_respects_lower_bound(self, d695_soc):
        assert shelf_schedule(d695_soc, 16).makespan >= lower_bound(d695_soc, 16)

    def test_invalid_width(self, small_soc):
        with pytest.raises(ValueError):
            shelf_schedule(small_soc, -1)


class TestExhaustiveReference:
    def test_matches_or_beats_heuristic_on_tiny_soc(self, tiny_soc):
        for width in (3, 5, 8):
            reference = exhaustive_schedule(tiny_soc, width)
            heuristic = best_schedule(
                tiny_soc, width, percents=(0, 1, 10, 25), deltas=(0, 2), slacks=(0, 3)
            )
            reference.validate(tiny_soc)
            assert reference.makespan >= lower_bound(tiny_soc, width)
            # The heuristic cannot beat an exhaustive left-justified search by
            # much, and should be within 30 % of it.
            assert heuristic.makespan <= 1.3 * reference.makespan

    def test_reference_refuses_large_socs(self, d695_soc):
        with pytest.raises(ValueError):
            exhaustive_schedule(d695_soc, 16, max_cores=6)

    def test_reference_refuses_constraints(self, tiny_soc):
        constraints = ConstraintSet(precedence=[("a", "b")])
        with pytest.raises(ValueError):
            exhaustive_schedule(tiny_soc, 8, constraints=constraints)

    def test_single_core_reference_is_exact(self):
        core = Core("solo", inputs=2, outputs=2, patterns=6, scan_chains=(4, 4))
        soc = Soc("solo", (core,))
        reference = exhaustive_schedule(soc, 4)
        heuristic = schedule_soc(soc, 4)
        assert reference.makespan <= heuristic.makespan

    def test_two_equal_cores_pack_side_by_side(self):
        cores = (
            Core("a", inputs=2, outputs=2, patterns=6, scan_chains=(4, 4)),
            Core("b", inputs=2, outputs=2, patterns=6, scan_chains=(4, 4)),
        )
        soc = Soc("pair", cores)
        wide = exhaustive_schedule(soc, 8)
        narrow = exhaustive_schedule(soc, 2)
        assert wide.makespan < narrow.makespan

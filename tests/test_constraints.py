"""Unit tests for the constraint model (repro.soc.constraints)."""

import pytest

from repro.soc.constraints import ConstraintError, ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


def _soc(*names, **core_kwargs):
    cores = tuple(
        Core(n, inputs=2, outputs=2, patterns=3, scan_chains=(4,), **core_kwargs)
        for n in names
    )
    return Soc("soc", cores)


class TestConstruction:
    def test_unconstrained_is_empty(self):
        cs = ConstraintSet.unconstrained()
        assert cs.precedence == ()
        assert cs.concurrency == ()
        assert cs.power_max is None
        assert not cs.is_preemptive

    def test_precedence_normalised(self):
        cs = ConstraintSet(precedence=[("a", "b"), ["c", "d"]])
        assert cs.precedence == (("a", "b"), ("c", "d"))

    def test_concurrency_normalised_to_frozensets(self):
        cs = ConstraintSet(concurrency=[("a", "b")])
        assert cs.concurrency == (frozenset({"a", "b"}),)

    def test_self_precedence_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(precedence=[("a", "a")])

    def test_self_concurrency_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(concurrency=[("a", "a")])

    def test_precedence_cycle_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(precedence=[("a", "b"), ("b", "c"), ("c", "a")])

    def test_long_chain_is_not_a_cycle(self):
        cs = ConstraintSet(precedence=[("a", "b"), ("b", "c"), ("c", "d")])
        assert cs.predecessors_of("d") == ("c",)

    def test_non_positive_power_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(power_max=0)

    def test_negative_preemption_limits_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(max_preemptions={"a": -1})
        with pytest.raises(ConstraintError):
            ConstraintSet(default_preemptions=-1)


class TestQueries:
    def test_predecessors_and_successors(self):
        cs = ConstraintSet(precedence=[("a", "b"), ("a", "c"), ("b", "c")])
        assert set(cs.predecessors_of("c")) == {"a", "b"}
        assert set(cs.successors_of("a")) == {"b", "c"}
        assert cs.predecessors_of("a") == ()

    def test_conflicts_with(self):
        cs = ConstraintSet(concurrency=[("a", "b"), ("a", "c")])
        assert set(cs.conflicts_with("a")) == {"b", "c"}
        assert cs.conflicts_with("b") == ("a",)
        assert cs.conflicts_with("z") == ()

    def test_allows_concurrent(self):
        cs = ConstraintSet(concurrency=[("a", "b")])
        assert not cs.allows_concurrent("a", "b")
        assert not cs.allows_concurrent("b", "a")
        assert cs.allows_concurrent("a", "c")

    def test_preemption_limit_defaults(self):
        cs = ConstraintSet(max_preemptions={"a": 3}, default_preemptions=1)
        assert cs.preemption_limit("a") == 3
        assert cs.preemption_limit("b") == 1
        assert cs.is_preemptive

    def test_is_preemptive_false_when_all_zero(self):
        cs = ConstraintSet(max_preemptions={"a": 0})
        assert not cs.is_preemptive


class TestValidation:
    def test_validate_for_accepts_known_cores(self):
        soc = _soc("a", "b")
        cs = ConstraintSet(precedence=[("a", "b")])
        cs.validate_for(soc)  # should not raise

    def test_validate_for_rejects_unknown_cores(self):
        soc = _soc("a", "b")
        cs = ConstraintSet(precedence=[("a", "ghost")])
        with pytest.raises(ConstraintError):
            cs.validate_for(soc)

    def test_validate_for_rejects_unknown_preemption_entries(self):
        soc = _soc("a")
        cs = ConstraintSet(max_preemptions={"ghost": 1})
        with pytest.raises(ConstraintError):
            cs.validate_for(soc)


class TestForSoc:
    def test_hierarchy_conflicts_added(self):
        cores = (
            Core("parent", inputs=1, outputs=1, patterns=1),
            Core("child", inputs=1, outputs=1, patterns=1, parent="parent"),
        )
        soc = Soc("soc", cores)
        cs = ConstraintSet.for_soc(soc)
        assert not cs.allows_concurrent("parent", "child")

    def test_bist_conflicts_added(self):
        cores = (
            Core("a", inputs=1, outputs=1, patterns=1, bist_resource="e"),
            Core("b", inputs=1, outputs=1, patterns=1, bist_resource="e"),
            Core("c", inputs=1, outputs=1, patterns=1),
        )
        soc = Soc("soc", cores)
        cs = ConstraintSet.for_soc(soc)
        assert not cs.allows_concurrent("a", "b")
        assert cs.allows_concurrent("a", "c")

    def test_structural_conflicts_can_be_disabled(self):
        cores = (
            Core("a", inputs=1, outputs=1, patterns=1, bist_resource="e"),
            Core("b", inputs=1, outputs=1, patterns=1, bist_resource="e", parent="a"),
        )
        soc = Soc("soc", cores)
        cs = ConstraintSet.for_soc(soc, include_hierarchy=False, include_bist=False)
        assert cs.concurrency == ()

    def test_for_soc_validates_user_constraints(self):
        soc = _soc("a", "b")
        with pytest.raises(ConstraintError):
            ConstraintSet.for_soc(soc, precedence=[("a", "ghost")])


class TestTransforms:
    def test_with_power_max(self):
        cs = ConstraintSet(power_max=10.0)
        assert cs.with_power_max(20.0).power_max == 20.0
        assert cs.with_power_max(None).power_max is None
        assert cs.power_max == 10.0

    def test_with_preemptions(self):
        cs = ConstraintSet()
        new = cs.with_preemptions({"a": 2}, default_preemptions=1)
        assert new.preemption_limit("a") == 2
        assert new.preemption_limit("other") == 1
        assert cs.preemption_limit("a") == 0

    def test_merged_with_unions_constraints(self):
        first = ConstraintSet(precedence=[("a", "b")], power_max=50.0)
        second = ConstraintSet(concurrency=[("b", "c")], power_max=30.0,
                               max_preemptions={"a": 1})
        merged = first.merged_with(second)
        assert ("a", "b") in merged.precedence
        assert frozenset({"b", "c"}) in merged.concurrency
        assert merged.power_max == 30.0
        assert merged.preemption_limit("a") == 1

    def test_describe_mentions_counts(self):
        cs = ConstraintSet(precedence=[("a", "b")], concurrency=[("c", "d")], power_max=9.0)
        text = cs.describe()
        assert "1 precedence" in text
        assert "1 concurrency" in text
        assert "9.0" in text

"""Tests for the experiment drivers (repro.analysis.experiments)."""

import pytest

from repro.analysis.experiments import (
    TABLE1_WIDTHS,
    TABLE2_ALPHAS,
    Table1Row,
    Table2Row,
    figure1_staircase,
    figure9_curves,
    power_budget,
    preemption_limits,
    run_table1,
    run_table2,
)
from repro.core.data_volume import sweep_tam_widths
from repro.core.lower_bounds import lower_bound
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture(scope="module")
def medium_soc():
    """A six-core SOC large enough to be interesting but fast to schedule."""
    cores = (
        Core("c1", inputs=10, outputs=12, patterns=40, scan_chains=(20, 20, 16)),
        Core("c2", inputs=8, outputs=8, patterns=25, scan_chains=(24, 24)),
        Core("c3", inputs=6, outputs=6, patterns=60, scan_chains=(10, 10, 10, 10)),
        Core("c4", inputs=12, outputs=4, patterns=15, scan_chains=(30,)),
        Core("c5", inputs=5, outputs=9, patterns=35, scan_chains=(18, 14)),
        Core("c6", inputs=20, outputs=16, patterns=10, scan_chains=()),
    )
    return Soc("medium6", cores)


class TestHelpers:
    def test_preemption_limits_cover_larger_half(self, medium_soc):
        limits = preemption_limits(medium_soc, limit=2, top_fraction=0.5)
        assert len(limits) == 3
        assert all(value == 2 for value in limits.values())
        ranked = sorted(medium_soc.cores, key=lambda c: c.total_test_bits, reverse=True)
        assert set(limits) == {c.name for c in ranked[:3]}

    def test_power_budget_scales_max_power(self, medium_soc):
        assert power_budget(medium_soc, factor=1.1) == pytest.approx(
            1.1 * medium_soc.max_test_power()
        )

    def test_width_and_alpha_tables_cover_all_socs(self):
        assert set(TABLE1_WIDTHS) == {"d695", "p22810", "p34392", "p93791"}
        assert set(TABLE2_ALPHAS) == {"d695", "p22810", "p34392", "p93791"}
        assert TABLE1_WIDTHS["p34392"] == (16, 24, 28, 32)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self, medium_soc):
        return run_table1(
            medium_soc,
            widths=(8, 16),
            percents=(1, 10),
            deltas=(0, 2),
            slacks=(0, 3),
        )

    def test_row_per_width(self, rows):
        assert [row.width for row in rows] == [8, 16]
        assert all(isinstance(row, Table1Row) for row in rows)

    def test_lower_bound_column_matches_module(self, rows, medium_soc):
        for row in rows:
            assert row.lower_bound == lower_bound(medium_soc, row.width)

    def test_schedules_respect_lower_bound(self, rows):
        for row in rows:
            assert row.non_preemptive >= row.lower_bound
            assert row.preemptive >= row.lower_bound
            assert row.power_constrained >= row.lower_bound

    def test_ratios(self, rows):
        for row in rows:
            assert row.non_preemptive_ratio == pytest.approx(
                row.non_preemptive / row.lower_bound
            )
            assert row.preemptive_ratio >= 1.0

    def test_testing_time_shrinks_with_width(self, rows):
        assert rows[1].non_preemptive < rows[0].non_preemptive


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self, medium_soc):
        return run_table2(medium_soc, alphas=(0.0, 0.5, 1.0), widths=tuple(range(4, 25, 4)))

    def test_one_row_per_alpha(self, table2):
        rows, _ = table2
        assert [row.alpha for row in rows] == [0.0, 0.5, 1.0]
        assert all(isinstance(row, Table2Row) for row in rows)

    def test_extreme_alphas_pick_extreme_widths(self, table2):
        rows, sweep = table2
        by_alpha = {row.alpha: row for row in rows}
        assert by_alpha[0.0].effective_width == sweep.width_of_min_volume
        assert by_alpha[1.0].testing_time_at_effective == sweep.min_testing_time

    def test_min_columns_consistent_with_sweep(self, table2):
        rows, sweep = table2
        for row in rows:
            assert row.min_testing_time == sweep.min_testing_time
            assert row.min_data_volume == sweep.min_data_volume

    def test_effective_width_is_swept_width(self, table2):
        rows, sweep = table2
        for row in rows:
            assert row.effective_width in sweep.widths

    def test_reuses_precomputed_sweep(self, medium_soc, table2):
        _, sweep = table2
        rows, sweep_again = run_table2(medium_soc, alphas=(0.5,), sweep=sweep)
        assert sweep_again is sweep
        assert rows[0].min_testing_time == sweep.min_testing_time


class TestFigures:
    def test_figure1_staircase_shape(self, p93791_soc):
        series = figure1_staircase(p93791_soc.core("Core 6"), max_width=64)
        assert len(series) == 64
        widths = [w for w, _ in series]
        times = [t for _, t in series]
        assert widths == list(range(1, 65))
        assert all(a >= b for a, b in zip(times, times[1:]))
        # Figure 1's headline feature: the staircase is flat past saturation.
        assert times[-1] == times[50]

    def test_figure9_curves(self, medium_soc):
        data = figure9_curves(medium_soc, widths=tuple(range(4, 21, 2)), alphas=(0.5, 0.75))
        assert data.alphas == (0.5, 0.75)
        assert len(data.time_curve) == len(data.volume_curve) == 9
        assert set(data.cost_curves) == {0.5, 0.75}
        # Cost curves are normalised: their minimum should be close to 1.
        for curve in data.cost_curves.values():
            assert min(cost for _, cost in curve) >= 1.0 - 1e-9
            assert min(cost for _, cost in curve) < 2.0

    def test_figure9_accepts_precomputed_sweep(self, medium_soc):
        sweep = sweep_tam_widths(medium_soc, widths=(4, 8, 12))
        data = figure9_curves(medium_soc, sweep=sweep, alphas=(0.5,))
        assert data.sweep is sweep

    def test_data_volume_dips_at_pareto_points(self, medium_soc):
        """Figure 9(b): D(W) reaches local minima at Pareto widths of T(W)."""
        sweep = sweep_tam_widths(medium_soc, widths=tuple(range(2, 25)))
        pareto = sweep.pareto_widths()
        assert len(pareto) >= 3
        # The global minimum of D occurs at a Pareto width of the T curve.
        assert sweep.width_of_min_volume in pareto

"""Every example script must run to completion and produce sensible output."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

EXAMPLES = [
    ("quickstart.py", ["testing time", "lower bound", "d695"]),
    ("pareto_staircase.py", ["Pareto-optimal widths", "Core 6", "s38417"]),
    ("power_constrained_scheduling.py", ["power budget", "selective preemption", "cycles"]),
    ("data_volume_tradeoff.py", ["Effective TAM widths", "T_min", "D_min"]),
    ("custom_soc_from_file.py", ["stb_demo", "testing time", "lower bound"]),
    ("multisite_testing.py", ["sites", "batch", "Fastest batch"]),
    ("parallel_sweep.py", ["sweep engine", "workers", "identical"]),
]


def _run_example(name: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize("name,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(name, expected):
    output = _run_example(name)
    assert len(output) > 200
    for needle in expected:
        assert needle in output, f"{name} output is missing {needle!r}"


def test_examples_directory_is_covered():
    """Every example shipped in examples/ is exercised by this test module."""
    scripts = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == {name for name, _ in EXAMPLES}

"""Tests for tester data volume, cost function and effective widths (Problem 3)."""

import pytest

from repro.core.data_volume import (
    CostPoint,
    TamSweep,
    cost_curve,
    effective_width,
    sweep_tam_widths,
    tester_data_volume,
)
from repro.core.scheduler import schedule_soc
from repro.schedule.schedule import ScheduleSegment, TestSchedule


class TestTesterDataVolume:
    def test_volume_is_width_times_makespan(self):
        schedule = TestSchedule(
            soc_name="x",
            total_width=16,
            segments=(ScheduleSegment(core="a", start=0, end=100, width=4),),
        )
        assert tester_data_volume(schedule) == 16 * 100

    def test_volume_of_real_schedule(self, small_soc):
        schedule = schedule_soc(small_soc, 8)
        assert tester_data_volume(schedule) == 8 * schedule.makespan


class TestTamSweepConstruction:
    def test_data_volumes_derived_when_missing(self):
        sweep = TamSweep(soc_name="x", widths=(2, 4), testing_times=(100, 60))
        assert sweep.data_volumes == (200, 240)

    def test_explicit_data_volumes_kept(self):
        sweep = TamSweep(
            soc_name="x", widths=(2, 4), testing_times=(100, 60), data_volumes=(7, 8)
        )
        assert sweep.data_volumes == (7, 8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TamSweep(soc_name="x", widths=(2, 4), testing_times=(100,))
        with pytest.raises(ValueError):
            TamSweep(
                soc_name="x", widths=(2,), testing_times=(100,), data_volumes=(1, 2)
            )

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            TamSweep(soc_name="x", widths=(), testing_times=())


class TestTamSweepQueries:
    @pytest.fixture
    def sweep(self):
        # A hand-made staircase: T flat between Pareto points.
        widths = (2, 3, 4, 5, 6)
        times = (120, 80, 80, 60, 60)
        return TamSweep(soc_name="x", widths=widths, testing_times=times)

    def test_minima(self, sweep):
        assert sweep.min_testing_time == 60
        assert sweep.width_of_min_time == 5
        # D = (240, 240, 320, 300, 360) -> min 240 at width 2 (first occurrence)
        assert sweep.min_data_volume == 240
        assert sweep.width_of_min_volume == 2

    def test_lookups(self, sweep):
        assert sweep.testing_time_at(3) == 80
        assert sweep.data_volume_at(4) == 320

    def test_pareto_widths(self, sweep):
        assert sweep.pareto_widths() == [2, 3, 5]

    def test_cost_at_extremes(self, sweep):
        # alpha=1: pure testing time; minimum at width 5.
        assert sweep.effective_width(1.0).width == 5
        # alpha=0: pure data volume; minimum at width 2.
        assert sweep.effective_width(0.0).width == 2

    def test_cost_curve_values(self, sweep):
        curve = sweep.cost_curve(0.5)
        point = next(p for p in curve if p.width == 3)
        expected = 0.5 * 80 / 60 + 0.5 * 240 / 240
        assert point.cost == pytest.approx(expected)

    def test_effective_width_between_extremes(self, sweep):
        width_half = sweep.effective_width(0.5).width
        assert sweep.width_of_min_volume <= width_half <= sweep.width_of_min_time

    def test_cost_is_at_least_one(self, sweep):
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            for point in sweep.cost_curve(alpha):
                assert point.cost >= 1.0 - 1e-12

    def test_invalid_alpha_rejected(self, sweep):
        with pytest.raises(ValueError):
            sweep.cost_at(2, -0.1)
        with pytest.raises(ValueError):
            sweep.effective_width(1.5)

    def test_module_level_wrappers(self, sweep):
        assert cost_curve(sweep, 0.5) == sweep.cost_curve(0.5)
        assert effective_width(sweep, 0.5) == sweep.effective_width(0.5)
        assert isinstance(effective_width(sweep, 0.5), CostPoint)


class TestSweepTamWidths:
    def test_sweep_runs_scheduler_per_width(self, small_soc):
        sweep = sweep_tam_widths(small_soc, widths=(2, 4, 8))
        assert sweep.widths == (2, 4, 8)
        for width, time in zip(sweep.widths, sweep.testing_times):
            assert time == schedule_soc(small_soc, width).makespan

    def test_sweep_requires_widths(self, small_soc):
        with pytest.raises(ValueError):
            sweep_tam_widths(small_soc, widths=())

    def test_sweep_with_custom_scheduler(self, small_soc):
        calls = []

        def fake_scheduler(soc, width, constraints=None, config=None):
            calls.append(width)
            return TestSchedule(
                soc_name=soc.name,
                total_width=width,
                segments=(ScheduleSegment(core="alpha", start=0, end=1000 // width, width=1),),
            )

        sweep = sweep_tam_widths(small_soc, widths=(2, 5), scheduler=fake_scheduler)
        assert calls == [2, 5]
        assert sweep.testing_times == (500, 200)

    def test_testing_time_trend_downward(self, small_soc):
        sweep = sweep_tam_widths(small_soc, widths=(1, 2, 4, 8, 16))
        assert sweep.testing_times[0] >= sweep.testing_times[-1]

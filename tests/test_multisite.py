"""Tests for the multisite testing model (repro.analysis.multisite)."""

import pytest

from repro.analysis.multisite import (
    MultisitePoint,
    TesterModel,
    best_multisite_width,
    evaluate_multisite,
)
from repro.core.data_volume import TamSweep


@pytest.fixture
def sweep():
    # A simple staircase: wider TAM -> shorter test, saturating at 60 cycles.
    widths = (4, 8, 16, 32)
    times = (400, 210, 120, 80)
    return TamSweep(soc_name="x", widths=widths, testing_times=times)


class TestTesterModel:
    def test_sites(self):
        tester = TesterModel(channels=64, buffer_depth=1000)
        assert tester.sites(4) == 16
        assert tester.sites(16) == 4
        assert tester.sites(48) == 1
        assert tester.sites(100) == 1  # never zero sites

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TesterModel(channels=0, buffer_depth=10)
        with pytest.raises(ValueError):
            TesterModel(channels=8, buffer_depth=0)
        with pytest.raises(ValueError):
            TesterModel(channels=8, buffer_depth=10, reload_cycles=-1)
        with pytest.raises(ValueError):
            TesterModel(channels=8, buffer_depth=10).sites(0)

    def test_buffer_reloads(self):
        tester = TesterModel(channels=8, buffer_depth=100)
        assert tester.buffer_reloads(100) == 0
        assert tester.buffer_reloads(101) == 1
        assert tester.buffer_reloads(250) == 2
        with pytest.raises(ValueError):
            tester.buffer_reloads(0)

    def test_insertion_time_includes_reload_cost(self):
        tester = TesterModel(channels=8, buffer_depth=100, reload_cycles=50)
        assert tester.insertion_time(90) == 90
        assert tester.insertion_time(250) == 250 + 2 * 50


class TestEvaluateMultisite:
    def test_point_fields(self, sweep):
        tester = TesterModel(channels=64, buffer_depth=500, reload_cycles=100)
        points = evaluate_multisite(sweep, tester, batch_size=100)
        assert [p.width for p in points] == list(sweep.widths)
        for point in points:
            assert isinstance(point, MultisitePoint)
            assert point.sites == tester.sites(point.width)
            assert point.insertions == -(-100 // point.sites)
            assert point.batch_time == point.insertions * point.insertion_time

    def test_subset_of_widths(self, sweep):
        tester = TesterModel(channels=64, buffer_depth=500)
        points = evaluate_multisite(sweep, tester, batch_size=10, widths=(8, 32))
        assert [p.width for p in points] == [8, 32]

    def test_invalid_batch(self, sweep):
        tester = TesterModel(channels=64, buffer_depth=500)
        with pytest.raises(ValueError):
            evaluate_multisite(sweep, tester, batch_size=0)

    def test_narrow_width_wins_with_many_channels(self, sweep):
        """When parallel sites dominate, the narrowest TAM gives best throughput."""
        tester = TesterModel(channels=256, buffer_depth=10_000)
        best = best_multisite_width(sweep, tester, batch_size=1000)
        # 64 sites at W=4 (400 cycles each) beat 8 sites at W=32 (80 cycles).
        assert best.width == 4

    def test_wide_width_wins_for_single_device(self, sweep):
        """For a single SOC there is no multisite benefit: fastest test wins."""
        tester = TesterModel(channels=32, buffer_depth=10_000)
        best = best_multisite_width(sweep, tester, batch_size=1)
        assert best.width == 32

    def test_buffer_limit_pushes_toward_narrow_tams(self, sweep):
        """If wide (long? no: short) tests fit but narrow ones need reloads, the
        trade-off shifts; with a tiny buffer and huge reload cost the width whose
        testing time fits the buffer is preferred."""
        # Only the W=32 test (80 cycles) fits a buffer of 100 bits per pin.
        expensive_reload = TesterModel(channels=32, buffer_depth=100, reload_cycles=10_000)
        best = best_multisite_width(sweep, expensive_reload, batch_size=4)
        assert best.width == 32
        assert best.buffer_reloads == 0

    def test_batch_time_monotone_in_batch_size(self, sweep):
        tester = TesterModel(channels=64, buffer_depth=1000)
        small = best_multisite_width(sweep, tester, batch_size=10).batch_time
        large = best_multisite_width(sweep, tester, batch_size=100).batch_time
        assert large >= small

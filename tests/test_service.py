"""Tests for the supervised scheduling service (repro.service).

The contracts pinned here:

* **Protocol.**  Client JSONL lines parse or fail loudly (bad-request,
  never a dead server); result identity is canonical (wall-time-free).
* **Journal.**  Write-ahead records round-trip, a torn final line is
  recovered from, corruption elsewhere refuses to load, and the replay
  fold derives exactly the restart work.
* **Admission + backpressure.**  Bounded queue, ``overloaded`` /
  ``duplicate-id`` / ``shutting-down`` rejections, queue depth on every
  admission reply.
* **Deadlines + cancellation.**  A queued request whose budget expires
  settles ``deadline-exceeded`` without ever starting; an in-flight
  request is abandoned mid-solve; a disconnect cancels a client's work
  and drops its deliveries.
* **Dedup.**  Identical in-flight requests coalesce onto one solve;
  settled results serve from the LRU cache.
* **Crash recovery.**  After a simulated SIGKILL, a fresh supervisor on
  the same journal re-serves completed-but-unacked results *verbatim*
  (wall_time included) and re-runs unsettled requests byte-identically.
* **Lifecycle hardening.**  ``FlatExecutor.close`` / ``Session.close``
  are idempotent and survive a dead pool; ``use_executor`` restores the
  previous process default even when the body raises.

Determinism: tests gate the supervisor's worker threads on events via
``started_hook`` (the chaos-harness idiom) instead of sleeping, so the
interleavings are forced, not raced.
"""

import io
import json
import threading
import time

import pytest

import repro.engine.executor as executor_module
from repro.engine.executor import FlatExecutor, use_executor
from repro.service import protocol
from repro.service.chaos import run_serve_chaos
from repro.service.journal import (
    KIND_ACCEPTED,
    KIND_ACKED,
    KIND_COMPLETED,
    KIND_FAILED,
    KIND_STARTED,
    EventJournal,
    JournalError,
    JournalRecord,
    replay,
)
from repro.service.supervisor import ServiceConfig, Supervisor, SupervisorError
from repro.service.transport import serve_stream
from repro.soc.benchmarks import get_benchmark
from repro.solvers import ScheduleRequest, Session

SOC = get_benchmark("d695")

GATE_TIMEOUT = 30.0


def paper_request(width=16):
    """A millisecond-scale request (the paper solver needs no grid)."""
    return ScheduleRequest(soc=SOC, total_width=width, solver="paper")


class Collector:
    """Thread-safe reply sink recording every delivered server message."""

    def __init__(self):
        self._lock = threading.Lock()
        self._messages = []

    def __call__(self, message):
        with self._lock:
            self._messages.append(dict(message))

    def messages(self, event=None):
        with self._lock:
            snapshot = list(self._messages)
        if event is None:
            return snapshot
        return [message for message in snapshot if message.get("event") == event]

    def results(self):
        return {
            message["id"]: dict(message["result"])
            for message in self.messages(protocol.EVENT_RESULT)
        }


class Gate:
    """Holds the first solve at its ``started`` hook until released."""

    def __init__(self):
        self._lock = threading.Lock()
        self._calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, request_id):
        with self._lock:
            self._calls += 1
            first = self._calls == 1
        if first:
            self.entered.set()
            self.release.wait(timeout=GATE_TIMEOUT)


def journal_kinds(supervisor, request_id):
    """The journalled transition kinds of one request, in order."""
    return [
        record.kind
        for record in supervisor._journal.records()
        if record.request_id == request_id
    ]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    """Client line validation and canonical result identity."""

    def test_parse_valid_solve(self):
        request = paper_request()
        line = (
            '{"op": "solve", "id": "r1", "request": '
            + protocol.encode_message(request.to_dict())
            + ', "deadline": 2.5}'
        )
        message = protocol.parse_client_line(line)
        assert message["op"] == protocol.OP_SOLVE
        assert message["id"] == "r1"
        assert message["deadline"] == 2.5
        rebuilt = ScheduleRequest.from_dict(message["request"])
        assert rebuilt.fingerprint() == request.fingerprint()

    @pytest.mark.parametrize(
        "line, match",
        [
            ("not json", "not valid JSON"),
            ("[1, 2]", "JSON object"),
            ('{"op": "fly"}', "unknown op"),
            ('{"op": "solve", "request": {}}', "requires a non-empty string 'id'"),
            ('{"op": "solve", "id": "r1"}', "requires a 'request' object"),
            (
                '{"op": "solve", "id": "r1", "request": {}, "deadline": -1}',
                "must be positive",
            ),
            (
                '{"op": "solve", "id": "r1", "request": {}, "deadline": true}',
                "must be a number",
            ),
            ('{"op": "ack"}', "requires a non-empty string 'id'"),
            ('{"op": "cancel", "id": ""}', "requires a non-empty string 'id'"),
        ],
    )
    def test_parse_rejects_malformed_lines(self, line, match):
        with pytest.raises(protocol.ProtocolError, match=match):
            protocol.parse_client_line(line)

    def test_canonical_result_strips_operational_provenance_only(self):
        result = {
            "makespan": 41,
            "wall_time": 1.25,
            "metadata": {"solver": "paper", "recovery_events": "resurrected:stalled"},
        }
        canonical = protocol.canonical_result_dict(result)
        assert canonical["wall_time"] == 0.0
        assert canonical["metadata"] == {"solver": "paper"}
        assert canonical["makespan"] == 41
        assert result["wall_time"] == 1.25  # input untouched

    def test_result_fingerprint_ignores_wall_time_and_recovery_events(self):
        base = {"makespan": 41, "wall_time": 0.5, "metadata": {}}
        noisy = {
            "makespan": 41,
            "wall_time": 9.0,
            "metadata": {"recovery_events": "resurrected:stalled"},
        }
        different = {"makespan": 42, "wall_time": 0.5, "metadata": {}}
        assert protocol.result_fingerprint(base) == protocol.result_fingerprint(noisy)
        assert protocol.result_fingerprint(base) != protocol.result_fingerprint(
            different
        )


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    """Write-ahead records: round-trip, torn-line recovery, replay fold."""

    def test_record_round_trip_and_unknown_kind(self):
        record = JournalRecord(
            seq=3, kind=KIND_COMPLETED, request_id="r1",
            fingerprint="abc", payload={"result": {"makespan": 41}},
        )
        assert JournalRecord.from_dict(record.to_dict()) == record
        with pytest.raises(JournalError, match="unknown journal record kind"):
            JournalRecord(seq=1, kind="exploded", request_id="r1")

    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.append(KIND_ACCEPTED, "r1", fingerprint="f1", payload={"deadline": 2.0})
        journal.append(KIND_STARTED, "r1")
        journal.close()
        journal.close()  # idempotent
        records = EventJournal.load(path)
        assert [record.seq for record in records] == [1, 2]
        assert records[0].payload == {"deadline": 2.0}

    def test_torn_final_line_recovers_corrupt_middle_refuses(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.append(KIND_ACCEPTED, "r1")
        journal.append(KIND_STARTED, "r1")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "comp')  # the write a SIGKILL tore
        records = EventJournal.load(path)
        assert [record.kind for record in records] == [KIND_ACCEPTED, KIND_STARTED]

        lines = path.read_text().splitlines()
        lines[0] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal line 1"):
            EventJournal.load(path)

    def test_start_seq_continues_across_restart(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = EventJournal(path)
        first.append(KIND_ACCEPTED, "r1")
        first.close()
        second = EventJournal(path, start_seq=replay(EventJournal.load(path)).next_seq)
        record = second.append(KIND_STARTED, "r1")
        second.close()
        assert record.seq == 2

    def test_replay_fold_derives_restart_work(self):
        result = {"makespan": 41}
        records = [
            JournalRecord(1, KIND_ACCEPTED, "done", "f1", {"request": {}}),
            JournalRecord(2, KIND_STARTED, "done"),
            JournalRecord(3, KIND_COMPLETED, "done", "f1", {"result": result}),
            JournalRecord(4, KIND_ACKED, "done"),
            JournalRecord(5, KIND_ACCEPTED, "unacked", "f2", {"request": {}}),
            JournalRecord(6, KIND_COMPLETED, "unacked", "f2", {"result": result}),
            JournalRecord(7, KIND_ACCEPTED, "lost", "f3", {"request": {}}),
            JournalRecord(8, KIND_STARTED, "lost"),
            JournalRecord(9, KIND_ACCEPTED, "dead", "f4", {"request": {}}),
            JournalRecord(10, KIND_FAILED, "dead", "f4", {"reason": "cancelled"}),
        ]
        plan = replay(records)
        assert [record.request_id for record in plan.pending] == ["lost"]
        assert [record.request_id for record in plan.completed_unacked] == ["unacked"]
        assert set(plan.cache) == {"f1", "f2"}
        assert plan.seen_ids == ("done", "unacked", "lost", "dead")
        assert plan.completed_ids == ("done", "unacked")
        assert plan.next_seq == 10


# ----------------------------------------------------------------------
# Admission control + backpressure
# ----------------------------------------------------------------------
class TestAdmission:
    """Bounded queue, explicit rejections, queue depth on every reply."""

    def test_config_validation(self):
        with pytest.raises(SupervisorError, match="max_inflight"):
            ServiceConfig(max_inflight=0)
        with pytest.raises(SupervisorError, match="queue_limit"):
            ServiceConfig(queue_limit=0)
        with pytest.raises(SupervisorError, match="default_deadline"):
            ServiceConfig(default_deadline=0.0)
        with pytest.raises(SupervisorError, match="workers"):
            ServiceConfig(workers=-1)

    def test_accept_solves_and_acks(self):
        collector = Collector()
        with Supervisor(config=ServiceConfig(max_inflight=1)) as supervisor:
            message = supervisor.submit("r1", paper_request(), collector)
            assert message["event"] == protocol.EVENT_ACCEPTED
            assert message["fingerprint"] == paper_request().fingerprint()
            assert message["queue_depth"] >= 1
            assert supervisor.drain(timeout=GATE_TIMEOUT)
            supervisor.ack("r1")
            supervisor.ack("never-seen")  # unknown ids are ignored
            assert journal_kinds(supervisor, "r1") == [
                KIND_ACCEPTED, KIND_STARTED, KIND_COMPLETED, KIND_ACKED,
            ]
        results = collector.results()
        assert set(results) == {"r1"}
        assert results["r1"]["solver"] == "paper"
        assert collector.messages(protocol.EVENT_RESULT)[0]["dedup"] == (
            protocol.DEDUP_FRESH
        )

    def test_duplicate_id_rejected(self):
        collector = Collector()
        with Supervisor() as supervisor:
            supervisor.submit("r1", paper_request(), collector)
            message = supervisor.submit("r1", paper_request(16), collector)
            assert message["event"] == protocol.EVENT_REJECTED
            assert message["reason"] == protocol.REJECT_DUPLICATE_ID
            supervisor.drain(timeout=GATE_TIMEOUT)

    def test_overload_rejection_reports_queue_depth(self):
        gate = Gate()
        collector = Collector()
        config = ServiceConfig(max_inflight=1, queue_limit=1)
        supervisor = Supervisor(config=config)
        supervisor.started_hook = gate
        try:
            supervisor.start()
            supervisor.submit("g0", paper_request(), collector)
            assert gate.entered.wait(timeout=GATE_TIMEOUT)  # g0 dequeued, held
            accepted = supervisor.submit("g1", paper_request(18), collector)
            assert accepted["event"] == protocol.EVENT_ACCEPTED
            rejected = supervisor.submit("g2", paper_request(20), collector)
            assert rejected["event"] == protocol.EVENT_REJECTED
            assert rejected["reason"] == protocol.REJECT_OVERLOADED
            assert rejected["queue_depth"] == config.queue_limit
            gate.release.set()
            assert supervisor.drain(timeout=GATE_TIMEOUT)
        finally:
            gate.release.set()
            supervisor.close()
        assert set(collector.results()) == {"g0", "g1"}
        stats = supervisor.stats()
        assert stats["rejected_overloaded"] == 1
        assert stats["max_queue_depth"] <= config.queue_limit + 1

    def test_shutting_down_rejection_after_drain(self):
        collector = Collector()
        with Supervisor() as supervisor:
            supervisor.drain(timeout=GATE_TIMEOUT)
            message = supervisor.submit("late", paper_request(), collector)
            assert message["reason"] == protocol.REJECT_SHUTTING_DOWN

    def test_bad_request_payload_rejected_via_process(self):
        collector = Collector()
        with Supervisor() as supervisor:
            alive = supervisor.process(
                {"op": "solve", "id": "r1", "request": {"soc": "no-such-soc"}},
                collector,
            )
            assert alive
            supervisor.drain(timeout=GATE_TIMEOUT)
        rejected = collector.messages(protocol.EVENT_REJECTED)
        assert len(rejected) == 1
        assert rejected[0]["reason"] == protocol.REJECT_BAD_REQUEST
        assert rejected[0]["error"]


# ----------------------------------------------------------------------
# Deadlines + cancellation
# ----------------------------------------------------------------------
class TestDeadlinesAndCancellation:
    """Budgets expire queued or mid-solve; disconnects cancel client work."""

    def test_deadline_expires_while_queued_without_starting(self):
        gate = Gate()
        collector = Collector()
        supervisor = Supervisor(config=ServiceConfig(max_inflight=1))
        supervisor.started_hook = gate
        try:
            supervisor.start()
            supervisor.submit("slow", paper_request(), collector)
            assert gate.entered.wait(timeout=GATE_TIMEOUT)
            supervisor.submit("doomed", paper_request(18), collector, deadline=0.05)
            time.sleep(0.15)  # let the queued budget lapse before release
            gate.release.set()
            assert supervisor.drain(timeout=GATE_TIMEOUT)
        finally:
            gate.release.set()
            supervisor.close()
        failed = {m["id"]: m for m in collector.messages(protocol.EVENT_FAILED)}
        assert failed["doomed"]["reason"] == protocol.FAIL_DEADLINE
        # Expired while queued: journalled accepted -> failed, never started.
        assert journal_kinds(supervisor, "doomed") == [KIND_ACCEPTED, KIND_FAILED]
        assert supervisor.stats()["deadline_expired"] == 1

    def test_deadline_abandons_solve_mid_flight(self):
        collector = Collector()
        supervisor = Supervisor(config=ServiceConfig(max_inflight=1))
        supervisor.started_hook = lambda request_id: time.sleep(0.15)
        try:
            supervisor.start()
            supervisor.submit("mid", paper_request(), collector, deadline=0.05)
            assert supervisor.drain(timeout=GATE_TIMEOUT)
        finally:
            supervisor.close()
        failed = collector.messages(protocol.EVENT_FAILED)
        assert [m["id"] for m in failed] == ["mid"]
        assert failed[0]["reason"] == protocol.FAIL_DEADLINE
        # The solve *started* and was abandoned at a scheduler checkpoint.
        assert journal_kinds(supervisor, "mid") == [
            KIND_ACCEPTED, KIND_STARTED, KIND_FAILED,
        ]

    def test_explicit_cancel_of_queued_request(self):
        gate = Gate()
        collector = Collector()
        supervisor = Supervisor(config=ServiceConfig(max_inflight=1))
        supervisor.started_hook = gate
        try:
            supervisor.start()
            supervisor.submit("held", paper_request(), collector)
            assert gate.entered.wait(timeout=GATE_TIMEOUT)
            supervisor.submit("victim", paper_request(18), collector)
            assert supervisor.cancel("victim")
            assert not supervisor.cancel("never-seen")
            gate.release.set()
            assert supervisor.drain(timeout=GATE_TIMEOUT)
        finally:
            gate.release.set()
            supervisor.close()
        failed = {m["id"]: m for m in collector.messages(protocol.EVENT_FAILED)}
        assert failed["victim"]["reason"] == protocol.FAIL_CANCELLED
        assert set(collector.results()) == {"held"}

    def test_disconnect_cancels_in_flight_work_and_drops_delivery(self):
        gate = Gate()
        collector = Collector()
        supervisor = Supervisor(config=ServiceConfig(max_inflight=1))
        supervisor.started_hook = gate
        try:
            supervisor.start()
            supervisor.submit("gone", paper_request(), collector, client="alice")
            assert gate.entered.wait(timeout=GATE_TIMEOUT)
            assert supervisor.disconnect("alice") == 1
            assert supervisor.disconnect("nobody") == 0
            gate.release.set()
            assert supervisor.drain(timeout=GATE_TIMEOUT)
        finally:
            gate.release.set()
            supervisor.close()
        # No message of any kind reached the vanished client post-accept...
        assert collector.messages(protocol.EVENT_RESULT) == []
        assert collector.messages(protocol.EVENT_FAILED) == []
        # ...but the journal still settled the request (complete account).
        assert journal_kinds(supervisor, "gone") == [
            KIND_ACCEPTED, KIND_STARTED, KIND_FAILED,
        ]
        stats = supervisor.stats()
        assert stats["disconnects"] == 1
        assert stats["inflight"] == 0


# ----------------------------------------------------------------------
# Dedup: coalescing + cache
# ----------------------------------------------------------------------
class TestDedup:
    """Identical requests share one solve in flight and the cache after."""

    def test_followers_coalesce_onto_in_flight_primary(self):
        gate = Gate()
        collector = Collector()
        supervisor = Supervisor(config=ServiceConfig(max_inflight=2))
        supervisor.started_hook = gate
        request = paper_request()
        try:
            supervisor.start()
            supervisor.submit("a", request, collector)
            assert gate.entered.wait(timeout=GATE_TIMEOUT)
            supervisor.submit("b", request, collector)
            deadline = time.perf_counter() + GATE_TIMEOUT
            while supervisor.stats().get("dedup_coalesced", 0) < 1:
                assert time.perf_counter() < deadline, "follower never coalesced"
                time.sleep(0.005)
            gate.release.set()
            assert supervisor.drain(timeout=GATE_TIMEOUT)
        finally:
            gate.release.set()
            supervisor.close()
        dedup = {
            m["id"]: m["dedup"] for m in collector.messages(protocol.EVENT_RESULT)
        }
        assert dedup == {"a": protocol.DEDUP_FRESH, "b": protocol.DEDUP_COALESCED}
        results = collector.results()
        assert protocol.canonical_result_dict(
            results["a"]
        ) == protocol.canonical_result_dict(results["b"])
        # The follower never got its own started record: one solve ran.
        assert journal_kinds(supervisor, "b") == [KIND_ACCEPTED, KIND_COMPLETED]

    def test_settled_results_serve_from_cache(self):
        collector = Collector()
        with Supervisor(config=ServiceConfig(max_inflight=1)) as supervisor:
            supervisor.submit("first", paper_request(), collector)
            deadline = time.perf_counter() + GATE_TIMEOUT
            while "first" not in collector.results():
                assert time.perf_counter() < deadline, "first solve never settled"
                time.sleep(0.005)
            supervisor.submit("second", paper_request(), collector)
            assert supervisor.drain(timeout=GATE_TIMEOUT)
            stats = supervisor.stats()
        dedup = {
            m["id"]: m["dedup"] for m in collector.messages(protocol.EVENT_RESULT)
        }
        assert dedup == {
            "first": protocol.DEDUP_FRESH,
            "second": protocol.DEDUP_CACHED,
        }
        assert stats["dedup_cached"] == 1
        assert stats["dedup_cache_entries"] == 1

    def test_cache_disabled_when_size_zero(self):
        collector = Collector()
        config = ServiceConfig(max_inflight=1, dedup_cache_size=0)
        with Supervisor(config=config) as supervisor:
            supervisor.submit("first", paper_request(), collector)
            assert supervisor.drain(timeout=GATE_TIMEOUT)
            assert supervisor.stats()["dedup_cache_entries"] == 0


# ----------------------------------------------------------------------
# Crash recovery: journal replay byte-identity
# ----------------------------------------------------------------------
class TestJournalReplay:
    """A restarted supervisor recovers losslessly from the journal alone."""

    def test_replay_after_simulated_crash_is_byte_identical(self, tmp_path):
        journal_path = tmp_path / "service_journal.jsonl"
        request_one = paper_request(16)
        request_two = paper_request(24)
        batch = Session(workers=0)
        try:
            reference_two = protocol.canonical_result_dict(
                batch.solve(request_two).to_dict()
            )
        finally:
            batch.close()

        first = Supervisor(
            config=ServiceConfig(max_inflight=1, journal_path=journal_path)
        )
        collector = Collector()

        def crash_on_second(request_id):
            if request_id == "r2":
                first.crash_for_test()

        first.started_hook = crash_on_second
        try:
            first.start()
            first.submit("r1", request_one, collector)
            first.submit("r2", request_two, collector)
            first.drain(timeout=GATE_TIMEOUT)
        finally:
            first.close()
        pre_crash = collector.results()
        assert set(pre_crash) == {"r1"}  # r2 died with the "process"

        replay_collector = Collector()
        second = Supervisor(
            config=ServiceConfig(max_inflight=1, journal_path=journal_path)
        )
        try:
            second.start(replay_reply=replay_collector)
            # Recovery restores duplicate-id rejection across the restart.
            rejected = second.submit("r1", request_one, Collector())
            assert rejected["reason"] == protocol.REJECT_DUPLICATE_ID
            assert second.drain(timeout=GATE_TIMEOUT)
            stats = second.stats()
        finally:
            second.close()

        replayed = {
            m["id"]: m for m in replay_collector.messages(protocol.EVENT_RESULT)
        }
        assert set(replayed) == {"r1", "r2"}
        # Completed-but-unacked: re-served VERBATIM -- wall_time included.
        assert replayed["r1"]["dedup"] == protocol.DEDUP_REPLAYED
        assert dict(replayed["r1"]["result"]) == pre_crash["r1"]
        # Accepted-but-unsettled: deterministically re-run.
        assert protocol.canonical_result_dict(
            dict(replayed["r2"]["result"])
        ) == reference_two
        assert stats["replayed"] == 1
        assert stats["recovered"] == 1

    def test_acked_results_are_not_replayed(self, tmp_path):
        journal_path = tmp_path / "service_journal.jsonl"
        first = Supervisor(config=ServiceConfig(journal_path=journal_path))
        try:
            first.start()
            first.submit("r1", paper_request(), Collector())
            assert first.drain(timeout=GATE_TIMEOUT)
            first.ack("r1")
        finally:
            first.close()
        replay_collector = Collector()
        second = Supervisor(config=ServiceConfig(journal_path=journal_path))
        try:
            second.start(replay_reply=replay_collector)
            assert second.drain(timeout=GATE_TIMEOUT)
        finally:
            second.close()
        assert replay_collector.messages(protocol.EVENT_RESULT) == []

    def test_serve_chaos_flood_and_server_kill_scenarios_pass(self, tmp_path):
        report = run_serve_chaos(
            SOC, 12, kinds=("flood", "server-kill"), journal_dir=tmp_path
        )
        assert report.ok, report.to_dict()
        assert [outcome.kind for outcome in report.outcomes] == [
            "flood", "server-kill",
        ]

    def test_serve_chaos_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown serve fault kind"):
            run_serve_chaos(SOC, 12, kinds=("flood", "rack-fire"))


# ----------------------------------------------------------------------
# Stream transport
# ----------------------------------------------------------------------
class TestServeStream:
    """The JSONL stream shell over the supervisor."""

    def run_client(self, lines, config=None):
        supervisor = Supervisor(config=config or ServiceConfig(max_inflight=1))
        output = io.StringIO()
        try:
            served = serve_stream(
                supervisor, io.StringIO("".join(lines)), output, client="test"
            )
        finally:
            supervisor.close()
        messages = [
            json.loads(line) for line in output.getvalue().splitlines()
        ]
        return served, messages, supervisor

    def test_happy_path_hello_result_bye(self):
        request_line = protocol.encode_message(
            {"op": "solve", "id": "r1", "request": paper_request().to_dict()}
        )
        served, messages, _ = self.run_client(
            [request_line + "\n", '{"op": "stats"}\n', '{"op": "shutdown"}\n']
        )
        events = [message["event"] for message in messages]
        assert events[0] == protocol.EVENT_HELLO
        assert events[-1] == protocol.EVENT_BYE
        assert messages[0]["protocol"] == protocol.PROTOCOL_VERSION
        assert protocol.EVENT_ACCEPTED in events
        assert protocol.EVENT_STATS in events
        results = [m for m in messages if m["event"] == protocol.EVENT_RESULT]
        assert [m["id"] for m in results] == ["r1"]
        assert served == 1
        assert messages[-1]["served"] == 1

    def test_eof_drains_instead_of_disconnecting(self):
        request_line = protocol.encode_message(
            {"op": "solve", "id": "r1", "request": paper_request().to_dict()}
        )
        # No shutdown op: the client just closes stdin after one request.
        served, messages, _ = self.run_client([request_line + "\n", "\n"])
        assert served == 1
        assert messages[-1]["event"] == protocol.EVENT_BYE

    def test_malformed_line_answers_bad_request_and_lives_on(self):
        request_line = protocol.encode_message(
            {"op": "solve", "id": "r1", "request": paper_request().to_dict()}
        )
        served, messages, _ = self.run_client(
            ["this is not json\n", request_line + "\n", '{"op": "shutdown"}\n']
        )
        rejected = [m for m in messages if m["event"] == protocol.EVENT_REJECTED]
        assert len(rejected) == 1
        assert rejected[0]["reason"] == protocol.REJECT_BAD_REQUEST
        assert served == 1  # the server outlived the garbage line

    def test_broken_output_pipe_disconnects_the_client(self):
        class BrokenAfter:
            """A sink that dies after ``allow`` successful writes."""

            def __init__(self, allow):
                self.allow = allow
                self.writes = 0

            def write(self, text):
                if self.writes >= self.allow:
                    raise BrokenPipeError("client went away")
                self.writes += 1

            def flush(self):
                pass

        request_line = protocol.encode_message(
            {"op": "solve", "id": "r1", "request": paper_request().to_dict()}
        )
        supervisor = Supervisor(config=ServiceConfig(max_inflight=1))
        try:
            # Enough budget for hello + accepted; the result write breaks.
            serve_stream(
                supervisor,
                io.StringIO(request_line + "\n"),
                BrokenAfter(allow=2),
                client="test",
            )
            stats = supervisor.stats()
            journalled = journal_kinds(supervisor, "r1")
        finally:
            supervisor.close()
        # The journal settled the request even though delivery failed --
        # a restarted server would replay it to a reconnecting client.
        assert journalled == [KIND_ACCEPTED, KIND_STARTED, KIND_COMPLETED]
        assert stats["delivery_failures"] >= 1


# ----------------------------------------------------------------------
# Lifecycle hardening (satellites: close idempotency, use_executor)
# ----------------------------------------------------------------------
class TestLifecycleHardening:
    """close() is idempotent and dead-pool-safe; use_executor always restores."""

    class DeadPool:
        """A pool handle whose workers were already reaped (teardown raises)."""

        def terminate(self):
            raise OSError("pool already collected")

        def join(self):
            raise AssertionError("join on a half-collected pool")

    def test_executor_close_survives_dead_pool_and_stays_usable(self):
        executor = FlatExecutor()
        executor._pool = self.DeadPool()
        executor.close()  # must absorb the dead handle, not raise
        assert not executor.pool_alive
        executor.close()  # and stay idempotent after that

    def test_session_close_is_idempotent_and_session_stays_usable(self):
        session = Session(workers=0)
        result = session.solve(paper_request())
        session.close()
        session.close()
        again = session.solve(paper_request())
        assert again.to_dict()["makespan"] == result.to_dict()["makespan"]
        session.close()

    def test_close_default_executor_after_explicit_close(self, monkeypatch):
        executor = FlatExecutor()
        monkeypatch.setattr(executor_module, "_DEFAULT_EXECUTOR", executor)
        executor.close()
        executor_module.close_default_executor()  # the atexit-hook path
        assert not executor.pool_alive

    def test_use_executor_restores_previous_default_when_body_raises(
        self, monkeypatch
    ):
        previous = FlatExecutor()
        monkeypatch.setattr(executor_module, "_DEFAULT_EXECUTOR", previous)
        temporary = FlatExecutor()
        with pytest.raises(RuntimeError, match="mid-dispatch"):
            with use_executor(temporary):
                assert executor_module._DEFAULT_EXECUTOR is temporary
                raise RuntimeError("solve blew up mid-dispatch")
        assert executor_module._DEFAULT_EXECUTOR is previous
        assert not temporary.pool_alive  # the temporary's pool was closed

    def test_use_executor_restores_even_when_teardown_is_hostile(self, monkeypatch):
        previous = FlatExecutor()
        monkeypatch.setattr(executor_module, "_DEFAULT_EXECUTOR", previous)
        temporary = FlatExecutor()
        temporary._pool = self.DeadPool()
        with pytest.raises(RuntimeError):
            with use_executor(temporary):
                raise RuntimeError("boom")
        assert executor_module._DEFAULT_EXECUTOR is previous

    def test_supervisor_close_is_idempotent(self):
        supervisor = Supervisor()
        supervisor.start()
        supervisor.close()
        supervisor.close()
        with pytest.raises(SupervisorError, match="already started"):
            supervisor.start()

"""Unit tests for the Design_wrapper algorithm (repro.wrapper.design_wrapper)."""

import pytest

from repro.soc.core import Core
from repro.wrapper.design_wrapper import (
    design_wrapper,
    preemption_overhead,
    scan_lengths,
    testing_time,
)


class TestDesignWrapper:
    def test_rejects_non_positive_width(self):
        core = Core("c", inputs=2, outputs=2, patterns=3, scan_chains=(4,))
        with pytest.raises(ValueError):
            design_wrapper(core, 0)

    def test_width_one_concatenates_everything(self):
        core = Core("c", inputs=3, outputs=5, patterns=2, scan_chains=(4, 6))
        design = design_wrapper(core, 1)
        assert design.scan_in_length == 4 + 6 + 3
        assert design.scan_out_length == 4 + 6 + 5
        assert design.used_width == 1

    def test_all_cells_placed(self):
        core = Core("c", inputs=7, outputs=9, bidirs=2, patterns=2, scan_chains=(4, 6, 3))
        design = design_wrapper(core, 4)
        assert sum(c.input_cells for c in design.chains) == 7
        assert sum(c.output_cells for c in design.chains) == 9
        assert sum(c.bidir_cells for c in design.chains) == 2
        assert sum(c.internal_length for c in design.chains) == 13

    def test_used_width_never_exceeds_requested(self):
        core = Core("c", inputs=2, outputs=2, patterns=2, scan_chains=(4,))
        design = design_wrapper(core, 16)
        assert design.used_width <= 16

    def test_combinational_core_width_spreads_io(self):
        core = Core.combinational("c", inputs=8, outputs=4, patterns=5)
        design = design_wrapper(core, 4)
        assert design.scan_in_length == 2  # 8 inputs over 4 chains
        assert design.scan_out_length == 1  # 4 outputs over 4 chains

    def test_testing_time_matches_formula(self):
        core = Core("c", inputs=3, outputs=5, patterns=7, scan_chains=(4, 6))
        design = design_wrapper(core, 2)
        si, so = design.scan_in_length, design.scan_out_length
        assert design.testing_time == (1 + max(si, so)) * 7 + min(si, so)
        assert design.testing_time == testing_time(core, 2)

    def test_preemption_overhead_is_si_plus_so(self):
        core = Core("c", inputs=3, outputs=5, patterns=7, scan_chains=(4, 6))
        si, so = scan_lengths(core, 2)
        assert preemption_overhead(core, 2) == si + so


class TestScanLengths:
    def test_scan_lengths_monotone_non_increasing_in_width(self):
        core = Core("c", inputs=10, outputs=12, patterns=4, scan_chains=(9, 7, 5, 3, 3))
        previous = None
        for width in range(1, 12):
            si, so = scan_lengths(core, width)
            longest = max(si, so)
            if previous is not None:
                assert longest <= previous
            previous = longest

    def test_width_beyond_saturation_changes_nothing(self):
        core = Core("c", inputs=2, outputs=2, patterns=3, scan_chains=(8, 8))
        assert testing_time(core, 16) == testing_time(core, 64)

    def test_single_long_chain_limits_improvement(self):
        # One chain of 100 dominates regardless of how many wires are thrown at it.
        core = Core("c", inputs=0, outputs=0, patterns=10, scan_chains=(100, 2, 2))
        assert scan_lengths(core, 8)[0] == 100
        assert testing_time(core, 8) == (1 + 100) * 10 + 100

    def test_cache_returns_consistent_values(self):
        core = Core("c", inputs=4, outputs=4, patterns=6, scan_chains=(5, 5))
        assert scan_lengths(core, 3) == scan_lengths(core, 3)


class TestTestingTimeProperties:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 13, 21, 64])
    def test_time_positive(self, width):
        core = Core("c", inputs=6, outputs=3, patterns=11, scan_chains=(7, 3, 3))
        assert testing_time(core, width) > 0

    def test_time_non_increasing_in_width(self):
        core = Core("c", inputs=20, outputs=30, patterns=9, scan_chains=(15, 10, 10, 5))
        times = [testing_time(core, w) for w in range(1, 40)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_more_patterns_takes_longer(self):
        few = Core("c", inputs=4, outputs=4, patterns=5, scan_chains=(8,))
        many = few.replace(patterns=50)
        assert testing_time(many, 3) > testing_time(few, 3)

    def test_paper_formula_at_width_one_for_pure_scan(self):
        core = Core("c", inputs=0, outputs=0, patterns=3, scan_chains=(10,))
        # si = so = 10 -> T = (1 + 10) * 3 + 10
        assert testing_time(core, 1) == 43

"""Golden regression tests: the perf work must not change a single schedule.

The incremental-state scheduler rewrite and the wrapper-curve kernel are
pure performance changes; these tests pin the scheduler's output on the
two headline benchmark SOCs -- makespans *and* exact segment fingerprints,
preemptive and non-preemptive -- to values recorded from the pre-rewrite
implementation.  If any of these move, an optimisation silently changed
behaviour.

The harness sanity tests below keep ``repro bench`` honest: suite reports
must carry per-phase timings, cache statistics and integrity makespans,
and the golden comparator must actually detect drift.
"""

import pytest

from repro.analysis import perf
from repro.soc.benchmarks import get_benchmark
from repro.soc.constraints import ConstraintSet
from repro.solvers import ScheduleRequest, Session

# Recorded from the pre-kernel, re-scanning scheduler implementation
# (PR 2 tree) -- (makespan, sha256 of the exact segment list).
GOLDEN = {
    ("d695", "nonpreemptive", 16): (
        44528, "1f23121ad0750bf315e3fea2d494a324df9c6bad350d059863cfd418d2361d0c"),
    ("d695", "nonpreemptive", 32): (
        24976, "3593b7726ee986249f0cd0f5442aa3d778c79754e17aa97cffd75c8c7819a186"),
    ("d695", "nonpreemptive", 64): (
        12707, "77131a0390d99a9bc54be66df918c9b8229077af6082ee1511958b37ddb68091"),
    ("d695", "preemptive", 16): (
        44744, "0c17e2429ce15b3adb7676533cb43651e0a7987381738d482863cb64cb848956"),
    ("d695", "preemptive", 32): (
        25058, "41922340c567703cad16d57fde8c391dc28a19f2e2448df6b4a83a28ee1e9417"),
    ("d695", "preemptive", 64): (
        12302, "c3aab66f5e2a9ff6782d8e610ebd80969c840ccab5e9160bad948a95bde827df"),
    ("p93791", "nonpreemptive", 16): (
        2088764, "fc6c98e5de3f6228b54cd8662dd9075edba2b680b29d04f3a4e1173db821fb8f"),
    ("p93791", "nonpreemptive", 32): (
        1040509, "104cb49de22825503c9300da89f006cd91164074e1781dcd0cbcfea4b9cf4883"),
    ("p93791", "nonpreemptive", 64): (
        527435, "f5c86affd63b1eafdf280914a173c21946d2cf5bfaf0e81c20b408785ef1268a"),
    ("p93791", "preemptive", 16): (
        1950735, "7a3eba140ec4d85dbdc876963bec4a3f90e95b4642e58f25c9275e855c0f72e3"),
    ("p93791", "preemptive", 32): (
        969351, "c44f14864cd950fc3c963d019b698b329af8766c3d628b21ee39371262799572"),
    ("p93791", "preemptive", 64): (
        482662, "ab1ca521100b1a8b5d30b58c32d6802005c2bc6f80fab5d8a750dee4a7544e9b"),
    # The remaining ITC'02 stand-ins, recorded when PR 4 scaled the solver
    # matrix to the full registered set (values from the PR 3 scheduler,
    # which PR 4's grid-sweep and heap-selection work must not change).
    ("p22810", "nonpreemptive", 16): (
        486402, "1d308f873d42da63b44f9359e33116670a5f42d9d6c2abf760a5bcaa9832ac88"),
    ("p22810", "nonpreemptive", 32): (
        258087, "4db707b4860ce28161ecfb52821b309f812a3567870e9bbddfc2cd1d5ed56200"),
    ("p22810", "nonpreemptive", 64): (
        123975, "753cae5ed5169ed3333f7496ba18b16e6ceeba1d913dd8d796d6323da85fec2b"),
    ("p22810", "preemptive", 16): (
        484138, "7db928df18f9569530530288e4b248fedd9d28fbe9b36c616b6e4600ccc77703"),
    ("p22810", "preemptive", 32): (
        234137, "6ee35c5ca8b381c8ef7c8658458d5a750d41954c5639b7203ee4d1bf23143775"),
    ("p22810", "preemptive", 64): (
        114864, "2f7cf97e9b42326ee7e5dc6919a9f2fd0d9cf741a95e8220bd4a0710a9e5d81b"),
    ("p34392", "nonpreemptive", 16): (
        1117662, "ebc71f67db9cbfcce7934eb41e981166cc01dc232fa0e4f1f15bc6bbd199a485"),
    ("p34392", "nonpreemptive", 32): (
        624492, "9813ef44288c7756773de27ccfef19b3030d2fdb92ea44807b55c293bcb93b51"),
    ("p34392", "nonpreemptive", 64): (
        544577, "429935aa120bcef0b90f203cfd77451fd29c7abc3ebd974ef0f615fd73d490b8"),
    ("p34392", "preemptive", 16): (
        1139262, "6d73db67f3e54d0e12184c317a0414486906ef54f235cf0ffa0331443cd3f462"),
    ("p34392", "preemptive", 32): (
        624492, "e7152bb8aba95c3e16df6699914b79cd79b20db4d32fdcf8ba8cbe578b1812c9"),
    ("p34392", "preemptive", 64): (
        544577, "e566fe6b746c33a37815edb128f285285e2ec8d765c09ecc2ae295021bd7c0e5"),
}

MODES = {
    "nonpreemptive": None,
    "preemptive": ConstraintSet(default_preemptions=2),
}


@pytest.fixture(scope="module")
def session():
    return Session()


class TestSchedulerGoldenRegression:
    @pytest.mark.parametrize(
        "soc_name,mode,width", sorted(GOLDEN), ids=lambda v: str(v)
    )
    def test_schedule_bit_identical_to_pre_rewrite_implementation(
        self, session, soc_name, mode, width
    ):
        soc = get_benchmark(soc_name)
        result = session.solve(
            ScheduleRequest(
                soc=soc,
                total_width=width,
                solver="paper",
                constraints=MODES[mode],
            )
        )
        makespan, fingerprint = GOLDEN[(soc_name, mode, width)]
        assert result.makespan == makespan
        assert perf.schedule_fingerprint(result.schedule) == fingerprint


class TestHarness:
    def test_curves_suite_report_shape(self):
        report = perf.run_curves_suite(("d695",), repeats=1)
        assert report["suite"] == "curves"
        assert report["socs"] == ["d695"]
        assert len(report["cores"]) == len(get_benchmark("d695").cores)
        for entry in report["cores"]:
            assert entry["cold_seconds"] >= 0
            assert entry["pareto_points"] >= 1
        assert report["phases"]["curve_cold_seconds"]["d695"] > 0
        assert report["cache"]["curve"]["cores"] == len(get_benchmark("d695").cores)
        # Integrity makespans are present and match the golden constants.
        for width in (16, 32, 64):
            makespan, fingerprint = GOLDEN[("d695", "nonpreemptive", width)]
            assert report["makespans"][f"d695/paper/{width}"] == makespan
            assert report["fingerprints"][f"d695/paper/{width}"] == fingerprint

    def test_solve_suite_reports_refusals_not_silent_na(self):
        report = perf.run_solve_suite(("d695",), widths=(16,), repeats=1)
        assert "d695/exhaustive/16" in report["refusals"]
        assert "6 cores" in report["refusals"]["d695/exhaustive/16"]
        # Every non-refused cell carries a makespan.
        assert report["makespans"]["d695/paper/16"] == GOLDEN[("d695", "nonpreemptive", 16)][0]
        assert report["phases"]["cold"]["total"] > 0
        assert report["phases"]["warm"]["total"] > 0

    def test_check_golden_detects_drift(self):
        report = {
            "makespans": {"d695/paper/16": 1},
            "fingerprints": {"d695/paper/16": "aaa"},
        }
        golden = {
            "makespans": {"d695/paper/16": 2, "p93791/paper/16": 3},
            "fingerprints": {"d695/paper/16": "bbb"},
        }
        drifts = perf.check_golden(report, golden)
        assert len(drifts) == 2  # p93791 key absent from the report: skipped
        assert any("makespan drift" in drift for drift in drifts)

    def test_check_golden_passes_on_match(self):
        report = {"makespans": {"a": 1}, "fingerprints": {"a": "x"}}
        golden = {"makespans": {"a": 1}, "fingerprints": {"a": "x"}}
        assert perf.check_golden(report, golden) == []

    def test_check_golden_flags_empty_golden(self):
        assert perf.check_golden({"makespans": {"a": 1}}, {}) != []

    def test_check_golden_flags_empty_key_intersection(self):
        # A gate that compares nothing must fail, not silently pass (e.g. a
        # renamed solver changing every report key).
        report = {"makespans": {"d695/sweep/16": 5}}
        golden = {"makespans": {"d695/paper/16": 44528}}
        drifts = perf.check_golden(report, golden)
        assert drifts and "zero values" in drifts[0]

    def test_cold_reset_clears_default_session_cache(self):
        from repro.solvers.session import get_default_session

        session = get_default_session()
        session.rectangle_sets(get_benchmark("d695"), 64)
        perf.cold_reset()
        info = session.cache_info()
        assert (info.hits, info.misses, info.entries) == (0, 0, 0)

    def test_repo_golden_file_matches_current_results(self):
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
            "golden_makespans.json",
        )
        golden = perf.load_report(path)
        report = perf.run_curves_suite(("d695",), repeats=1)
        assert perf.check_golden(report, golden) == []

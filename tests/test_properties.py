"""Property-based tests (hypothesis) for the core invariants of the library.

These cover the data structures and algorithms whose correctness the whole
reproduction rests on: wrapper design, Pareto staircases, the scheduler's
structural guarantees, the lower bound, and the file format round trip.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lower_bounds import lower_bound
from repro.core.rectangles import RectangleSet, build_rectangle_sets
from repro.core.scheduler import schedule_soc
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.itc02 import format_soc, parse_soc_with_constraints
from repro.soc.soc import Soc
from repro.wrapper.design_wrapper import design_wrapper, testing_time
from repro.wrapper.pareto import pareto_points, preferred_width, testing_time_curve

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

core_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=8
)


@st.composite
def cores(draw, name=None):
    """A random, structurally valid core."""
    scan_chains = draw(
        st.lists(st.integers(min_value=1, max_value=40), min_size=0, max_size=6)
    )
    inputs = draw(st.integers(min_value=0, max_value=30))
    outputs = draw(st.integers(min_value=0, max_value=30))
    bidirs = draw(st.integers(min_value=0, max_value=5))
    if inputs + outputs + bidirs + len(scan_chains) == 0:
        inputs = 1
    return Core(
        name=name or draw(core_names),
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        patterns=draw(st.integers(min_value=1, max_value=50)),
        scan_chains=tuple(scan_chains),
    )


@st.composite
def socs(draw, min_cores=2, max_cores=5):
    count = draw(st.integers(min_value=min_cores, max_value=max_cores))
    built = tuple(draw(cores(name=f"core{i}")) for i in range(count))
    return Soc(name="prop-soc", cores=built)


# ---------------------------------------------------------------------------
# Wrapper design / Pareto properties
# ---------------------------------------------------------------------------


class TestWrapperProperties:
    @given(core=cores(), width=st.integers(min_value=1, max_value=48))
    @settings(max_examples=60, deadline=None)
    def test_wrapper_places_every_cell(self, core, width):
        design = design_wrapper(core, width)
        assert sum(c.internal_length for c in design.chains) == core.scan_cells
        assert sum(c.input_cells for c in design.chains) == core.inputs
        assert sum(c.output_cells for c in design.chains) == core.outputs
        assert sum(c.bidir_cells for c in design.chains) == core.bidirs
        assert design.used_width <= width

    @given(core=cores())
    @settings(max_examples=60, deadline=None)
    def test_testing_time_curve_is_non_increasing(self, core):
        curve = testing_time_curve(core, 32)
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert all(value > 0 for value in curve)

    @given(core=cores())
    @settings(max_examples=60, deadline=None)
    def test_pareto_points_are_consistent_with_curve(self, core):
        curve = testing_time_curve(core, 32)
        points = pareto_points(core, 32)
        # Times strictly decrease and every point matches the curve.
        times = [p.time for p in points]
        assert all(a > b for a, b in zip(times, times[1:]))
        for point in points:
            assert curve[point.width - 1] == point.time
        # The last point achieves the curve minimum.
        assert points[-1].time == curve[-1]

    @given(
        core=cores(),
        percent=st.floats(min_value=0, max_value=60, allow_nan=False),
        delta=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_preferred_width_bound(self, core, percent, delta):
        width = preferred_width(core, max_width=32, percent=percent, delta=delta)
        curve = testing_time_curve(core, 32)
        assert 1 <= width <= 32
        top = pareto_points(core, 32)[-1].width
        within_percent = curve[width - 1] <= (1 + percent / 100) * curve[-1] + 1e-9
        assert within_percent or width == top

    @given(core=cores(), width=st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_rectangle_set_time_matches_wrapper(self, core, width):
        rect_set = RectangleSet(core, max_width=32)
        assert rect_set.time_at(width) == testing_time(core, rect_set.effective_width(width))
        assert rect_set.effective_width(width) <= width


# ---------------------------------------------------------------------------
# Scheduler properties
# ---------------------------------------------------------------------------


class TestSchedulerProperties:
    @given(soc=socs(), width=st.integers(min_value=1, max_value=24))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_schedule_is_valid_and_respects_lower_bound(self, soc, width):
        schedule = schedule_soc(soc, width)
        schedule.validate(soc)
        assert schedule.peak_width() <= width
        assert schedule.makespan >= lower_bound(soc, width)

    @given(
        soc=socs(),
        width=st.integers(min_value=2, max_value=16),
        limit=st.integers(min_value=0, max_value=3),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_preemptive_schedule_is_valid(self, soc, width, limit):
        constraints = ConstraintSet.for_soc(soc, default_preemptions=limit)
        schedule = schedule_soc(soc, width, constraints=constraints)
        schedule.validate(soc, constraints)
        for core in soc.core_names:
            assert schedule.preemptions_of(core) <= limit

    @given(soc=socs(min_cores=2, max_cores=4), width=st.integers(min_value=2, max_value=16))
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_precedence_constraint_always_honoured(self, soc, width):
        names = soc.core_names
        constraints = ConstraintSet.for_soc(soc, precedence=[(names[0], names[1])])
        schedule = schedule_soc(soc, width, constraints=constraints)
        schedule.validate(soc, constraints)
        assert (
            schedule.core_summary(names[1]).first_begin
            >= schedule.core_summary(names[0]).last_end
        )

    @given(soc=socs(min_cores=2, max_cores=4), width=st.integers(min_value=2, max_value=16))
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_power_budget_always_honoured(self, soc, width):
        power_max = 1.05 * soc.max_test_power()
        constraints = ConstraintSet.for_soc(soc, power_max=power_max)
        schedule = schedule_soc(soc, width, constraints=constraints)
        schedule.validate(soc, constraints)
        assert schedule.peak_power(soc) <= power_max + 1e-9

    @given(soc=socs(min_cores=2, max_cores=4))
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_area_conservation(self, soc):
        """Occupied TAM area equals the sum of the packed rectangles' areas."""
        schedule = schedule_soc(soc, 8)
        sets = build_rectangle_sets(soc)
        expected = 0
        for core in soc.core_names:
            summary = schedule.core_summary(core)
            width = summary.widths[0]
            expected += summary.total_time * width
        assert schedule.occupied_area == expected


# ---------------------------------------------------------------------------
# Lower bound and file-format properties
# ---------------------------------------------------------------------------


class TestMiscProperties:
    @given(soc=socs(), width=st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_positive_and_monotone_in_width(self, soc, width):
        bound = lower_bound(soc, width)
        assert bound > 0
        if width > 1:
            assert bound <= lower_bound(soc, width - 1)

    @given(soc=socs(), width=st.integers(min_value=1, max_value=24))
    @settings(max_examples=30, deadline=None)
    def test_area_bound_scaling(self, soc, width):
        sets = build_rectangle_sets(soc)
        total = sum(sets[c].min_area for c in soc.core_names)
        assert lower_bound(soc, width) >= math.ceil(total / width)

    @given(soc=socs())
    @settings(max_examples=40, deadline=None)
    def test_format_parse_round_trip(self, soc):
        text = format_soc(soc)
        parsed, _ = parse_soc_with_constraints(text)
        assert parsed == soc

"""Chaos tests for the fault-tolerant executor (repro.engine.faults).

Two contracts are pinned here:

* **Determinism under faults.**  For every injected fault class -- worker
  kills, task exceptions, task hangs, pool-creation failures -- and for
  every worker count, the grid sweep and the sweep engine return results
  byte-identical to the fault-free serial reference (schedules compared
  by fingerprint).  Randomized fault schedules are seeded, and injection
  is keyed on task fingerprints and attempt numbers, never wall-clock.
* **An observable recovery ladder.**  Every recovery path the executor
  takes (retry -> resurrect -> quarantine -> serial) surfaces as ordered
  ``RecoveryEvent``s on the executor stats, the sweep outcome, result
  metadata and the CSV export, with the structured fault journal
  (``FailureRecord``) explaining each step.
"""

import json
import random
import warnings

import pytest

import repro.engine.executor as executor_module
from repro.analysis.perf import schedule_fingerprint
from repro.core.grid_sweep import run_grid_sweep
from repro.engine.executor import (
    DEFAULT_TASK_DEADLINE,
    ENV_TASK_DEADLINE,
    FlatExecutor,
    use_executor,
)
from repro.engine.faults import (
    ENV_FAULT_PLAN,
    RECOVERY_LADDER,
    STAGE_PARALLEL,
    STAGE_QUARANTINED,
    STAGE_RESURRECTED,
    STAGE_SERIAL,
    FailureRecord,
    FaultAction,
    FaultPlan,
    FaultPlanError,
    RecoveryEvent,
    backoff_delay,
    encode_recovery_events,
    fingerprint_spread,
    ladder_stage,
)
from repro.engine.jobs import EngineContext, EngineError, ScheduleJob
from repro.engine.runner import run_jobs
from repro.soc.benchmarks import get_benchmark
from repro.soc.generator import GeneratorProfile, generate_soc
from repro.solvers import ScheduleRequest
from repro.solvers.session import get_default_session

# Small profile so each randomized case schedules in milliseconds.
PROFILE = GeneratorProfile(
    min_cores=4,
    max_cores=8,
    max_scan_cells=2000,
    max_scan_chains=10,
    bist_fraction=0.2,
)

SMALL_GRID = {"percents": (1, 10, 40), "deltas": (0, 2), "slacks": (0, 3)}
TRIM_GRID = {"percents": (1, 25), "deltas": (0,), "slacks": (3, 6)}

#: Short watchdog deadline for tests that stall a pool on purpose.
FAST_DEADLINE = 1.0


def chaos_executor(plan, deadline=FAST_DEADLINE):
    """A dedicated executor armed with ``plan``, zero backoff, fast watchdog."""
    return FlatExecutor(
        fault_plan=FaultPlan.from_dict(plan) if isinstance(plan, dict) else plan,
        task_deadline=deadline,
        retry_backoff=0.0,
    )


def sweep_identical(faulted, serial):
    """Byte-identity of two grid-sweep outcomes (schedules by fingerprint)."""
    return (
        faulted == serial  # recovery_events excluded from equality
        and faulted.makespan == serial.makespan
        and faulted.winner == serial.winner
        and schedule_fingerprint(faulted.schedule)
        == schedule_fingerprint(serial.schedule)
    )


# ----------------------------------------------------------------------
# Fault plan parsing and the deterministic backoff
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            actions=(
                FaultAction(kind="exception", match=":r3", attempts=(1, 2)),
                FaultAction(kind="kill", match=":r1"),
                FaultAction(kind="hang", match=":r0", seconds=30.0),
                FaultAction(kind="pool", count=2),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.pool_failure_budget() == 2
        assert bool(plan) and not bool(FaultPlan())

    def test_task_action_matches_fingerprint_and_attempt(self):
        plan = FaultPlan(
            actions=(FaultAction(kind="exception", match=":r3", attempts=(1,)),)
        )
        assert plan.task_action("grid:d695:w32:j0:r3", 1) is not None
        assert plan.task_action("grid:d695:w32:j0:r3", 2) is None
        assert plan.task_action("grid:d695:w32:j0:r2", 1) is None
        # pool actions never fire task-side
        pool = FaultPlan(actions=(FaultAction(kind="pool"),))
        assert pool.task_action("grid:d695:w32:j0:r3", 1) is None

    @pytest.mark.parametrize(
        "payload",
        [
            '{"faults": [{"kind": "meteor"}]}',
            '{"faults": [{"kind": "kill", "attempts": [0]}]}',
            '{"faults": [{"kind": "hang", "seconds": 0}]}',
            '{"faults": [{"kind": "pool", "count": 0}]}',
            '{"faults": [{"kind": "kill", "surprise": 1}]}',
            '{"unknown": []}',
            '{"faults": "nope"}',
            "not json",
        ],
    )
    def test_bad_plans_raise_fault_plan_error(self, payload):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(payload)

    def test_env_hook_inline_file_and_unset(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        assert FaultPlan.from_env() is None
        inline = '{"faults": [{"kind": "pool"}]}'
        monkeypatch.setenv(ENV_FAULT_PLAN, inline)
        assert FaultPlan.from_env().pool_failure_budget() == 1
        path = tmp_path / "plan.json"
        path.write_text(inline)
        monkeypatch.setenv(ENV_FAULT_PLAN, str(path))
        assert FaultPlan.from_env().pool_failure_budget() == 1
        monkeypatch.setenv(ENV_FAULT_PLAN, str(tmp_path / "missing.json"))
        with pytest.raises(FaultPlanError):
            FaultPlan.from_env()

    def test_backoff_is_deterministic_bounded_and_exponential(self):
        fp = "grid:d695:w32:j0:r3"
        assert backoff_delay(fp, 1, 0.05) == backoff_delay(fp, 1, 0.05)
        assert backoff_delay(fp, 2, 0.05) == 2 * backoff_delay(fp, 1, 0.05)
        assert 1.0 <= fingerprint_spread(fp) < 1.16
        assert backoff_delay(fp, 3, 0.0) == 0.0  # base <= 0 disables

    def test_ladder_helpers(self):
        events = (
            RecoveryEvent(STAGE_PARALLEL, "retried", task="t"),
            RecoveryEvent(STAGE_RESURRECTED, "stalled"),
        )
        assert ladder_stage(()) == STAGE_PARALLEL
        assert ladder_stage(events) == STAGE_RESURRECTED
        assert RECOVERY_LADDER.index(STAGE_SERIAL) == len(RECOVERY_LADDER) - 1
        assert encode_recovery_events(events) == (
            "parallel:retried@t>resurrected:stalled"
        )
        record = FailureRecord(
            kind="task-error", task="t", attempt=2, error="E: x", action="retry"
        )
        assert FailureRecord.from_dict(record.to_dict()) == record
        assert RecoveryEvent.from_dict(events[0].to_dict()) == events[0]


# ----------------------------------------------------------------------
# Exact recovery paths per fault class (single-fault plans, d695)
# ----------------------------------------------------------------------
class TestRecoveryLadder:
    """Each fault class takes exactly its rung of the ladder -- and the
    sweep stays byte-identical to the fault-free serial reference."""

    @pytest.fixture
    def soc(self):
        return get_benchmark("d695")

    @pytest.fixture
    def serial(self, soc):
        return run_grid_sweep(soc, 32, **TRIM_GRID)

    def faulted_sweep(self, soc, plan, deadline=FAST_DEADLINE):
        with use_executor(chaos_executor(plan, deadline=deadline)) as executor:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                outcome = run_grid_sweep(soc, 32, workers=2, **TRIM_GRID)
        return outcome, executor

    def test_clean_run_has_no_events(self, soc, serial):
        with use_executor(FlatExecutor()) as executor:
            outcome = run_grid_sweep(soc, 32, workers=2, **TRIM_GRID)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events == ()
        assert executor.last_failures == ()
        assert "recovery_events" not in outcome.metadata()
        assert "degraded_to_serial" not in outcome.metadata()

    def test_transient_exception_retries_on_the_parallel_rung(self, soc, serial):
        fp = "grid:d695:w32:j0:r3"
        plan = {"faults": [{"kind": "exception", "match": fp, "attempts": [1]}]}
        outcome, executor = self.faulted_sweep(soc, plan)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events == (
            RecoveryEvent(STAGE_PARALLEL, "retried", task=fp),
        )
        assert not outcome.degraded_to_serial
        assert outcome.metadata()["recovery_events"] == f"parallel:retried@{fp}"
        assert "degraded_to_serial" not in outcome.metadata()
        (record,) = executor.last_failures
        assert record.kind == "task-error" and record.action == "retry"
        assert record.task == fp and record.attempt == 1
        assert record.error.startswith("InjectedFault:")

    def test_worker_kill_resurrects_the_pool(self, soc, serial):
        plan = {
            "faults": [
                {"kind": "kill", "match": "d695:w32:j0:r1", "attempts": [1]}
            ]
        }
        outcome, executor = self.faulted_sweep(soc, plan)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events == (
            RecoveryEvent(STAGE_RESURRECTED, "stalled"),
        )
        assert ladder_stage(outcome.recovery_events) == STAGE_RESURRECTED
        (record,) = executor.last_failures
        assert record.kind == "pool-stall" and record.action == "resurrect"
        assert "unacknowledged" in record.error

    def test_persistent_hang_is_quarantined(self, soc, serial):
        fp = "grid:d695:w32:j0:r2"
        # Hang on *every* attempt: only quarantine can terminate the run.
        plan = {
            "faults": [
                {
                    "kind": "hang",
                    "match": fp,
                    "attempts": [1, 2, 3, 4, 5, 6],
                    "seconds": 60.0,
                }
            ]
        }
        outcome, executor = self.faulted_sweep(soc, plan)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events == (
            RecoveryEvent(STAGE_RESURRECTED, "stalled"),
            RecoveryEvent(STAGE_QUARANTINED, "stalled", task=fp),
        )
        assert ladder_stage(outcome.recovery_events) == STAGE_QUARANTINED
        quarantines = [
            record for record in executor.last_failures
            if record.action == "quarantine"
        ]
        assert [record.task for record in quarantines] == [fp]

    def test_pool_creation_failure_degrades_to_serial(self, soc, serial):
        plan = {"faults": [{"kind": "pool", "count": 1}]}
        with use_executor(chaos_executor(plan)):
            with pytest.warns(RuntimeWarning, match="degrading to the serial"):
                outcome = run_grid_sweep(soc, 32, workers=2, **TRIM_GRID)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events == (
            RecoveryEvent(STAGE_SERIAL, "pool-creation"),
        )
        assert outcome.degraded_to_serial
        assert outcome.metadata()["degraded_to_serial"] is True

    def test_pool_fault_combined_with_task_faults_stays_serial(self, soc, serial):
        plan = {
            "faults": [
                {"kind": "kill", "match": "d695:w32:j0:r0", "attempts": [1]},
                {"kind": "pool", "count": 1},
            ]
        }
        # The entry pool creation consumes the pool budget, so the run is
        # serial from the start and the kill never fires; identity and the
        # serial rung must hold regardless.
        with use_executor(chaos_executor(plan)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                outcome = run_grid_sweep(soc, 32, workers=2, **TRIM_GRID)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events[-1].stage == STAGE_SERIAL

    def test_repeat_killer_task_is_quarantined(self, soc, serial):
        # A task that takes its pool down twice (kill on attempts 1 and 2)
        # must be quarantined to an in-process run -- never handed to a
        # worker again -- and the sweep still finishes identically.
        fp = "grid:d695:w32:j0:r0"
        plan = {"faults": [{"kind": "kill", "match": fp, "attempts": [1, 2]}]}
        outcome, executor = self.faulted_sweep(soc, plan)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events == (
            RecoveryEvent(STAGE_RESURRECTED, "stalled"),
            RecoveryEvent(STAGE_QUARANTINED, "stalled", task=fp),
        )
        assert executor.last_failures[-1].action == "quarantine"


# ----------------------------------------------------------------------
# Randomized chaos schedules stay bit-identical across worker counts
# ----------------------------------------------------------------------
def random_plan(rng, soc_name, width, run_indices):
    """A seeded random fault schedule over the sweep's task fingerprints."""
    actions = []
    for index in rng.sample(run_indices, min(len(run_indices), rng.randint(1, 3))):
        fingerprint = f"{soc_name}:w{width}:j0:r{index}"
        kind = rng.choice(("exception", "exception", "kill"))
        attempts = rng.choice(((1,), (1, 2)))
        if kind == "kill":
            attempts = (1,)  # one kill costs one watchdog window; keep tests fast
        actions.append(FaultAction(kind=kind, match=fingerprint, attempts=attempts))
    if rng.random() < 0.25:
        actions.append(FaultAction(kind="pool", count=1))
    return FaultPlan(actions=tuple(actions))


class TestRandomizedChaosIdentity:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_plans_across_worker_counts(self, seed):
        rng = random.Random(8200 + seed)
        soc = generate_soc(8200 + seed, name=f"chaos-{seed}", profile=PROFILE)
        width = rng.choice((16, 24))
        serial = run_grid_sweep(soc, width, **SMALL_GRID)
        # Fingerprint run indices follow dedupe order: 0..unique_runs-1.
        run_indices = list(range(serial.unique_runs))
        plan = random_plan(rng, soc.name, width, run_indices)
        for workers in (0, 2, 4):
            with use_executor(chaos_executor(plan)):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    outcome = run_grid_sweep(
                        soc, width, workers=workers, **SMALL_GRID
                    )
            assert sweep_identical(outcome, serial), (
                f"seed {seed} workers {workers} diverged under {plan.to_json()}"
            )
            if workers == 0:
                assert outcome.recovery_events == ()

    @pytest.mark.parametrize("seed", range(2))
    def test_randomized_engine_jobs_under_faults(self, seed):
        # The sweep-engine path: mixed paper/best jobs, faults against both
        # whole-job and grid-task fingerprints.  Faulted results must match
        # the serial reference except for the recovery_events metadata the
        # ladder deliberately adds to affected jobs.
        rng = random.Random(9300 + seed)
        soc = generate_soc(9300 + seed, name=f"chaosjob-{seed}", profile=PROFILE)
        context = EngineContext.for_soc(soc)
        jobs = []
        for index in range(4):
            solver = rng.choice(("paper", "best"))
            jobs.append(
                ScheduleJob(
                    index=index,
                    soc=soc.name,
                    width=rng.choice((10, 16)),
                    solver=solver,
                    options=SMALL_GRID if solver == "best" else {},
                    group=(soc.name,),
                )
            )
        serial = run_jobs(jobs, context, workers=0)
        plan = FaultPlan(
            actions=(
                FaultAction(kind="exception", match=f"job:{soc.name}:", attempts=(1,)),
                FaultAction(kind="exception", match=":r1", attempts=(1, 2)),
            )
        )
        with use_executor(chaos_executor(plan)):
            parallel = run_jobs(jobs, context, workers=2)
        assert len(parallel) == len(serial)
        for left, right in zip(serial, parallel):
            assert left.makespan == right.makespan
            assert schedule_fingerprint(left.schedule) == schedule_fingerprint(
                right.schedule
            )
            left_meta = dict(left.metadata)
            right_meta = dict(right.metadata)
            right_meta.pop("recovery_events", None)
            assert left_meta == right_meta
        stats = parallel.stats
        assert stats.retries > 0
        assert stats.recovery_stage == STAGE_PARALLEL
        assert all(
            event.stage == STAGE_PARALLEL for event in stats.recovery_events
        )


# ----------------------------------------------------------------------
# Acceptance: full-grid best on the paper benchmarks, every fault class
# ----------------------------------------------------------------------
class TestFullGridAcceptance:
    """ISSUE 8 acceptance: under every injected fault class, the full-grid
    best sweep on d695 and p93791 is byte-identical to the fault-free
    serial run, completes without deadlock, and reports its recovery path."""

    CASES = {
        "exception": {"kind": "exception", "attempts": [1]},
        "kill": {"kind": "kill", "attempts": [1]},
        "hang": {"kind": "hang", "attempts": [1], "seconds": 60.0},
        "pool": {"kind": "pool", "count": 1},
    }
    EXPECTED_STAGE = {
        "exception": STAGE_PARALLEL,
        "kill": STAGE_RESURRECTED,
        "hang": STAGE_RESURRECTED,
        "pool": STAGE_SERIAL,
    }
    # Unambiguous run indices (no other index has this as a prefix).
    TARGET = {("d695", 32): "d695:w32:j0:r3", ("p93791", 64): "p93791:w64:j0:r9"}

    @pytest.fixture(scope="class")
    def references(self):
        return {
            key: run_grid_sweep(get_benchmark(key[0]), key[1])
            for key in self.TARGET
        }

    @pytest.mark.parametrize("soc_name,width", [("d695", 32), ("p93791", 64)])
    @pytest.mark.parametrize("fault", sorted(CASES))
    def test_full_grid_identity_under_fault(
        self, references, soc_name, width, fault
    ):
        soc = get_benchmark(soc_name)
        serial = references[(soc_name, width)]
        action = dict(self.CASES[fault])
        if action["kind"] != "pool":
            action["match"] = self.TARGET[(soc_name, width)]
        plan = {"faults": [action]}
        with use_executor(chaos_executor(plan)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                outcome = run_grid_sweep(soc, width, workers=2)
        assert sweep_identical(outcome, serial)
        assert outcome.recovery_events != ()
        assert ladder_stage(outcome.recovery_events) == self.EXPECTED_STAGE[fault]


# ----------------------------------------------------------------------
# Recovery surfaces: stats, metadata, CSV, solve --json, chaos CLI
# ----------------------------------------------------------------------
class TestRecoverySurfaces:
    def test_stats_counters_and_derived_properties(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [
            ScheduleJob(index=0, soc=soc.name, width=16),
            ScheduleJob(index=1, soc=soc.name, width=20),
        ]
        plan = {
            "faults": [
                {"kind": "exception", "match": ":i0", "attempts": [1]},
            ]
        }
        with use_executor(chaos_executor(plan)) as executor:
            results = executor.run_jobs(jobs, context, workers=2)
        stats = results.stats
        assert stats.retries == 1
        assert stats.resurrections == 0 and stats.quarantined == 0
        assert stats.recovery_stage == STAGE_PARALLEL
        assert not stats.degraded_to_serial
        assert results.recovery_events == stats.recovery_events
        fp = f"job:{soc.name}:w16:paper:i0"
        assert stats.recovery_events == (
            RecoveryEvent(STAGE_PARALLEL, "retried", task=fp),
        )
        assert stats.failures[0].task == fp

    def test_retry_exhaustion_reraises_the_task_error(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [
            ScheduleJob(index=0, soc=soc.name, width=16),
            ScheduleJob(index=1, soc=soc.name, width=20),
        ]
        plan = {
            "faults": [
                {"kind": "exception", "match": ":i0", "attempts": [1, 2, 3, 4]},
            ]
        }
        with use_executor(chaos_executor(plan)) as executor:
            with pytest.raises(Exception) as excinfo:
                executor.run_jobs(jobs, context, workers=2)
        assert "injected fault" in str(excinfo.value)
        assert any(
            record.action == "raise" for record in executor.last_failures
        )

    def test_recovery_events_column_in_csv_export(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [
            ScheduleJob(index=0, soc=soc.name, width=16),
            ScheduleJob(index=1, soc=soc.name, width=20),
        ]
        plan = {"faults": [{"kind": "exception", "match": ":i0", "attempts": [1]}]}
        with use_executor(chaos_executor(plan)) as executor:
            results = executor.run_jobs(jobs, context, workers=2)
        csv_text = results.to_csv()
        header, row = csv_text.splitlines()[:2]
        assert "recovery_events" in header.split(",")
        assert "parallel:retried@" in row

    def test_solve_json_metadata_reports_the_ladder(self):
        soc = get_benchmark("d695")
        plan = {
            "faults": [
                {"kind": "exception", "match": "d695:w32:j0:r3", "attempts": [1]}
            ]
        }
        request = ScheduleRequest(
            soc=soc,
            total_width=32,
            solver="best",
            options={**TRIM_GRID, "workers": 2},
        )
        with use_executor(chaos_executor(plan)):
            result = get_default_session().solve(request)
        payload = json.loads(result.to_json())
        assert payload["metadata"]["recovery_events"] == (
            "parallel:retried@grid:d695:w32:j0:r3"
        )

    def test_chaos_cli_round_trip(self, tmp_path):
        from repro import cli

        journal = tmp_path / "journal.json"
        plan = json.dumps(
            {"faults": [{"kind": "exception", "match": ":r3", "attempts": [1]}]}
        )
        code = cli.main(
            [
                "chaos",
                "d695",
                "32",
                "--plan",
                plan,
                "--journal",
                str(journal),
            ]
        )
        assert code == 0
        payload = json.loads(journal.read_text())
        assert payload["identical"] is True
        assert payload["stage"] == STAGE_PARALLEL
        assert payload["recovery_events"]
        assert payload["failures"][0]["action"] == "retry"
        assert "d695/best/32" in payload["makespans"]

    def test_chaos_cli_rejects_bad_plan(self, capsys):
        from repro import cli

        code = cli.main(["chaos", "d695", "16", "--plan", '{"faults": "x"}'])
        assert code == 2
        assert "bad fault plan" in capsys.readouterr().err

    def test_chaos_cli_reports_unrecoverable_plan(self, tmp_path, capsys):
        # A persistent exception past the retry budget re-raises by design;
        # the CLI turns that into exit 1 + the journal trail, not a traceback.
        from repro import cli

        journal = tmp_path / "journal.json"
        plan = json.dumps(
            {
                "faults": [
                    {
                        "kind": "exception",
                        "match": "d695:w32:j0:r3",
                        "attempts": [1, 2, 3, 4, 5, 6],
                    }
                ]
            }
        )
        code = cli.main(
            ["chaos", "d695", "32", "--plan", plan, "--journal", str(journal)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "CHAOS UNRECOVERED" in err
        payload = json.loads(journal.read_text())
        assert "InjectedFault" in payload["unrecovered_error"]
        assert payload["failures"][-1]["action"] == "raise"


# ----------------------------------------------------------------------
# Watchdog and retry configuration
# ----------------------------------------------------------------------
class TestExecutorConfiguration:
    def test_deadline_defaults_and_env_override(self, monkeypatch):
        monkeypatch.delenv(ENV_TASK_DEADLINE, raising=False)
        with FlatExecutor() as executor:
            assert executor._task_deadline == DEFAULT_TASK_DEADLINE
        monkeypatch.setenv(ENV_TASK_DEADLINE, "7.5")
        with FlatExecutor() as executor:
            assert executor._task_deadline == 7.5
        monkeypatch.setenv(ENV_TASK_DEADLINE, "0")
        with FlatExecutor() as executor:
            assert executor._task_deadline is None  # watchdog disabled
        monkeypatch.setenv(ENV_TASK_DEADLINE, "soon")
        with pytest.raises(EngineError):
            FlatExecutor()

    def test_explicit_deadline_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_DEADLINE, "7.5")
        with FlatExecutor(task_deadline=2.0) as executor:
            assert executor._task_deadline == 2.0

    def test_negative_retries_rejected(self):
        with pytest.raises(EngineError):
            FlatExecutor(max_task_retries=-1)

    def test_use_executor_restores_previous_default(self):
        previous = executor_module.get_default_executor()
        replacement = FlatExecutor()
        with use_executor(replacement):
            assert executor_module.get_default_executor() is replacement
        assert executor_module.get_default_executor() is previous

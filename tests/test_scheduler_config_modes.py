"""Tests of the scheduler's optional heuristics and configuration modes."""

import pytest

from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import SchedulerConfig, schedule_soc
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def soc():
    cores = (
        Core("w1", inputs=6, outputs=6, patterns=30, scan_chains=(20, 20, 20)),
        Core("w2", inputs=6, outputs=6, patterns=25, scan_chains=(18, 18)),
        Core("w3", inputs=4, outputs=4, patterns=40, scan_chains=(10, 10, 10, 10)),
        Core("w4", inputs=8, outputs=8, patterns=12, scan_chains=(24,)),
        Core("w5", inputs=12, outputs=10, patterns=18, scan_chains=()),
    )
    return Soc("modes", cores)


class TestHeuristicToggles:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enable_idle_insertion": False},
            {"enable_width_increase": False},
            {"enable_idle_insertion": False, "enable_width_increase": False},
            {"strict_priority_resume": True},
        ],
    )
    def test_disabled_heuristics_still_produce_valid_schedules(self, soc, kwargs):
        config = SchedulerConfig(**kwargs)
        for width in (4, 8, 16):
            schedule = schedule_soc(soc, width, config=config)
            schedule.validate(soc)
            assert schedule.makespan >= lower_bound(soc, width)

    def test_idle_insertion_never_hurts_much(self, soc):
        """Disabling the insertion heuristic may leave wires idle but must not
        change correctness; with it enabled the makespan is usually no worse."""
        width = 12
        with_insertion = schedule_soc(soc, width, config=SchedulerConfig()).makespan
        without = schedule_soc(
            soc, width, config=SchedulerConfig(enable_idle_insertion=False)
        ).makespan
        assert with_insertion <= 1.2 * without

    def test_width_increase_uses_leftover_wires(self):
        """With a single core and a wide TAM, the width-increase heuristic must
        push the core to its saturating width even if its preferred width is
        narrower."""
        core = Core("solo", inputs=6, outputs=6, patterns=30, scan_chains=(20, 20, 20, 20))
        soc = Soc("solo", (core,))
        config = SchedulerConfig(percent=50)  # deliberately narrow preferred width
        schedule = schedule_soc(soc, 32, config=config)
        no_increase = schedule_soc(
            soc, 32, config=SchedulerConfig(percent=50, enable_width_increase=False)
        )
        assert schedule.makespan <= no_increase.makespan

    def test_strict_mode_is_non_preemptive_equivalent_without_budget(self, soc):
        plain = schedule_soc(soc, 8)
        strict = schedule_soc(soc, 8, config=SchedulerConfig(strict_priority_resume=True))
        assert plain.makespan == strict.makespan

    def test_max_core_width_smaller_than_total(self, soc):
        config = SchedulerConfig(max_core_width=4)
        schedule = schedule_soc(soc, 16, config=config)
        schedule.validate(soc)
        assert all(segment.width <= 4 for segment in schedule.segments)


class TestPreferredWidthEffects:
    def test_small_percent_prefers_wide_cores(self, soc):
        wide = schedule_soc(soc, 32, config=SchedulerConfig(percent=0))
        narrow = schedule_soc(soc, 32, config=SchedulerConfig(percent=60))
        avg_width_wide = sum(s.width for s in wide.segments) / len(wide.segments)
        avg_width_narrow = sum(s.width for s in narrow.segments) / len(narrow.segments)
        assert avg_width_wide >= avg_width_narrow

    def test_delta_bump_changes_assignment(self):
        """A core whose preferred width sits just below its saturating width
        gets bumped when delta allows it (the paper's p34392 Core 18 story)."""
        bottleneck = Core(
            "bottleneck", inputs=4, outputs=4, patterns=50, scan_chains=(40, 40, 40, 40, 40)
        )
        filler = Core("filler", inputs=4, outputs=4, patterns=10, scan_chains=(10, 10))
        soc = Soc("bump", (bottleneck, filler))
        no_bump = schedule_soc(soc, 8, config=SchedulerConfig(percent=10, delta=0))
        bump = schedule_soc(soc, 8, config=SchedulerConfig(percent=10, delta=4))
        width_no_bump = no_bump.core_summary("bottleneck").widths[0]
        width_bump = bump.core_summary("bottleneck").widths[0]
        assert width_bump >= width_no_bump


class TestConstraintEdgeCases:
    def test_precedence_chain_with_preemption_budget(self, soc):
        constraints = ConstraintSet.for_soc(
            soc,
            precedence=[("w1", "w2"), ("w2", "w3")],
            default_preemptions=2,
        )
        schedule = schedule_soc(soc, 8, constraints=constraints)
        schedule.validate(soc, constraints)

    def test_concurrency_clique_with_power(self, soc):
        constraints = ConstraintSet.for_soc(
            soc,
            concurrency=[("w1", "w2"), ("w1", "w3"), ("w2", "w3")],
            power_max=2.0 * soc.max_test_power(),
        )
        schedule = schedule_soc(soc, 16, constraints=constraints)
        schedule.validate(soc, constraints)

    def test_width_one_with_constraints(self, soc):
        constraints = ConstraintSet.for_soc(soc, precedence=[("w5", "w1")])
        schedule = schedule_soc(soc, 1, constraints=constraints)
        schedule.validate(soc, constraints)

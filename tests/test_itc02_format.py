"""Unit tests for the ITC'02-style SOC file format (repro.soc.itc02)."""

import pytest

from repro.soc.benchmarks import d695
from repro.soc.core import Core
from repro.soc.itc02 import (
    SocFormatError,
    format_soc,
    load_soc,
    parse_soc,
    parse_soc_with_constraints,
    save_soc,
)
from repro.soc.soc import Soc

SAMPLE = """
# A small example SOC
SocName demo
Core alpha inputs=4 outputs=4 patterns=10 scan=8,8
Core beta  inputs=2 outputs=3 patterns=20 scan=6 power=33
Core gamma inputs=5 outputs=5 patterns=5 scan=10,10,10 bist=engine0
Core delta inputs=6 outputs=2 patterns=30 parent=alpha

PowerMax 120
Precedence alpha delta
Concurrency beta gamma
MaxPreemptions gamma 2
DefaultPreemptions 1
"""


class TestParsing:
    def test_parse_soc_structure(self):
        soc = parse_soc(SAMPLE)
        assert soc.name == "demo"
        assert soc.core_names == ("alpha", "beta", "gamma", "delta")
        assert soc.core("alpha").scan_chains == (8, 8)
        assert soc.core("beta").power == 33
        assert soc.core("gamma").bist_resource == "engine0"
        assert soc.core("delta").parent == "alpha"
        assert soc.core("delta").is_combinational

    def test_parse_constraints(self):
        _, constraints = parse_soc_with_constraints(SAMPLE)
        assert constraints.power_max == 120
        assert ("alpha", "delta") in constraints.precedence
        assert not constraints.allows_concurrent("beta", "gamma")
        assert constraints.preemption_limit("gamma") == 2
        assert constraints.preemption_limit("beta") == 1  # default

    def test_hierarchy_becomes_concurrency_constraint(self):
        _, constraints = parse_soc_with_constraints(SAMPLE)
        assert not constraints.allows_concurrent("alpha", "delta")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# comment\n\nSocName x\n  # indented comment\n"
            "Core a inputs=1 outputs=1 patterns=1\n"
        )
        soc = parse_soc(text)
        assert soc.name == "x"
        assert len(soc) == 1

    def test_inline_comment(self):
        text = "SocName x\nCore a inputs=1 outputs=1 patterns=2  # two patterns\n"
        assert parse_soc(text).core("a").patterns == 2


class TestParseErrors:
    def test_missing_socname(self):
        with pytest.raises(SocFormatError):
            parse_soc("Core a inputs=1 outputs=1 patterns=1\n")

    def test_no_cores(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\n")

    def test_unknown_keyword(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nBogus 1\nCore a inputs=1 outputs=1 patterns=1\n")

    def test_core_without_name(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nCore\n")

    def test_bad_key_value_token(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nCore a inputs\n")

    def test_unknown_core_attribute(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nCore a wires=3\n")

    def test_non_integer_value(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nCore a inputs=three outputs=1 patterns=1\n")

    def test_bad_precedence_arity(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nCore a inputs=1 outputs=1 patterns=1\nPrecedence a\n")

    def test_bad_powermax_arity(self):
        with pytest.raises(SocFormatError):
            parse_soc("SocName x\nCore a inputs=1 outputs=1 patterns=1\nPowerMax 1 2\n")

    def test_error_message_contains_line_number(self):
        text = "SocName x\nCore a inputs=1 outputs=1 patterns=1\nBogus\n"
        with pytest.raises(SocFormatError, match="line 3"):
            parse_soc(text)


class TestRoundTrip:
    def test_format_then_parse_is_identity(self):
        soc, constraints = parse_soc_with_constraints(SAMPLE)
        text = format_soc(soc, constraints)
        soc2, constraints2 = parse_soc_with_constraints(text)
        assert soc2 == soc
        assert set(constraints2.precedence) == set(constraints.precedence)
        assert set(constraints2.concurrency) == set(constraints.concurrency)
        assert constraints2.power_max == constraints.power_max
        assert dict(constraints2.max_preemptions) == dict(constraints.max_preemptions)
        assert constraints2.default_preemptions == constraints.default_preemptions

    def test_round_trip_d695(self):
        soc = d695()
        assert parse_soc(format_soc(soc)) == soc

    def test_round_trip_fractional_power(self):
        soc = Soc("x", (Core("a", inputs=1, outputs=1, patterns=1, power=1.5),))
        assert parse_soc(format_soc(soc)).core("a").power == 1.5

    def test_save_and_load(self, tmp_path):
        soc, constraints = parse_soc_with_constraints(SAMPLE)
        path = tmp_path / "demo.soc"
        save_soc(soc, path, constraints)
        loaded, loaded_constraints = load_soc(path)
        assert loaded == soc
        assert loaded_constraints.power_max == constraints.power_max

    def test_save_without_constraints(self, tmp_path):
        soc = d695()
        path = tmp_path / "d695.soc"
        save_soc(soc, path)
        loaded, constraints = load_soc(path)
        assert loaded == soc
        assert constraints.power_max is None
        assert constraints.precedence == ()

"""Tests for the flattened shared-pool executor (repro.engine.executor).

Three contracts are pinned here:

* **Bit-identity.**  For any job list -- including ``best`` jobs, which the
  executor decomposes into deduplicated grid-run tasks -- the results are
  identical to the serial reference for every worker count (randomized
  property tests over generated SOCs, mixed solvers and constraints).
* **Flat fan-out.**  A ``best`` job running under the sweep engine is
  decomposed in the parent and dispatched as multiple tasks (the old
  two-layer engine silently serialised the grid inside one worker).
* **Observable degrade.**  When no pool can be created the run falls back
  to the serial path with a RuntimeWarning and ``degraded_to_serial`` set
  in the executor stats / sweep metadata -- never silently.
"""

import random

import pytest

import repro.engine.executor as executor_module
from repro.analysis.perf import schedule_fingerprint
from repro.core.grid_sweep import run_grid_sweep
from repro.engine.executor import (
    FlatExecutor,
    get_default_executor,
    prime_context_caches,
)
from repro.engine.jobs import EngineContext, ScheduleJob
from repro.engine.runner import run_jobs
from repro.soc.benchmarks import get_benchmark
from repro.soc.constraints import ConstraintSet
from repro.soc.generator import GeneratorProfile, generate_soc
from repro.solvers import SolverError
from repro.solvers.session import get_default_session

# Small profile so each randomized case schedules in milliseconds.
PROFILE = GeneratorProfile(
    min_cores=4,
    max_cores=8,
    max_scan_cells=2000,
    max_scan_chains=10,
    bist_fraction=0.2,
)

SMALL_GRID = {"percents": (1, 10, 40), "deltas": (0, 2), "slacks": (0, 3)}


def random_jobs(soc, rng, constraints_keys=()):
    """A mixed job list: paper, best (decomposable) and shelf jobs."""
    jobs = []
    for index in range(rng.randint(3, 6)):
        solver = rng.choice(("paper", "best", "best", "shelf"))
        options = SMALL_GRID if solver == "best" else {}
        constraints = (
            rng.choice(constraints_keys) if constraints_keys and rng.random() < 0.5
            else None
        )
        jobs.append(
            ScheduleJob(
                index=index,
                soc=soc.name,
                width=rng.choice((10, 16, 24)),
                constraints=constraints,
                solver=solver,
                options=options,
                group=(soc.name,),
            )
        )
    return jobs


class TestFlatBitIdentity:
    """Flattened parallel results are bit-identical to the serial reference."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_mixed_jobs_across_worker_counts(self, seed):
        rng = random.Random(4000 + seed)
        soc = generate_soc(4000 + seed, name=f"flat-{seed}", profile=PROFILE)
        constraints = {
            "budgeted": ConstraintSet.for_soc(soc, default_preemptions=2)
        }
        context = EngineContext.for_soc(soc, constraints)
        jobs = random_jobs(soc, rng, constraints_keys=("budgeted",))
        serial = run_jobs(jobs, context, workers=0)
        for workers in (2, 4):
            parallel = run_jobs(jobs, context, workers=workers)
            assert tuple(parallel) == tuple(serial)
            for left, right in zip(serial, parallel):
                assert schedule_fingerprint(left.schedule) == schedule_fingerprint(
                    right.schedule
                )
                assert left.metadata == right.metadata

    def test_whole_dispatched_best_job_with_workers_option_stays_identical(self):
        # Enough jobs to trigger whole-job dispatch; each best job carries
        # a workers option.  Inside a daemonic pool worker that inner
        # fan-out is forced serial instead of attempting a nested pool --
        # metadata must NOT grow an environment-dependent degrade marker.
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [
            ScheduleJob(
                index=i,
                soc=soc.name,
                width=width,
                solver="best",
                options={**SMALL_GRID, "workers": 2},
            )
            for i, width in enumerate((10, 14, 18, 22, 26))
        ]
        serial = run_jobs(jobs, context, workers=0)
        import warnings as warnings_module

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            parallel = run_jobs(jobs, context, workers=2)  # 5 >= 2*2: whole jobs
        assert tuple(parallel) == tuple(serial)
        for result in parallel:
            assert "degraded_to_serial" not in dict(result.metadata)
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]

    def test_best_job_results_match_undecomposed_solve(self):
        # The flat path must reproduce the Session.solve('best') result
        # exactly: same schedule, same winner metadata.
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        job = ScheduleJob(
            index=0, soc=soc.name, width=32, solver="best", options=SMALL_GRID
        )
        serial = run_jobs([job], context, workers=0)[0]
        flat = run_jobs([job], context, workers=3)[0]
        assert flat == serial
        assert dict(flat.metadata) == dict(serial.metadata)
        assert schedule_fingerprint(flat.schedule) == schedule_fingerprint(
            serial.schedule
        )


class TestFlatFanOut:
    """Best jobs decompose into parallel grid-run tasks (no nested pools)."""

    def test_best_job_under_engine_runs_grid_in_parallel(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        job = ScheduleJob(
            index=0, soc=soc.name, width=32, solver="best", options=SMALL_GRID
        )
        results = run_jobs([job], context, workers=2)
        stats = results.stats
        assert stats is not None
        assert stats.decomposed_jobs == 1
        # The grid fan-out is visible as task count: one job, many tasks
        # (the old nested-pool fallback ran the grid as a single task).
        assert stats.tasks > 1
        assert stats.workers == 2
        assert not results.degraded_to_serial

    def test_serial_path_reports_one_task_per_job(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [
            ScheduleJob(index=0, soc=soc.name, width=16),
            ScheduleJob(index=1, soc=soc.name, width=24),
        ]
        results = run_jobs(jobs, context, workers=0)
        assert results.stats is not None
        assert results.stats.tasks == results.stats.jobs == 2
        assert results.stats.decomposed_jobs == 0

    def test_best_job_with_unknown_option_raises_canonical_error(self):
        # Undecomposable best jobs stay whole so the solver's own option
        # validation fires, identically on the serial and parallel paths.
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        job = ScheduleJob(
            index=0, soc=soc.name, width=16, solver="best",
            options={"bogus": 1},
        )
        with pytest.raises(SolverError, match="does not understand options"):
            run_jobs([job], context, workers=0)
        with pytest.raises(SolverError, match="does not understand options"):
            run_jobs([job], context, workers=2)


class TestPoolLifecycle:
    """The pool persists across calls and refreshes on context change."""

    def test_pool_persists_for_same_context(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [ScheduleJob(index=i, soc=soc.name, width=w)
                for i, w in enumerate((12, 16, 20, 24))]
        with FlatExecutor() as executor:
            executor.run_jobs(jobs, context, workers=2)
            first_pool = executor._pool
            assert first_pool is not None
            executor.run_jobs(jobs, context, workers=2)
            assert executor._pool is first_pool  # reused, not recreated
            other = EngineContext.for_soc(get_benchmark("p34392"))
            other_jobs = [ScheduleJob(index=0, soc="p34392", width=16),
                          ScheduleJob(index=1, soc="p34392", width=20)]
            executor.run_jobs(other_jobs, other, workers=2)
            assert executor._pool is not first_pool  # context changed
        assert not executor.pool_alive  # context manager closed it

    def test_close_is_idempotent_and_executor_stays_usable(self):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [ScheduleJob(index=i, soc=soc.name, width=w)
                for i, w in enumerate((12, 16))]
        executor = FlatExecutor()
        try:
            serial = executor.run_jobs(jobs, context, workers=0)
            executor.close()
            executor.close()
            again = executor.run_jobs(jobs, context, workers=2)
            assert tuple(again) == tuple(serial)
        finally:
            executor.close()

    def test_default_executor_is_shared(self):
        assert get_default_executor() is get_default_executor()


class TestObservableDegrade:
    """Pool-creation failure warns and marks the results -- never silent."""

    @pytest.fixture
    def broken_pools(self, monkeypatch):
        class BrokenContext:
            def get_start_method(self):
                return "fork"

            def RawArray(self, *args, **kwargs):
                raise OSError("no shared memory in this sandbox")

            def Pool(self, *args, **kwargs):
                raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(
            executor_module, "preferred_pool_context", lambda: BrokenContext()
        )

    def test_run_jobs_degrade_warns_and_flags(self, broken_pools):
        soc = get_benchmark("d695")
        context = EngineContext.for_soc(soc)
        jobs = [ScheduleJob(index=i, soc=soc.name, width=w)
                for i, w in enumerate((12, 16))]
        with FlatExecutor() as executor:
            serial = executor.run_jobs(jobs, context, workers=0)
            assert not serial.degraded_to_serial
            with pytest.warns(RuntimeWarning, match="degrading to the serial"):
                degraded = executor.run_jobs(jobs, context, workers=4)
        assert degraded.degraded_to_serial
        assert degraded.stats.workers == 0
        assert tuple(degraded) == tuple(serial)  # results stay identical

    def test_grid_sweep_degrade_marks_metadata(self, broken_pools, monkeypatch):
        # run_grid_sweep goes through the default executor; isolate it.
        monkeypatch.setattr(executor_module, "_DEFAULT_EXECUTOR", None)
        soc = get_benchmark("d695")
        serial = run_grid_sweep(soc, 24, **SMALL_GRID)
        with pytest.warns(RuntimeWarning, match="degrading to the serial"):
            degraded = run_grid_sweep(soc, 24, workers=4, **SMALL_GRID)
        assert degraded == serial  # flag excluded from equality
        assert degraded.degraded_to_serial
        assert degraded.metadata()["degraded_to_serial"] is True
        assert "degraded_to_serial" not in serial.metadata()


class TestPrecisePriming:
    """Only the (SOC, width) pairs the job list references are warmed."""

    def test_prime_pairs_warms_only_referenced_combinations(self):
        small = get_benchmark("d695")
        big = get_benchmark("p93791")
        context = EngineContext(socs={small.name: small, big.name: big})
        session = get_default_session()
        session.clear_cache()
        primed = prime_context_caches(context, {(small.name, 32)})
        assert primed == len(small.cores)  # big SOC untouched
        info = session.cache_info()
        assert info.entries == 1

    def test_prime_legacy_width_form_covers_every_soc(self):
        small = get_benchmark("d695")
        context = EngineContext.for_soc(small)
        session = get_default_session()
        session.clear_cache()
        primed = prime_context_caches(context, (16,))
        assert primed == len(small.cores)
        assert session.cache_info().entries == 1

    def test_run_jobs_primes_exactly_the_job_pairs(self):
        small = get_benchmark("d695")
        big = get_benchmark("p93791")
        context = EngineContext(socs={small.name: small, big.name: big})
        session = get_default_session()
        session.clear_cache()
        jobs = [ScheduleJob(index=0, soc=small.name, width=12)]
        run_jobs(jobs, context, workers=0)
        entries = session.cache_info().entries
        # Only d695's (SOC, max-core-width) pair -- p93791 stays cold.
        assert entries == 1

"""JSON round-trip tests for the solver wire format.

The serialization `ScheduleRequest`/`ScheduleResult` provide is what a
future service layer puts on the wire: these tests pin down that a request
with a full SchedulerConfig and ConstraintSet payload -- and a result with
a packed schedule -- survive ``to_dict``/``from_dict`` and
``to_json``/``from_json`` unchanged.
"""

import json

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import ScheduleSegment, TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.solvers import ScheduleRequest, ScheduleResult, Session, SolverError


@pytest.fixture
def feasible_constraints(small_soc):
    """Like the shared small_constraints fixture, but solvable (power fits)."""
    return ConstraintSet.for_soc(
        small_soc,
        precedence=[("alpha", "delta")],
        concurrency=[("beta", "gamma")],
        power_max=200.0,
        max_preemptions={"gamma": 2},
    )


@pytest.fixture
def full_request(small_soc, feasible_constraints):
    """A request exercising every field: config, constraints and options."""
    return ScheduleRequest(
        soc=small_soc,
        total_width=12,
        solver="best",
        config=SchedulerConfig(
            percent=7.5,
            delta=2,
            max_core_width=32,
            insertion_slack=4,
            enable_idle_insertion=False,
            enable_width_increase=False,
            strict_priority_resume=True,
        ),
        constraints=feasible_constraints,
        options={"percents": [1, 5], "deltas": [0], "slacks": [3]},
    )


class TestScheduleRequestRoundTrip:
    def test_dict_round_trip_is_identity(self, full_request):
        rebuilt = ScheduleRequest.from_dict(full_request.to_dict())
        assert rebuilt == full_request

    def test_json_round_trip_is_identity(self, full_request):
        rebuilt = ScheduleRequest.from_json(full_request.to_json(indent=2))
        assert rebuilt == full_request

    def test_to_dict_is_json_serializable(self, full_request):
        json.dumps(full_request.to_dict())  # must not raise

    def test_config_payload_survives(self, full_request):
        data = full_request.to_dict()
        assert data["config"]["percent"] == 7.5
        assert data["config"]["strict_priority_resume"] is True
        rebuilt = ScheduleRequest.from_dict(data)
        assert rebuilt.config == full_request.config

    def test_constraints_payload_survives(self, full_request, feasible_constraints):
        data = full_request.to_dict()
        assert data["constraints"]["power_max"] == feasible_constraints.power_max
        rebuilt = ScheduleRequest.from_dict(data)
        assert rebuilt.constraints == feasible_constraints
        assert rebuilt.constraints.preemption_limit("gamma") == 2

    def test_defaults_round_trip(self, small_soc):
        request = ScheduleRequest(soc=small_soc, total_width=8)
        rebuilt = ScheduleRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.constraints is None
        assert rebuilt.solver == "paper"

    def test_unknown_config_field_rejected(self, small_soc):
        data = ScheduleRequest(soc=small_soc, total_width=8).to_dict()
        data["config"]["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            ScheduleRequest.from_dict(data)

    def test_invalid_width_rejected(self, small_soc):
        with pytest.raises(SolverError, match="positive"):
            ScheduleRequest(soc=small_soc, total_width=0)

    def test_with_solver_and_with_options(self, small_soc):
        request = ScheduleRequest(soc=small_soc, total_width=8)
        shelf = request.with_solver("shelf")
        assert shelf.solver == "shelf"
        assert shelf.soc == request.soc
        tuned = request.with_options(max_buses=2)
        assert tuned.options == {"max_buses": 2}
        assert request.options == {}

    def test_solved_round_tripped_request_matches_original(self, full_request):
        """A request that crossed the wire solves to the identical result."""
        session = Session()
        original = session.solve(full_request)
        rebuilt = session.solve(ScheduleRequest.from_json(full_request.to_json()))
        assert rebuilt == original


class TestScheduleResultRoundTrip:
    def test_result_with_schedule_round_trips(self, small_soc):
        session = Session()
        result = session.solve(ScheduleRequest(soc=small_soc, total_width=8))
        rebuilt = ScheduleResult.from_json(result.to_json())
        assert rebuilt == result  # wall_time is excluded from equality
        assert rebuilt.schedule == result.schedule

    def test_bound_result_round_trips(self, small_soc):
        session = Session()
        result = session.solve(
            ScheduleRequest(soc=small_soc, total_width=8, solver="lower-bound")
        )
        rebuilt = ScheduleResult.from_dict(result.to_dict())
        assert rebuilt == result
        assert rebuilt.schedule is None
        assert rebuilt.metadata == result.metadata

    def test_metadata_survives_json(self, small_soc):
        session = Session()
        result = session.solve(
            ScheduleRequest(soc=small_soc, total_width=8, solver="fixed-width")
        )
        rebuilt = ScheduleResult.from_json(result.to_json())
        assert rebuilt.metadata["bus_widths"] == result.metadata["bus_widths"]
        assert rebuilt.metadata["assignment"] == result.metadata["assignment"]

    def test_to_dict_is_json_serializable(self, small_soc):
        result = Session().solve(ScheduleRequest(soc=small_soc, total_width=8))
        json.dumps(result.to_dict())  # must not raise


class TestTestScheduleRoundTrip:
    def test_schedule_dict_round_trip(self):
        schedule = TestSchedule(
            soc_name="x",
            total_width=8,
            segments=(
                ScheduleSegment(core="a", start=0, end=10, width=4),
                ScheduleSegment(core="b", start=0, end=5, width=4),
                ScheduleSegment(core="b", start=12, end=17, width=4),
            ),
        )
        assert TestSchedule.from_dict(schedule.to_dict()) == schedule

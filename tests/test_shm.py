"""Tests for the zero-copy shared-memory payload plane (repro.engine.shm).

Four contracts are pinned here:

* **Round trips.**  A published plan/universe segment reproduces the
  exact points, preferred-width vectors, configs and curve tables on the
  attach side; the worker attach cache is an LRU capped at
  ``_PLAN_CACHE_LIMIT`` entries.
* **Guarded lifecycle.**  ``ShmSegment.close()`` is idempotent, the
  ``weakref.finalize`` reclaims abandoned segments, and a pooled run
  leaves no plan segment published behind it.
* **Bit-identity.**  Grid sweeps through the shm plane -- including
  mid-run incumbent aborts at aggressive poll cadences, chaos fault
  plans, and every chunk size -- match the serial reference
  record-for-record (schedules by fingerprint), with the payload-plane
  counters visible on the outcome but excluded from equality.
* **Knob resolution.**  ``REPRO_CHUNK_SIZE`` / ``REPRO_BOARD_POLL``
  override the derived chunk size and abort cadence, rejecting
  malformed values with the canonical :class:`EngineError`.
"""

import gc

import pytest

import repro.engine.executor as executor_module
from repro.analysis.perf import schedule_fingerprint
from repro.core.grid_sweep import run_grid_sweep
from repro.core.scheduler import SchedulerConfig
from repro.engine import shm
from repro.engine.executor import (
    DEFAULT_BOARD_POLL,
    ENV_BOARD_POLL,
    ENV_CHUNK_SIZE,
    FlatExecutor,
    _resolve_board_poll,
    _resolve_chunksize,
    use_executor,
)
from repro.engine.faults import FaultPlan
from repro.engine.jobs import EngineError
from repro.soc.benchmarks import get_benchmark
from repro.solvers import ScheduleRequest
from repro.solvers.session import get_default_session

SMALL_GRID = {"percents": (1, 10, 40), "deltas": (0, 2), "slacks": (0, 3)}
TRIM_GRID = {"percents": (1, 25), "deltas": (0,), "slacks": (3, 6)}


def make_runs(count, cores, base=100):
    """Synthetic deduplicated grid runs with distinct vectors."""
    from repro.core.grid_sweep import GridPoint, GridRun

    return tuple(
        GridRun(
            index=i,
            point=GridPoint(percent=float(i + 1), delta=i % 3, slack=i % 5),
            preferred_widths=tuple(base + i * cores + c for c in range(cores)),
        )
        for i in range(count)
    )


def sweep_identical(left, right):
    return (
        left == right
        and left.makespan == right.makespan
        and left.winner == right.winner
        and schedule_fingerprint(left.schedule)
        == schedule_fingerprint(right.schedule)
    )


@pytest.fixture(autouse=True)
def _clean_worker_cache():
    """Each test starts and ends with an empty in-process attach cache."""
    shm.release_worker_segments()
    yield
    shm.release_worker_segments()


# ----------------------------------------------------------------------
# Plan segments: publish / attach round trip and the worker LRU
# ----------------------------------------------------------------------
class TestPlanRoundTrip:
    def test_publish_load_reproduces_every_run(self):
        runs = make_runs(7, cores=11)
        config = SchedulerConfig(percent=3.0, delta=1, insertion_slack=4)
        segment = shm.publish_plan("d695", 32, None, config, runs)
        try:
            payload = shm.load_plan(segment.name)
            assert payload.soc == "d695"
            assert payload.width == 32
            assert payload.constraints is None
            assert payload.config == config
            for run in runs:
                point, vector = payload.run(run.index)
                assert point == run.point
                assert vector == run.preferred_widths
        finally:
            shm.release_worker_segments()
            segment.close()

    def test_empty_and_single_run_plans(self):
        config = SchedulerConfig()
        for runs in (make_runs(0, cores=0), make_runs(1, cores=4)):
            segment = shm.publish_plan("soc", 16, None, config, runs)
            try:
                payload = shm.load_plan(segment.name)
                for run in runs:
                    assert payload.run(run.index) == (
                        run.point,
                        run.preferred_widths,
                    )
            finally:
                shm.release_worker_segments()
                segment.close()

    def test_mismatched_vector_lengths_rejected(self):
        from repro.core.grid_sweep import GridPoint, GridRun

        runs = (
            GridRun(index=0, point=GridPoint(1.0, 0, 0), preferred_widths=(1, 2)),
            GridRun(index=1, point=GridPoint(2.0, 0, 0), preferred_widths=(1,)),
        )
        with pytest.raises(ValueError, match="vector length"):
            shm.publish_plan("soc", 16, None, SchedulerConfig(), runs)

    def test_attach_cache_is_an_lru(self):
        config = SchedulerConfig()
        segments = [
            shm.publish_plan(f"soc{i}", 16, None, config, make_runs(2, cores=3))
            for i in range(shm._PLAN_CACHE_LIMIT + 3)
        ]
        try:
            for segment in segments:
                shm.load_plan(segment.name)
            hits, misses, entries = shm.plan_cache_info()
            assert entries == shm._PLAN_CACHE_LIMIT
            # Re-loading the newest is a hit; the evicted oldest re-attaches.
            before_hits = hits
            shm.load_plan(segments[-1].name)
            assert shm.plan_cache_info()[0] == before_hits + 1
            shm.load_plan(segments[0].name)
            assert shm.plan_cache_info()[2] == shm._PLAN_CACHE_LIMIT
        finally:
            shm.release_worker_segments()
            for segment in segments:
                segment.close()

    def test_release_worker_segments_is_idempotent(self):
        segment = shm.publish_plan(
            "soc", 16, None, SchedulerConfig(), make_runs(2, cores=3)
        )
        try:
            shm.load_plan(segment.name)
            shm.release_worker_segments()
            shm.release_worker_segments()
            assert shm.plan_cache_info()[2] == 0
        finally:
            segment.close()


# ----------------------------------------------------------------------
# Universe segments: SOCs plus warmed curve tables
# ----------------------------------------------------------------------
class TestUniverseRoundTrip:
    def test_adopt_returns_identical_universe(self):
        soc = get_benchmark("d695")
        # Warm the parent's curve tables so the segment actually carries
        # them (adopt re-seeds; results must be unaffected either way).
        get_default_session().solve(
            ScheduleRequest(soc=soc, total_width=16, solver="paper")
        )
        segment = shm.publish_universe({soc.name: soc})
        try:
            adopted = shm.adopt_universe(segment.name)
            assert set(adopted) == {soc.name}
            assert adopted[soc.name] == soc
        finally:
            segment.close()

    def test_adopted_universe_solves_identically(self):
        soc = get_benchmark("d695")
        reference = get_default_session().solve(
            ScheduleRequest(soc=soc, total_width=24, solver="paper")
        )
        segment = shm.publish_universe({soc.name: soc})
        try:
            adopted = shm.adopt_universe(segment.name)
        finally:
            segment.close()
        again = get_default_session().solve(
            ScheduleRequest(soc=adopted[soc.name], total_width=24, solver="paper")
        )
        assert again.makespan == reference.makespan
        assert schedule_fingerprint(again.schedule) == schedule_fingerprint(
            reference.schedule
        )


# ----------------------------------------------------------------------
# Guarded lifecycle: idempotent close, finalizer, no leaked segments
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_close_unlinks_and_is_idempotent(self):
        segment = shm.publish_plan(
            "soc", 16, None, SchedulerConfig(), make_runs(2, cores=3)
        )
        name = segment.name
        assert segment.alive
        segment.close()
        segment.close()
        assert not segment.alive
        with pytest.raises(FileNotFoundError):
            shm.load_plan(name)

    def test_abandoned_segment_is_finalized(self):
        segment = shm.publish_plan(
            "soc", 16, None, SchedulerConfig(), make_runs(2, cores=3)
        )
        name = segment.name
        del segment
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shm.load_plan(name)

    def test_pooled_sweep_releases_its_plan_segments(self):
        soc = get_benchmark("d695")
        executor = FlatExecutor()
        try:
            with use_executor(executor):
                outcome = run_grid_sweep(soc, 32, workers=2, **SMALL_GRID)
            assert outcome.payload_bytes > 0
            assert executor._plan_segments == []
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Bit-identity through the shm plane
# ----------------------------------------------------------------------
class TestShmBitIdentity:
    @pytest.mark.parametrize(
        "soc_name,width,grid",
        [("d695", 32, SMALL_GRID), ("p93791", 64, TRIM_GRID)],
    )
    def test_worker_counts_match_serial_reference(self, soc_name, width, grid):
        soc = get_benchmark(soc_name)
        serial = run_grid_sweep(soc, width, **grid)
        assert serial.payload_bytes == 0  # serial path never dispatches
        for workers in (1, 2, 4):
            parallel = run_grid_sweep(soc, width, workers=workers, **grid)
            assert sweep_identical(parallel, serial)
            if workers >= 2:
                # The shm plane engaged: slim tasks crossed the pipe and
                # each saved pickled bytes against the fat payload.
                assert parallel.payload_bytes > 0
                assert parallel.shm_bytes_saved > 0

    def test_aggressive_board_poll_stays_identical(self, monkeypatch):
        soc = get_benchmark("d695")
        serial = run_grid_sweep(soc, 32, **SMALL_GRID)
        for poll in ("1", "0"):
            monkeypatch.setenv(ENV_BOARD_POLL, poll)
            executor = FlatExecutor()
            try:
                with use_executor(executor):
                    swept = run_grid_sweep(soc, 32, workers=2, **SMALL_GRID)
                assert sweep_identical(swept, serial)
                if poll == "0":
                    assert swept.board_aborts == 0  # checkpoint disabled
            finally:
                executor.close()

    def test_chaos_plan_with_shm_and_aborts_stays_identical(self, monkeypatch):
        # Faults and mid-run aborts compose: kills/exceptions re-dispatch
        # slim shm tasks, the board checkpoint fires every event, and the
        # result still matches the fault-free serial reference.
        monkeypatch.setenv(ENV_BOARD_POLL, "1")
        soc = get_benchmark("d695")
        serial = run_grid_sweep(soc, 32, **SMALL_GRID)
        plan = FaultPlan.from_dict(
            {
                "faults": [
                    {"kind": "exception", "match": ":r0", "attempts": [1]},
                    {"kind": "kill", "match": ":r2", "attempts": [1]},
                ]
            }
        )
        executor = FlatExecutor(
            fault_plan=plan, task_deadline=10.0, retry_backoff=0.0
        )
        try:
            with use_executor(executor):
                swept = run_grid_sweep(soc, 32, workers=2, **SMALL_GRID)
            assert sweep_identical(swept, serial)
        finally:
            executor.close()

    def test_spawn_pool_adopts_universe_and_stays_identical(self, monkeypatch):
        # Under spawn the universe (SOCs + warmed curve tables) travels by
        # shared memory instead of pickled initargs; workers adopt it in
        # the initializer and results still match the serial reference.
        import multiprocessing

        monkeypatch.setattr(
            executor_module,
            "preferred_pool_context",
            lambda: multiprocessing.get_context("spawn"),
        )
        soc = get_benchmark("d695")
        serial = run_grid_sweep(soc, 32, **TRIM_GRID)
        executor = FlatExecutor()
        try:
            with use_executor(executor):
                swept = run_grid_sweep(soc, 32, workers=2, **TRIM_GRID)
            assert sweep_identical(swept, serial)
            assert swept.payload_bytes > 0
        finally:
            executor.close()

    @pytest.mark.parametrize("chunk", ["1", "5", "999"])
    def test_every_chunk_size_stays_identical(self, monkeypatch, chunk):
        monkeypatch.setenv(ENV_CHUNK_SIZE, chunk)
        soc = get_benchmark("d695")
        serial = run_grid_sweep(soc, 32, **SMALL_GRID)
        swept = run_grid_sweep(soc, 32, workers=2, **SMALL_GRID)
        assert sweep_identical(swept, serial)

    def test_watchdog_arms_at_derived_chunk_sizes(self, monkeypatch):
        # A hang inside a multi-task chunk must still trip the watchdog
        # and resurrect the pool without losing the chunk's results.
        monkeypatch.setenv(ENV_CHUNK_SIZE, "4")
        soc = get_benchmark("d695")
        serial = run_grid_sweep(soc, 32, **SMALL_GRID)
        plan = FaultPlan.from_dict(
            {"faults": [{"kind": "hang", "match": ":r1", "attempts": [1],
                         "seconds": 30.0}]}
        )
        executor = FlatExecutor(
            fault_plan=plan, task_deadline=1.0, retry_backoff=0.0
        )
        try:
            with use_executor(executor):
                swept = run_grid_sweep(soc, 32, workers=2, **SMALL_GRID)
            assert sweep_identical(swept, serial)
            assert swept.recovery_events  # the stall was journalled
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Knob resolution: chunk size and board-poll cadence
# ----------------------------------------------------------------------
class TestKnobResolution:
    def test_chunksize_derivation(self, monkeypatch):
        monkeypatch.delenv(ENV_CHUNK_SIZE, raising=False)
        assert _resolve_chunksize(3, 2) == 1  # short queues stay unbatched
        assert _resolve_chunksize(100, 4) == 2
        assert _resolve_chunksize(5000, 4) == 64  # capped
        assert _resolve_chunksize(0, 0) == 1

    def test_chunksize_override(self, monkeypatch):
        monkeypatch.setenv(ENV_CHUNK_SIZE, "7")
        assert _resolve_chunksize(5000, 4) == 7
        monkeypatch.setenv(ENV_CHUNK_SIZE, "0")
        with pytest.raises(EngineError, match="must be positive"):
            _resolve_chunksize(100, 4)
        monkeypatch.setenv(ENV_CHUNK_SIZE, "many")
        with pytest.raises(EngineError, match="not an integer"):
            _resolve_chunksize(100, 4)

    def test_board_poll_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_BOARD_POLL, raising=False)
        assert _resolve_board_poll(None) == DEFAULT_BOARD_POLL
        assert _resolve_board_poll(0) == 0
        assert _resolve_board_poll(3) == 3
        monkeypatch.setenv(ENV_BOARD_POLL, "5")
        assert _resolve_board_poll(None) == 5
        monkeypatch.setenv(ENV_BOARD_POLL, "never")
        with pytest.raises(EngineError, match="not an integer"):
            _resolve_board_poll(None)
        with pytest.raises(EngineError, match="non-negative"):
            _resolve_board_poll(-1)

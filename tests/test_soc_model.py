"""Unit tests for the Soc data model (repro.soc.soc)."""

import pytest

from repro.soc.core import Core
from repro.soc.soc import Soc, SocValidationError


def _cores(*names):
    return tuple(Core(n, inputs=2, outputs=2, patterns=3, scan_chains=(4,)) for n in names)


class TestSocConstruction:
    def test_basic(self):
        soc = Soc("soc1", _cores("a", "b"))
        assert soc.name == "soc1"
        assert len(soc) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(SocValidationError):
            Soc("", _cores("a"))

    def test_no_cores_rejected(self):
        with pytest.raises(SocValidationError):
            Soc("soc", ())

    def test_duplicate_core_names_rejected(self):
        with pytest.raises(SocValidationError):
            Soc("soc", _cores("a", "a"))

    def test_unknown_parent_rejected(self):
        cores = (Core("a", inputs=1, outputs=1, patterns=1, parent="ghost"),)
        with pytest.raises(SocValidationError):
            Soc("soc", cores)

    def test_self_parent_rejected(self):
        cores = (Core("a", inputs=1, outputs=1, patterns=1, parent="a"),)
        with pytest.raises(SocValidationError):
            Soc("soc", cores)

    def test_parent_cycle_rejected(self):
        cores = (
            Core("a", inputs=1, outputs=1, patterns=1, parent="b"),
            Core("b", inputs=1, outputs=1, patterns=1, parent="a"),
        )
        with pytest.raises(SocValidationError):
            Soc("soc", cores)

    def test_valid_hierarchy_accepted(self):
        cores = (
            Core("top", inputs=1, outputs=1, patterns=1),
            Core("mid", inputs=1, outputs=1, patterns=1, parent="top"),
            Core("leaf", inputs=1, outputs=1, patterns=1, parent="mid"),
        )
        soc = Soc("soc", cores)
        assert soc.children_of("top") == (soc.core("mid"),)


class TestContainerProtocol:
    def test_iteration_preserves_order(self):
        soc = Soc("soc", _cores("x", "y", "z"))
        assert [c.name for c in soc] == ["x", "y", "z"]
        assert soc.core_names == ("x", "y", "z")

    def test_contains_by_name_and_core(self):
        soc = Soc("soc", _cores("x", "y"))
        assert "x" in soc
        assert soc.core("y") in soc
        assert "nope" not in soc

    def test_getitem_int_and_str(self):
        soc = Soc("soc", _cores("x", "y"))
        assert soc[0].name == "x"
        assert soc["y"].name == "y"

    def test_getitem_bad_type(self):
        soc = Soc("soc", _cores("x"))
        with pytest.raises(TypeError):
            soc[1.5]  # type: ignore[index]

    def test_core_lookup_missing_raises(self):
        soc = Soc("soc", _cores("x"))
        with pytest.raises(KeyError):
            soc.core("missing")


class TestAggregates:
    def test_totals(self):
        soc = Soc("soc", _cores("a", "b", "c"))
        assert soc.total_patterns == 9
        assert soc.total_scan_cells == 12
        assert soc.total_test_bits == sum(c.total_test_bits for c in soc.cores)

    def test_max_test_power(self):
        cores = (
            Core("a", inputs=1, outputs=1, patterns=1, power=5.0),
            Core("b", inputs=1, outputs=1, patterns=1, power=11.0),
        )
        assert Soc("soc", cores).max_test_power() == 11.0

    def test_bist_groups(self):
        cores = (
            Core("a", inputs=1, outputs=1, patterns=1, bist_resource="e0"),
            Core("b", inputs=1, outputs=1, patterns=1, bist_resource="e0"),
            Core("c", inputs=1, outputs=1, patterns=1, bist_resource="e1"),
            Core("d", inputs=1, outputs=1, patterns=1),
        )
        groups = Soc("soc", cores).bist_groups()
        assert groups == {"e0": ("a", "b"), "e1": ("c",)}


class TestTransforms:
    def test_with_cores(self):
        soc = Soc("soc", _cores("a", "b"))
        reduced = soc.with_cores(_cores("a"))
        assert reduced.name == "soc"
        assert len(reduced) == 1

    def test_subset(self):
        soc = Soc("soc", _cores("a", "b", "c"))
        sub = soc.subset(["c", "a"])
        assert sub.core_names == ("c", "a")
        assert sub.name == "soc-subset"

    def test_renamed(self):
        soc = Soc("soc", _cores("a",))
        assert soc.renamed("other").name == "other"
        assert soc.renamed("other").cores == soc.cores

    def test_summary_lists_every_core(self):
        soc = Soc("soc", _cores("a", "b"))
        summary = soc.summary()
        assert "soc" in summary
        assert "a:" in summary and "b:" in summary

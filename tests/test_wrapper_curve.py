"""Property tests pinning the wrapper-curve kernel to the reference BFD path.

The single-pass kernel (:mod:`repro.wrapper.curve`) must agree *exactly*
with the per-width reference implementation
(:func:`repro.wrapper.design_wrapper.design_wrapper` and its memoised
helpers) -- every scan-in/scan-out length, every staircase value, every
Pareto point, on every core.  The randomized cases here are
hypothesis-style: a seeded generator draws random scan-chain multisets and
I/O counts so the analytic water-filling distributor is exercised across
tie-break and saturation corners that the benchmark SOCs never hit.
"""

import random
import sys

import pytest

from repro.soc.benchmarks import get_benchmark
from repro.soc.core import Core
from repro.wrapper.curve import (
    WrapperCurve,
    clear_curve_cache,
    curve_cache_info,
    wrapper_curve,
)

# The reference module object (the package re-exports a function under the
# same name, so plain attribute imports would shadow it).
import repro.wrapper.design_wrapper  # noqa: F401

reference = sys.modules["repro.wrapper.design_wrapper"]


def assert_curve_matches_reference(core: Core, max_width: int) -> None:
    """Pin every kernel quantity to the reference BFD design at each width."""
    curve = wrapper_curve(core, max_width)
    for width in range(1, max_width + 1):
        design = reference.design_wrapper(core, width)
        assert curve.raw_scan_lengths(width) == (
            design.scan_in_length,
            design.scan_out_length,
        ), f"{core.name}: raw scan lengths diverge at width {width}"
        assert curve.raw_time(width) == design.testing_time
        best = reference._best_width_upto(core, width)
        assert curve.best_width(width) == best
        assert curve.time(width) == reference._raw_testing_time(core, best)
        assert curve.scan_lengths(width) == reference._scan_lengths_cached(core, best)


def random_core(rng: random.Random, index: int) -> Core:
    """One random core: random scan-chain multiset and I/O counts."""
    while True:
        num_chains = rng.randint(0, 12)
        chains = tuple(rng.randint(1, 400) for _ in range(num_chains))
        inputs = rng.randint(0, 150)
        outputs = rng.randint(0, 150)
        bidirs = rng.randint(0, 80)
        if inputs + outputs + bidirs + num_chains == 0:
            continue
        return Core(
            name=f"random-{index}",
            inputs=inputs,
            outputs=outputs,
            bidirs=bidirs,
            patterns=rng.randint(1, 50),
            scan_chains=chains,
        )


class TestKernelEqualsReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_cores_match_reference(self, seed):
        rng = random.Random(1000 + seed)
        for index in range(25):
            core = random_core(rng, index)
            max_width = rng.choice((1, 2, 3, 7, 17, 33, 64))
            assert_curve_matches_reference(core, max_width)

    def test_d695_cores_match_reference_across_full_staircase(self):
        soc = get_benchmark("d695")
        for core in soc.cores:
            assert_curve_matches_reference(core, 64)

    def test_combinational_core_matches_reference(self):
        core = Core.combinational("comb", inputs=23, outputs=9, patterns=11, bidirs=4)
        assert_curve_matches_reference(core, 40)

    def test_single_chain_core_matches_reference(self):
        core = Core("one", inputs=5, outputs=5, patterns=3, scan_chains=(100,))
        assert_curve_matches_reference(core, 16)

    def test_tie_break_heavy_core_matches_reference(self):
        # Many identical chains and cell counts that leave a remainder after
        # water-filling: the analytic distributor must reproduce the heap's
        # (secondary key, index) tie-break exactly.
        core = Core(
            "ties",
            inputs=7,
            outputs=7,
            bidirs=5,
            patterns=2,
            scan_chains=(50,) * 8 + (25,) * 4,
        )
        assert_curve_matches_reference(core, 64)


class TestWrapperCurveApi:
    @pytest.fixture
    def core(self):
        return Core("c", inputs=12, outputs=20, patterns=15, scan_chains=(14, 10, 8, 8, 4))

    def test_times_is_the_non_increasing_staircase(self, core):
        curve = wrapper_curve(core, 64)
        times = curve.times
        assert len(times) == 64
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_pareto_widths_are_the_strict_steps(self, core):
        curve = wrapper_curve(core, 64)
        times = curve.times
        expected = [1] + [
            w for w in range(2, 65) if times[w - 1] < times[w - 2]
        ]
        assert list(curve.pareto_widths) == expected

    def test_effective_width_binary_search_matches_linear_scan(self, core):
        curve = wrapper_curve(core, 64)
        widths = list(curve.pareto_widths)
        for query in range(1, 80):
            expected = max((w for w in widths if w <= query), default=widths[0])
            assert curve.effective_width(query) == expected

    def test_first_width_within_matches_linear_scan(self, core):
        curve = wrapper_curve(core, 64)
        times = curve.times
        for percent in (0, 1, 5, 10, 25, 50):
            target = (1 + percent / 100) * times[-1]
            expected = next(w for w in range(1, 65) if times[w - 1] <= target)
            assert curve.first_width_within(target) == expected

    def test_invalid_widths_raise(self, core):
        curve = wrapper_curve(core, 8)
        with pytest.raises(ValueError):
            curve.time(0)
        with pytest.raises(ValueError):
            curve.time(9)
        with pytest.raises(ValueError):
            curve.effective_width(0)
        with pytest.raises(ValueError):
            wrapper_curve(core, 0)

    def test_min_area_over_pareto_points(self, core):
        curve = wrapper_curve(core, 64)
        assert curve.min_area == min(p.area for p in curve.pareto_points())

    def test_pareto_points_are_memoised(self, core):
        curve = wrapper_curve(core, 64)
        assert curve.pareto_points() is curve.pareto_points()


class TestCurveCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_curve_cache()
        yield
        clear_curve_cache()

    def test_views_are_cached(self):
        core = Core("c", inputs=3, outputs=3, patterns=2, scan_chains=(9, 5))
        first = wrapper_curve(core, 16)
        second = wrapper_curve(core, 16)
        assert first is second
        info = curve_cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_wider_request_grows_instead_of_recomputing(self):
        core = Core("c", inputs=3, outputs=3, patterns=2, scan_chains=(9, 5))
        narrow = wrapper_curve(core, 8)
        wide = wrapper_curve(core, 32)
        assert curve_cache_info().cores == 1
        assert curve_cache_info().widths_computed == 32
        assert wide.times[:8] == narrow.times
        # The narrower view still answers correctly after the growth.
        assert narrow.max_width == 8
        assert narrow.effective_width(100) <= 8

    def test_clear_resets_statistics(self):
        core = Core("c", inputs=3, outputs=3, patterns=2, scan_chains=(9, 5))
        wrapper_curve(core, 8)
        clear_curve_cache()
        info = curve_cache_info()
        assert (info.hits, info.misses, info.cores, info.widths_computed) == (0, 0, 0, 0)

    def test_isinstance_of_wrapper_curve(self):
        core = Core("c", inputs=1, outputs=1, patterns=1)
        assert isinstance(wrapper_curve(core, 4), WrapperCurve)

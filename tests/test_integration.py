"""End-to-end integration tests: the full framework on the benchmark SOCs.

These tests exercise the same pipelines as the benchmark harness (Table 1,
Table 2, Figures 1 and 9) at reduced parameter grids so they stay fast, and
they assert the *qualitative* findings of the paper rather than absolute
cycle counts (see EXPERIMENTS.md for the full-scale runs).
"""

import pytest

from repro import (
    ConstraintSet,
    best_schedule,
    d695,
    fixed_width_schedule,
    lower_bound,
    render_gantt,
    schedule_soc,
    shelf_schedule,
    sweep_tam_widths,
    tester_data_volume,
)
from repro.analysis.experiments import (
    figure9_curves,
    power_budget,
    preemption_limits,
    run_table1,
    run_table2,
)


GRID = dict(percents=(1, 10, 25), deltas=(0, 2), slacks=(0, 3))


class TestFullPipelineD695:
    @pytest.fixture(scope="class")
    def soc(self):
        return d695()

    def test_table1_style_run(self, soc):
        rows = run_table1(
            soc, widths=(16, 32), percents=(1, 10, 25), deltas=(0, 2), slacks=(0, 3)
        )
        assert len(rows) == 2
        for row in rows:
            # Within 30 % of the lower bound (the paper achieves ~5-15 %).
            assert row.lower_bound <= row.non_preemptive <= 1.3 * row.lower_bound
            assert row.lower_bound <= row.preemptive <= 1.3 * row.lower_bound
            assert row.power_constrained >= row.lower_bound
        # Doubling the TAM width roughly halves the testing time.
        assert rows[1].non_preemptive < 0.65 * rows[0].non_preemptive

    def test_schedules_for_all_modes_are_valid(self, soc):
        width = 24
        non_preemptive = best_schedule(soc, width, **GRID)
        non_preemptive.validate(soc)

        limits = preemption_limits(soc)
        preemptive_constraints = ConstraintSet.for_soc(soc, max_preemptions=limits)
        preemptive = best_schedule(soc, width, constraints=preemptive_constraints, **GRID)
        preemptive.validate(soc, preemptive_constraints)

        power_constraints = preemptive_constraints.with_power_max(power_budget(soc))
        constrained = best_schedule(soc, width, constraints=power_constraints, **GRID)
        constrained.validate(soc, power_constraints)
        assert constrained.peak_power(soc) <= power_budget(soc)

    def test_data_volume_tradeoff(self, soc):
        rows, sweep = run_table2(soc, alphas=(0.1, 0.5, 0.9), widths=tuple(range(8, 49, 4)))
        # The paper's key observation: the width minimising data volume is not
        # the width minimising testing time.
        assert sweep.width_of_min_volume < sweep.width_of_min_time
        # And alpha lets the integrator slide between the two.
        assert rows[0].effective_width <= rows[-1].effective_width

    def test_gantt_renders_for_every_width(self, soc):
        for width in (16, 48):
            text = render_gantt(schedule_soc(soc, width))
            assert "d695" in text


class TestQualitativeClaims:
    def test_flexible_beats_baselines_on_d695(self):
        soc = d695()
        width = 64
        flexible = best_schedule(soc, width, **GRID).makespan
        assert flexible < fixed_width_schedule(soc, width, max_buses=3).makespan
        assert flexible <= shelf_schedule(soc, width).makespan

    def test_staircase_and_volume_minima_relationship(self):
        """Figure 9: D(W) = W*T(W) has its minima on Pareto widths of T(W)."""
        soc = d695()
        data = figure9_curves(soc, widths=tuple(range(8, 41, 2)), alphas=(0.5,))
        sweep = data.sweep
        assert sweep.width_of_min_volume in sweep.pareto_widths()
        # Cost curve is minimised strictly between the two extremes for a
        # mid-range alpha (the "U" shape of Figure 9(c)).
        effective = sweep.effective_width(0.5).width
        assert sweep.widths[0] <= effective <= sweep.widths[-1]

    def test_power_constraint_binds_at_wide_tams(self):
        """The paper's power-constrained column grows fastest at wide TAMs."""
        soc = d695()
        limits = preemption_limits(soc)
        constraints = ConstraintSet.for_soc(
            soc, max_preemptions=limits, power_max=power_budget(soc)
        )
        wide_free = best_schedule(soc, 64, **GRID).makespan
        wide_power = best_schedule(soc, 64, constraints=constraints, **GRID).makespan
        assert wide_power >= wide_free

    def test_volume_at_min_width_versus_time_tradeoff(self):
        soc = d695()
        sweep = sweep_tam_widths(soc, widths=(16, 24, 32, 40, 48, 56, 64))
        # Testing time shrinks with W while data volume does not (it is
        # width * time, and time saturates).
        assert sweep.testing_times[0] > sweep.testing_times[-1]
        assert sweep.data_volumes[-1] > sweep.min_data_volume

    def test_cpu_time_is_small(self):
        """The paper reports < 5 s per run on a 1998 workstation; one schedule
        of the largest SOC must be well under that here."""
        import time

        from repro.soc.benchmarks import p93791

        soc = p93791()
        start = time.perf_counter()
        schedule = schedule_soc(soc, 64)
        elapsed = time.perf_counter() - start
        assert schedule.makespan >= lower_bound(soc, 64)
        assert elapsed < 5.0

    def test_volume_function_consistency(self):
        soc = d695()
        schedule = schedule_soc(soc, 32)
        assert tester_data_volume(schedule) == 32 * schedule.makespan

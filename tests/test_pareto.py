"""Unit tests for Pareto analysis and preferred widths (repro.wrapper.pareto)."""

import pytest

from repro.soc.core import Core
from repro.wrapper.design_wrapper import testing_time
from repro.wrapper.pareto import (
    highest_pareto_width,
    largest_pareto_width_not_exceeding,
    minimum_area,
    minimum_testing_time,
    pareto_points,
    preferred_width,
    testing_time_curve,
)


@pytest.fixture
def core():
    return Core("c", inputs=12, outputs=20, patterns=15, scan_chains=(14, 10, 8, 8, 4))


class TestTestingTimeCurve:
    def test_curve_length(self, core):
        assert len(testing_time_curve(core, 40)) == 40

    def test_curve_matches_testing_time(self, core):
        curve = testing_time_curve(core, 10)
        assert curve[0] == testing_time(core, 1)
        assert curve[9] == testing_time(core, 10)

    def test_curve_is_non_increasing(self, core):
        curve = testing_time_curve(core, 64)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_invalid_max_width(self, core):
        with pytest.raises(ValueError):
            testing_time_curve(core, 0)


class TestParetoPoints:
    def test_width_one_always_present(self, core):
        points = pareto_points(core, 32)
        assert points[0].width == 1

    def test_strictly_decreasing_times(self, core):
        points = pareto_points(core, 64)
        times = [p.time for p in points]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_strictly_increasing_widths(self, core):
        points = pareto_points(core, 64)
        widths = [p.width for p in points]
        assert all(a < b for a, b in zip(widths, widths[1:]))

    def test_each_point_is_a_strict_improvement(self, core):
        curve = testing_time_curve(core, 64)
        for point in pareto_points(core, 64):
            if point.width > 1:
                assert curve[point.width - 1] < curve[point.width - 2]

    def test_highest_pareto_width_saturates(self, core):
        top = highest_pareto_width(core, 64)
        curve = testing_time_curve(core, 64)
        assert curve[top - 1] == curve[-1]

    def test_minimum_testing_time(self, core):
        assert minimum_testing_time(core, 64) == testing_time_curve(core, 64)[-1]

    def test_area_property(self, core):
        point = pareto_points(core, 8)[-1]
        assert point.area == point.width * point.time

    def test_minimum_area_at_most_width_one_area(self, core):
        assert minimum_area(core, 64) <= testing_time(core, 1)

    def test_largest_pareto_width_not_exceeding(self, core):
        points = pareto_points(core, 64)
        widths = [p.width for p in points]
        for query in range(1, 30):
            expected = max(w for w in widths if w <= query)
            assert largest_pareto_width_not_exceeding(core, query, 64) == expected

    def test_largest_pareto_width_rejects_zero(self, core):
        with pytest.raises(ValueError):
            largest_pareto_width_not_exceeding(core, 0, 64)

    def test_combinational_core_saturates_quickly(self):
        comb = Core.combinational("c", inputs=4, outputs=4, patterns=10)
        assert highest_pareto_width(comb, 64) <= 4


class TestPreferredWidth:
    def test_zero_percent_gives_saturating_width(self, core):
        width = preferred_width(core, max_width=64, percent=0.0, delta=0)
        curve = testing_time_curve(core, 64)
        assert curve[width - 1] == curve[-1]

    def test_larger_percent_never_increases_width(self, core):
        previous = None
        for percent in (0, 1, 2, 5, 10, 20, 50):
            width = preferred_width(core, max_width=64, percent=percent, delta=0)
            if previous is not None:
                assert width <= previous
            previous = width

    def test_time_within_percent_bound(self, core):
        for percent in (1, 5, 10, 25):
            width = preferred_width(core, max_width=64, percent=percent, delta=0)
            curve = testing_time_curve(core, 64)
            assert curve[width - 1] <= (1 + percent / 100) * curve[-1]

    def test_delta_bumps_to_highest_pareto_width(self, core):
        top = highest_pareto_width(core, 64)
        loose = preferred_width(core, max_width=64, percent=40, delta=0)
        if loose < top:
            bumped = preferred_width(core, max_width=64, percent=40, delta=top - loose)
            assert bumped == top

    def test_delta_zero_no_bump(self, core):
        width = preferred_width(core, max_width=64, percent=40, delta=0)
        curve = testing_time_curve(core, 64)
        assert curve[width - 1] <= 1.4 * curve[-1]

    def test_invalid_arguments(self, core):
        with pytest.raises(ValueError):
            preferred_width(core, percent=-1)
        with pytest.raises(ValueError):
            preferred_width(core, delta=-1)

"""Tests for the determinism & fork-safety lint suite (repro.staticcheck).

Each rule gets a bad/good fixture pair: the bad fixture must produce the
exact expected findings, the good fixture must produce none.  Fixture
files are written outside any ``repro`` package, so their scope hint is
empty and every rule applies (see ModuleContext's docstring).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticcheck import (
    DEFAULT_SCHEMA_RELPATH,
    Finding,
    LintError,
    default_rule_registry,
    findings_from_json,
    findings_to_json,
    generate_schema,
    parse_suppressions,
    run_lint,
    write_schema,
)
from repro.staticcheck.schema import check_wire_drift, repo_root_for

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, name="fixture.py", **kwargs):
    """Lint one in-memory fixture module and return its findings."""
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    report = run_lint([path], **kwargs)
    return report


def codes_and_lines(report):
    return [(f.rule, f.line) for f in report.findings]


class TestRegistry:
    def test_all_thirteen_rules_registered(self):
        registry = default_rule_registry()
        assert registry.codes() == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP011",
            "REP012",
            "REP013",
        ]

    def test_unknown_rule_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            default_rule_registry().info("REP999")

    def test_describe_mentions_every_code(self):
        text = default_rule_registry().describe()
        for code in default_rule_registry().codes():
            assert code in text

    def test_bad_code_shape_rejected(self):
        from repro.staticcheck import RuleRegistry

        with pytest.raises(LintError, match="rule code"):
            RuleRegistry().register("BOGUS", lambda: None, "x", "y")


class TestRep001Iteration:
    BAD = (
        "names = {'b', 'a'}\n"
        "for n in names:\n"
        "    print(n)\n"
        "order = tuple(names)\n"
        "listed = [n for n in names]\n"
        "groups = sorted([names], key=frozenset)\n"
    )
    GOOD = (
        "names = {'b', 'a'}\n"
        "for n in sorted(names):\n"
        "    print(n)\n"
        "order = tuple(sorted(names))\n"
        "listed = [n for n in sorted(names)]\n"
        "groups = sorted([names], key=sorted)\n"
        "count = len(names)\n"
        "membership = {n for n in names}\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.BAD, select=["REP001"])
        assert codes_and_lines(report) == [
            ("REP001", 2),
            ("REP001", 4),
            ("REP001", 5),
            ("REP001", 6),
        ]

    def test_good_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.GOOD, select=["REP001"])
        assert report.findings == ()

    def test_shadowed_name_not_flagged(self, tmp_path):
        source = "names = {'a'}\nnames = ['a']\nfor n in names:\n    print(n)\n"
        report = lint_source(tmp_path, source, select=["REP001"])
        assert report.findings == ()


class TestRep002WallClock:
    BAD = (
        "import random\n"
        "import time\n"
        "from datetime import datetime\n"
        "def jitter():\n"
        "    return random.random() + time.time()\n"
        "def stamp():\n"
        "    return datetime.now()\n"
        "def rng():\n"
        "    return random.Random()\n"
    )
    GOOD = (
        "import random\n"
        "import time\n"
        "def jitter(seed):\n"
        "    return random.Random(seed).random()\n"
        "def elapsed():\n"
        "    return time.perf_counter()\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.BAD, select=["REP002"])
        assert codes_and_lines(report) == [
            ("REP002", 5),
            ("REP002", 5),
            ("REP002", 7),
            ("REP002", 9),
        ]

    def test_good_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.GOOD, select=["REP002"])
        assert report.findings == ()


class TestRep003FloatEquality:
    BAD = (
        "def same(makespan, width):\n"
        "    if makespan / width == 10.0:\n"
        "        return True\n"
        "    return float(makespan) != width\n"
    )
    GOOD = (
        "import math\n"
        "def same(makespan, width):\n"
        "    if makespan == width * 10:\n"
        "        return True\n"
        "    return math.isclose(makespan / width, 10.0)\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.BAD, select=["REP003"])
        assert codes_and_lines(report) == [("REP003", 2), ("REP003", 4)]

    def test_good_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.GOOD, select=["REP003"])
        assert report.findings == ()


class TestRep004ForkSafety:
    BAD = (
        "CACHE = {}\n"
        "from functools import partial\n"
        "def run(pool, items, scale):\n"
        "    def task(item):\n"
        "        return item * scale\n"
        "    pool.imap_unordered(lambda x: x * scale, items)\n"
        "    pool.map(task, items)\n"
        "    pool.map(partial(task, 1), items)\n"
        "    CACHE['warm'] = True\n"
        "class Driver:\n"
        "    def go(self, pool, items):\n"
        "        pool.apply_async(self.step, items)\n"
        "        pool.apply_async(partial(self.step, 1), items)\n"
    )
    GOOD = (
        "CACHE = {}\n"
        "from functools import partial\n"
        "def _task(item, scale=2):\n"
        "    return item * scale\n"
        "def _init_worker(payload):\n"
        "    CACHE['socs'] = payload\n"
        "def run(pool, items):\n"
        "    pool.imap_unordered(_task, items)\n"
        "    pool.imap_unordered(partial(_task, scale=3), items)\n"
        "def local_scratch(items):\n"
        "    CACHE = {}\n"
        "    CACHE['x'] = 1\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.BAD, select=["REP004"])
        assert codes_and_lines(report) == [
            ("REP004", 6),
            ("REP004", 7),
            ("REP004", 8),
            ("REP004", 9),
            ("REP004", 12),
            ("REP004", 13),
        ]
        partial_findings = [f for f in report.findings if f.line in (8, 13)]
        assert all("partial" in f.message for f in partial_findings)

    def test_good_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.GOOD, select=["REP004"])
        assert report.findings == ()


WIRE_MODULE = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class Packet:\n"
    "    kind: str\n"
    "    size: int = 0\n"
)


class TestRep005WireSchema:
    def project(self, tmp_path, module_source=WIRE_MODULE):
        root = tmp_path / "proj"
        (root / "pkg").mkdir(parents=True)
        (root / "pkg" / "__init__.py").write_text("")
        (root / "pkg" / "wire.py").write_text(module_source, encoding="utf-8")
        return root

    def test_frozen_schema_passes(self, tmp_path):
        root = self.project(tmp_path)
        schema_path = tmp_path / "schema.json"
        write_schema(schema_path, [root], class_keys=["pkg.wire:Packet"])
        assert check_wire_drift(schema_path, [root]) == []

    def test_drift_reported(self, tmp_path):
        root = self.project(tmp_path)
        schema_path = tmp_path / "schema.json"
        write_schema(schema_path, [root], class_keys=["pkg.wire:Packet"])
        drifted = WIRE_MODULE.replace("size: int = 0", "size: int = 1\n    flag: bool = False")
        (root / "pkg" / "wire.py").write_text(drifted, encoding="utf-8")
        drifts = check_wire_drift(schema_path, [root])
        assert any("changed default '0' -> '1'" in d for d in drifts)
        assert any("'flag' was added" in d for d in drifts)

    def test_missing_snapshot_is_a_drift(self, tmp_path):
        drifts = check_wire_drift(tmp_path / "nope.json", [tmp_path])
        assert len(drifts) == 1
        assert "missing" in drifts[0]

    def test_engine_surfaces_drift_as_findings(self, tmp_path):
        root = self.project(tmp_path)
        schema_path = tmp_path / "schema.json"
        write_schema(schema_path, [root], class_keys=["pkg.wire:Packet"])
        (root / "pkg" / "wire.py").write_text(
            WIRE_MODULE.replace("kind: str", "kind: bytes"), encoding="utf-8"
        )
        # Point the pinned snapshot's keys at the fixture project.
        report = run_lint(
            [root], select=["REP005"], schema_path=schema_path, source_roots=[root]
        )
        assert [f.rule for f in report.findings] == ["REP005"]
        assert "changed annotation 'str' -> 'bytes'" in report.findings[0].message

    def test_shipped_tree_matches_pinned_snapshot(self):
        drifts = check_wire_drift(
            REPO_ROOT / DEFAULT_SCHEMA_RELPATH, [REPO_ROOT / "src", REPO_ROOT]
        )
        assert drifts == []

    def test_write_schema_is_idempotent(self, tmp_path):
        out = tmp_path / "snap.json"
        first = write_schema(out, [REPO_ROOT / "src"])
        text_first = out.read_text()
        second = write_schema(out, [REPO_ROOT / "src"])
        assert first == second
        assert out.read_text() == text_first


class TestRep006Registry:
    BAD = (
        "from repro.solvers.registry import register_solver\n"
        "@register_solver('nameless')\n"
        "class Quiet:\n"
        "    pass\n"
    )
    GOOD = (
        "from repro.solvers.registry import register_solver\n"
        "@register_solver('documented', capabilities=object())\n"
        "class Documented:\n"
        "    '''A solver with declared capabilities.'''\n"
    )

    def test_bad_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.BAD, select=["REP006"])
        assert codes_and_lines(report) == [("REP006", 3), ("REP006", 3)]
        messages = " ".join(f.message for f in report.findings)
        assert "capabilities" in messages
        assert "docstring" in messages

    def test_good_fixture(self, tmp_path):
        report = lint_source(tmp_path, self.GOOD, select=["REP006"])
        assert report.findings == ()

    def test_shipped_builtin_solvers_are_clean(self):
        report = run_lint(
            [REPO_ROOT / "src" / "repro" / "solvers" / "builtin.py"],
            select=["REP006"],
        )
        assert report.findings == ()


class TestSuppression:
    def test_named_noqa_suppresses(self, tmp_path):
        source = (
            "names = {'b', 'a'}\n"
            "order = tuple(names)  # repro: noqa REP001\n"
        )
        report = lint_source(tmp_path, source, select=["REP001"])
        assert report.findings == ()
        assert report.suppressed == 1

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        source = (
            "names = {'b', 'a'}\n"
            "order = tuple(names)  # repro: noqa REP002\n"
        )
        report = lint_source(tmp_path, source, select=["REP001"])
        assert codes_and_lines(report) == [("REP001", 2)]

    def test_blanket_noqa_is_a_finding(self, tmp_path):
        source = "x = 1  # repro: noqa\n"
        report = lint_source(tmp_path, source, select=["REP001"])
        assert codes_and_lines(report) == [("REP000", 1)]
        assert not report.ok

    def test_pragma_in_string_is_ignored(self):
        source = "doc = '# repro: noqa'\n"
        suppressions, blanket = parse_suppressions(source, "f.py")
        assert suppressions == {}
        assert blanket == []

    def test_multiple_codes(self):
        source = "x = 1  # repro: noqa REP001, REP003\n"
        suppressions, blanket = parse_suppressions(source, "f.py")
        assert suppressions == {1: {"REP001", "REP003"}}
        assert blanket == []


class TestFindings:
    def test_ordering(self):
        a = Finding(path="a.py", line=3, rule="REP001")
        b = Finding(path="a.py", line=10, rule="REP001")
        c = Finding(path="b.py", line=1, rule="REP002")
        assert sorted([c, b, a]) == [a, b, c]

    def test_render(self):
        f = Finding(path="x.py", line=2, column=4, rule="REP003", message="boom")
        assert f.render() == "x.py:2:5: REP003 boom"

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(path="x.py", line=1, severity="fatal")

    def test_json_round_trip(self):
        findings = [
            Finding(path="a.py", line=1, rule="REP001", message="m1"),
            Finding(path="b.py", line=9, column=3, rule="REP005", message="m2"),
            Finding(
                path="c.py",
                line=4,
                rule="REP007",
                message="m3",
                chain=("pkg.entry", "pkg.writer"),
            ),
        ]
        payload = findings_to_json(findings)
        decoded = json.loads(payload)
        assert decoded["version"] == 1
        assert decoded["count"] == 3
        assert findings_from_json(payload) == findings

    def test_render_includes_witness_chain(self):
        f = Finding(
            path="x.py",
            line=2,
            rule="REP007",
            message="boom",
            chain=("a.entry", "a.mid", "a.sink"),
        )
        assert "via: a.entry -> a.mid -> a.sink" in f.render()

    def test_render_github_annotation(self):
        f = Finding(
            path="src/x.py",
            line=7,
            column=4,
            rule="REP009",
            message="bad\nnews",
            chain=("a.entry",),
        )
        text = f.render_github()
        assert text.startswith("::error file=src/x.py,line=7,col=5,title=REP009::")
        assert "%0A" in text  # newline escaped per workflow-command rules
        assert "via: a.entry" in text


class TestShippedTree:
    def test_lint_exits_zero_on_shipped_source(self):
        """The meta-test: the shipped tree must be clean under its own suite."""
        report = run_lint(
            [REPO_ROOT / "src" / "repro"],
            schema_path=REPO_ROOT / DEFAULT_SCHEMA_RELPATH,
            source_roots=[REPO_ROOT / "src", REPO_ROOT],
        )
        assert report.findings == ()
        assert report.ok

    def test_repo_root_discovered_from_package(self):
        import repro

        assert repo_root_for(Path(repro.__file__)) == REPO_ROOT


class TestCli:
    def run_cli(self, *argv, cwd=None):
        env_root = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            cwd=str(cwd or REPO_ROOT),
            env={"PYTHONPATH": env_root, "PATH": "/usr/bin:/bin"},
        )

    def test_lint_clean_tree_exits_zero(self):
        proc = self.run_cli("lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stderr

    def test_lint_json_output(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("names = {'a', 'b'}\norder = tuple(names)\n")
        proc = self.run_cli("lint", str(bad), "--json")
        assert proc.returncode == 1
        findings = findings_from_json(proc.stdout)
        assert [f.rule for f in findings] == ["REP001"]

    def test_lint_rule_selection(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("names = {'a', 'b'}\norder = tuple(names)\n")
        proc = self.run_cli("lint", "--rule", "REP002", str(bad))
        assert proc.returncode == 0
        proc = self.run_cli("lint", "--ignore", "REP001", str(bad))
        assert proc.returncode == 0

    def test_list_rules(self):
        proc = self.run_cli("lint", "--list-rules")
        assert proc.returncode == 0
        for code in ("REP001", "REP006", "REP007", "REP010", "REP012"):
            assert code in proc.stdout

    def test_lint_github_output_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("names = {'a', 'b'}\norder = tuple(names)\n")
        proc = self.run_cli("lint", "--output-format", "github", str(bad))
        assert proc.returncode == 1
        assert "::error file=" in proc.stdout
        assert "line=2" in proc.stdout
        assert "title=REP001" in proc.stdout

    def test_lint_artifact_exports_round_trip(self, tmp_path):
        from repro.staticcheck.analysis import (
            call_graph_from_json,
            effects_from_json,
        )

        cg = tmp_path / "cg.json"
        ef = tmp_path / "ef.json"
        proc = self.run_cli(
            "lint",
            str(REPO_ROOT / "src" / "repro" / "engine"),
            "--call-graph",
            str(cg),
            "--effects",
            str(ef),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        graph_payload = call_graph_from_json(cg.read_text())
        assert graph_payload["version"] == 1
        assert any(
            entry.endswith("_execute_chunk") for entry in graph_payload["entry_points"]
        )
        effects_payload = effects_from_json(ef.read_text())
        assert effects_payload["version"] == 1
        assert effects_payload["local"] and effects_payload["propagated"]


class TestBenchGate:
    def test_bench_refuses_to_write_on_wire_drift(self, tmp_path, monkeypatch):
        from repro import cli

        def fake_run_suite(suite, soc_names=None, **kwargs):
            return {"meta": {"suite": suite}, "phases": {}}

        monkeypatch.setattr("repro.analysis.perf.run_suite", fake_run_suite)
        monkeypatch.setattr("repro.analysis.perf.summarize", lambda report: "stub")
        monkeypatch.setattr(
            "repro.staticcheck.schema.check_wire_drift",
            lambda schema_path, source_roots: ["pkg:Class drifted"],
        )
        out = tmp_path / "BENCH_curves.json"
        code = cli.main(["bench", "--suite", "curves", "--json", str(out)])
        assert code == 1
        assert not out.exists()

    def test_bench_writes_when_frozen(self, tmp_path, monkeypatch):
        from repro import cli

        def fake_run_suite(suite, soc_names=None, **kwargs):
            return {"meta": {"suite": suite}, "phases": {}}

        monkeypatch.setattr("repro.analysis.perf.run_suite", fake_run_suite)
        monkeypatch.setattr("repro.analysis.perf.summarize", lambda report: "stub")
        out = tmp_path / "BENCH_curves.json"
        code = cli.main(["bench", "--suite", "curves", "--json", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["meta"]["suite"] == "curves"


class TestSchemaHelpers:
    def test_generate_schema_covers_all_wire_classes(self):
        from repro.staticcheck import WIRE_CLASSES

        schema = generate_schema([REPO_ROOT / "src"])
        assert set(schema["classes"]) == set(WIRE_CLASSES)
        for entry in schema["classes"].values():
            assert entry["fields"], "every wire class has at least one field"

    def test_bad_class_key_rejected(self):
        from repro.staticcheck.schema import WireSchemaError, resolve_class_key

        with pytest.raises(WireSchemaError, match="pkg.module:Class"):
            resolve_class_key("no-colon-here", [REPO_ROOT])

"""ASCII Gantt-chart rendering of test schedules (paper Figure 2).

The chart has one row per core.  Time runs left to right, quantised into a
fixed number of columns.  A filled block marks an interval during which the
core's test occupies TAM wires; the number of wires is printed next to the
core name.  This is deliberately terminal-friendly: the paper's Figure 2 is
exactly this picture (rectangles packed into a bin of height ``W``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.schedule.schedule import TestSchedule

_FILL = "#"
_EMPTY = "."


def render_gantt(
    schedule: TestSchedule,
    columns: int = 72,
    label_width: Optional[int] = None,
) -> str:
    """Render the schedule as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The schedule to draw.
    columns:
        Number of character columns used for the time axis.
    label_width:
        Width reserved for core labels; defaults to the longest label.
    """
    if columns <= 0:
        raise ValueError("columns must be positive")
    makespan = schedule.makespan
    if makespan == 0:
        return "(empty schedule)"

    cores = schedule.scheduled_cores
    labels = {}
    for core in cores:
        summary = schedule.core_summary(core)
        widths = "/".join(str(w) for w in sorted(set(summary.widths)))
        labels[core] = f"{core} [w={widths}]"
    if label_width is None:
        label_width = max(len(label) for label in labels.values())

    scale = columns / makespan
    lines: List[str] = [
        f"SOC {schedule.soc_name}: TAM width {schedule.total_width}, "
        f"testing time {makespan} cycles",
    ]
    for core in cores:
        row = [_EMPTY] * columns
        for segment in schedule.segments_for(core):
            first = min(int(segment.start * scale), columns - 1)
            last = min(int(segment.end * scale), columns)
            if last <= first:
                last = first + 1
            for col in range(first, last):
                row[col] = _FILL
        lines.append(f"{labels[core]:<{label_width}} |{''.join(row)}|")

    axis = f"{'':<{label_width}} |{'0':<{columns - len(str(makespan))}}{makespan}|"
    lines.append(axis)
    lines.append(
        f"{'':<{label_width}}  TAM utilisation {schedule.tam_utilization:.1%}, "
        f"idle area {schedule.idle_area} wire-cycles"
    )
    return "\n".join(lines)

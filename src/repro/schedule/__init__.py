"""Test-schedule data structures, validation and rendering.

A :class:`~repro.schedule.schedule.TestSchedule` is the output of every
scheduler in this library (the paper's rectangle-packing scheduler and all
baselines).  It is a list of :class:`~repro.schedule.schedule.ScheduleSegment`
entries -- one per contiguous run of a core test at a fixed TAM width -- plus
derived quantities (makespan, TAM utilisation, preemption counts) and a
:meth:`~repro.schedule.schedule.TestSchedule.validate` method that checks the
schedule against the SOC, the total TAM width and a constraint set.
"""

from repro.schedule.schedule import (
    CoreScheduleSummary,
    ScheduleError,
    ScheduleSegment,
    TestSchedule,
)
from repro.schedule.gantt import render_gantt

__all__ = [
    "ScheduleSegment",
    "TestSchedule",
    "CoreScheduleSummary",
    "ScheduleError",
    "render_gantt",
]

"""Schedule data structures and validation.

The paper represents a test schedule as a packed bin of rectangles
(Figure 2): the bin height is the total SOC TAM width, the bin width is the
SOC testing time, and each rectangle (or rectangle piece, when a test is
preempted) is a contiguous run of one core's test at a fixed TAM width.

:class:`TestSchedule` stores exactly that, as a list of
:class:`ScheduleSegment` objects, and can check every constraint the paper's
``Conflict`` subroutine enforces:

* total TAM width never exceeded,
* every core tested to completion (total scheduled time matches the wrapper
  testing time plus preemption overhead),
* precedence, concurrency and power constraints respected,
* per-core preemption limits respected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc


class ScheduleError(ValueError):
    """Raised when a test schedule violates a structural or user constraint."""


@dataclass(frozen=True)
class ScheduleSegment:
    """A contiguous run of one core's test at a fixed TAM width."""

    core: str
    start: int
    end: int
    width: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ScheduleError(f"segment for {self.core!r} starts before time 0")
        if self.end <= self.start:
            raise ScheduleError(
                f"segment for {self.core!r} has non-positive duration "
                f"({self.start}..{self.end})"
            )
        if self.width <= 0:
            raise ScheduleError(f"segment for {self.core!r} has non-positive width")

    @property
    def duration(self) -> int:
        """Length of this segment in cycles."""
        return self.end - self.start

    @property
    def area(self) -> int:
        """TAM wire-cycles occupied by this segment."""
        return self.duration * self.width

    def overlaps(self, other: "ScheduleSegment") -> bool:
        """True if the two segments overlap in time (boundaries may touch)."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class CoreScheduleSummary:
    """Per-core view of a schedule: begin/end times, width(s), preemptions."""

    core: str
    first_begin: int
    last_end: int
    total_time: int
    widths: Tuple[int, ...]
    preemptions: int


@dataclass(frozen=True)
class TestSchedule:
    """A complete SOC test schedule (the packed bin of Figure 2)."""

    # Not a test case, despite the ``Test`` prefix.
    __test__ = False

    soc_name: str
    total_width: int
    segments: Tuple[ScheduleSegment, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "segments",
            tuple(sorted(self.segments, key=lambda s: (s.start, s.core, s.end))),
        )
        if self.total_width <= 0:
            raise ScheduleError("total TAM width must be positive")

    # ------------------------------------------------------------------
    # Aggregate quantities
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> int:
        """SOC testing time: the width to which the bin is filled."""
        return max((segment.end for segment in self.segments), default=0)

    @property
    def scheduled_cores(self) -> Tuple[str, ...]:
        """Names of all cores that appear in the schedule."""
        seen: List[str] = []
        for segment in self.segments:
            if segment.core not in seen:
                seen.append(segment.core)
        return tuple(seen)

    @property
    def occupied_area(self) -> int:
        """TAM wire-cycles carrying test data."""
        return sum(segment.area for segment in self.segments)

    @property
    def idle_area(self) -> int:
        """TAM wire-cycles that carry no test data (unfilled bin area)."""
        return self.total_width * self.makespan - self.occupied_area

    @property
    def tam_utilization(self) -> float:
        """Fraction of TAM wire-cycles that carry test data (0..1)."""
        total = self.total_width * self.makespan
        if total == 0:
            return 0.0
        return self.occupied_area / total

    def segments_for(self, core: str) -> Tuple[ScheduleSegment, ...]:
        """All segments of the named core, in time order."""
        return tuple(segment for segment in self.segments if segment.core == core)

    def preemptions_of(self, core: str) -> int:
        """Number of times the named core's test was preempted."""
        return max(len(self.segments_for(core)) - 1, 0)

    def core_summary(self, core: str) -> CoreScheduleSummary:
        """Begin/end/width/preemption summary for one core."""
        segments = self.segments_for(core)
        if not segments:
            raise KeyError(f"core {core!r} does not appear in the schedule")
        return CoreScheduleSummary(
            core=core,
            first_begin=segments[0].start,
            last_end=segments[-1].end,
            total_time=sum(segment.duration for segment in segments),
            widths=tuple(segment.width for segment in segments),
            preemptions=len(segments) - 1,
        )

    def summaries(self) -> Tuple[CoreScheduleSummary, ...]:
        """Per-core summaries for every scheduled core."""
        return tuple(self.core_summary(core) for core in self.scheduled_cores)

    def width_profile(self) -> List[Tuple[int, int]]:
        """Piecewise-constant TAM usage: list of (time, wires in use) breakpoints."""
        events: Dict[int, int] = {}
        for segment in self.segments:
            events[segment.start] = events.get(segment.start, 0) + segment.width
            events[segment.end] = events.get(segment.end, 0) - segment.width
        profile = []
        in_use = 0
        for time in sorted(events):
            in_use += events[time]
            profile.append((time, in_use))
        return profile

    def peak_width(self) -> int:
        """Largest number of TAM wires in use at any moment."""
        return max((usage for _, usage in self.width_profile()), default=0)

    def power_profile(self, soc: Soc) -> List[Tuple[int, float]]:
        """Piecewise-constant total test power: (time, power) breakpoints."""
        events: Dict[int, float] = {}
        for segment in self.segments:
            power = soc.core(segment.core).test_power
            events[segment.start] = events.get(segment.start, 0.0) + power
            events[segment.end] = events.get(segment.end, 0.0) - power
        profile = []
        current = 0.0
        for time in sorted(events):
            current += events[time]
            profile.append((time, current))
        return profile

    def peak_power(self, soc: Soc) -> float:
        """Largest total test power dissipated at any moment."""
        return max((power for _, power in self.power_profile(soc)), default=0.0)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        soc: Optional[Soc] = None,
        constraints: Optional[ConstraintSet] = None,
        expected_times: Optional[Dict[str, Dict[int, int]]] = None,
    ) -> None:
        """Check the schedule for structural and constraint violations.

        Called with no arguments it performs the purely structural checks:
        the total TAM width is never exceeded at any instant (so no two
        segments can overlap on a wire) and no core's own segments overlap
        in time.  Every solver output goes through at least this form.

        Parameters
        ----------
        soc:
            The SOC the schedule was built for.  When given, every scheduled
            core must exist and every core of the SOC must be fully
            scheduled (its test appears in the schedule).
        constraints:
            Optional constraint set; when given (requires ``soc``),
            precedence, concurrency, power and preemption-limit violations
            raise :class:`ScheduleError`.
        expected_times:
            Optional mapping ``core -> {width -> testing time}``.  When given,
            each core's total scheduled time must equal the testing time of
            its assigned width plus its accumulated preemption overhead.
            (The scheduler passes this; external callers usually omit it.)
        """
        if soc is not None:
            core_names = set(soc.core_names)
            scheduled = set(self.scheduled_cores)
            unknown = sorted(scheduled - core_names)
            if unknown:
                raise ScheduleError(f"schedule references unknown cores: {unknown}")
            missing = sorted(core_names - scheduled)
            if missing:
                raise ScheduleError(f"schedule does not test cores: {missing}")

        self._check_width_capacity()
        self._check_no_core_self_overlap()

        if constraints is not None:
            if soc is None:
                raise ScheduleError(
                    "constraint validation needs the SOC the schedule was built for"
                )
            constraints.validate_for(soc)
            self._check_precedence(constraints)
            self._check_concurrency(constraints)
            self._check_power(soc, constraints)
            self._check_preemption_limits(constraints)

        if expected_times is not None:
            self._check_durations(expected_times)

    def _check_width_capacity(self) -> None:
        if self.peak_width() > self.total_width:
            raise ScheduleError(
                f"TAM width exceeded: {self.peak_width()} wires in use, "
                f"only {self.total_width} available"
            )

    def _check_no_core_self_overlap(self) -> None:
        for core in self.scheduled_cores:
            segments = self.segments_for(core)
            for first, second in zip(segments, segments[1:]):
                if first.overlaps(second):
                    raise ScheduleError(
                        f"core {core!r} has overlapping segments "
                        f"({first.start}..{first.end} and {second.start}..{second.end})"
                    )

    def _check_precedence(self, constraints: ConstraintSet) -> None:
        for before, after in constraints.precedence:
            before_segments = self.segments_for(before)
            after_segments = self.segments_for(after)
            if not before_segments or not after_segments:
                continue
            before_end = max(segment.end for segment in before_segments)
            after_start = min(segment.start for segment in after_segments)
            if after_start < before_end:
                raise ScheduleError(
                    f"precedence violated: {after!r} begins at {after_start} "
                    f"before {before!r} completes at {before_end}"
                )

    def _check_concurrency(self, constraints: ConstraintSet) -> None:
        for pair in constraints.concurrency:
            first, second = sorted(pair)
            for seg_a in self.segments_for(first):
                for seg_b in self.segments_for(second):
                    if seg_a.overlaps(seg_b):
                        raise ScheduleError(
                            f"concurrency violated: {first!r} and {second!r} overlap "
                            f"during [{max(seg_a.start, seg_b.start)}, "
                            f"{min(seg_a.end, seg_b.end)})"
                        )

    def _check_power(self, soc: Soc, constraints: ConstraintSet) -> None:
        if constraints.power_max is None:
            return
        peak = self.peak_power(soc)
        if peak > constraints.power_max + 1e-9:
            raise ScheduleError(
                f"power constraint violated: peak power {peak} exceeds "
                f"limit {constraints.power_max}"
            )

    def _check_preemption_limits(self, constraints: ConstraintSet) -> None:
        for core in self.scheduled_cores:
            limit = constraints.preemption_limit(core)
            actual = self.preemptions_of(core)
            if actual > limit:
                raise ScheduleError(
                    f"core {core!r} preempted {actual} times, limit is {limit}"
                )

    def _check_durations(self, expected_times: Dict[str, Dict[int, int]]) -> None:
        for core in self.scheduled_cores:
            segments = self.segments_for(core)
            widths = {segment.width for segment in segments}
            if len(widths) != 1:
                raise ScheduleError(
                    f"core {core!r} is scheduled at multiple widths {sorted(widths)}; "
                    "the paper fixes a core's width once packed"
                )
            expected_for_core = expected_times.get(core)
            if not expected_for_core:
                continue
            width = widths.pop()
            if width not in expected_for_core:
                raise ScheduleError(
                    f"core {core!r} scheduled at width {width}, which has no "
                    "recorded testing time"
                )
            total = sum(segment.duration for segment in segments)
            if total < expected_for_core[width]:
                raise ScheduleError(
                    f"core {core!r} is under-tested: scheduled {total} cycles, "
                    f"needs at least {expected_for_core[width]}"
                )

    # ------------------------------------------------------------------
    # Serialization (the payload of a :class:`repro.solvers.ScheduleResult`)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dict form (round-trips through :meth:`from_dict`)."""
        return {
            "soc_name": self.soc_name,
            "total_width": self.total_width,
            "segments": [
                {
                    "core": segment.core,
                    "start": segment.start,
                    "end": segment.end,
                    "width": segment.width,
                }
                for segment in self.segments
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TestSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        segments = tuple(
            ScheduleSegment(
                core=str(item["core"]),
                start=int(item["start"]),
                end=int(item["end"]),
                width=int(item["width"]),
            )
            for item in data.get("segments") or ()
        )
        return cls(
            soc_name=str(data["soc_name"]),
            total_width=int(data["total_width"]),
            segments=segments,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line textual description of the schedule."""
        lines = [
            f"Schedule for {self.soc_name} (TAM width {self.total_width}): "
            f"makespan {self.makespan} cycles, "
            f"utilisation {self.tam_utilization:.1%}"
        ]
        for summary in self.summaries():
            widths = "/".join(str(w) for w in summary.widths)
            lines.append(
                f"  {summary.core}: [{summary.first_begin}, {summary.last_end}) "
                f"width {widths}, {summary.preemptions} preemptions"
            )
        return "\n".join(lines)

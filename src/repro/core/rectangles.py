"""Rectangle representation of core tests (paper Section 3).

Each core's test is represented by a *set* of rectangles, one per
Pareto-optimal TAM width: the rectangle height is the TAM width and its width
is the core testing time at that TAM width.  The generalized rectangle
packing problem ``P_rp`` selects one rectangle per core and packs them into a
bin of height ``W`` (the total SOC TAM width) minimizing the filled width
(the SOC testing time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.curve import (
    DEFAULT_MAX_WIDTH,
    ParetoPoint,
    WrapperCurve,
    wrapper_curve,
)
from repro.wrapper.pareto import preferred_width


@dataclass(frozen=True)
class Rectangle:
    """One candidate rectangle for a core: (TAM width, testing time)."""

    core: str
    width: int
    time: int

    @property
    def area(self) -> int:
        """TAM wire-cycles occupied by this rectangle."""
        return self.width * self.time


class RectangleSet:
    """The Pareto-optimal rectangles for one core (set ``R_i`` in the paper).

    Backed by the single-pass wrapper-curve kernel
    (:func:`repro.wrapper.curve.wrapper_curve`): construction costs one
    curve lookup and every width/time query is O(1) or a binary search over
    the Pareto widths.
    """

    def __init__(self, core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> None:
        if max_width <= 0:
            raise ValueError("max_width must be positive")
        self._core = core
        self._max_width = max_width
        self._curve: WrapperCurve = wrapper_curve(core, max_width)
        self._points: Tuple[ParetoPoint, ...] = self._curve.pareto_points()
        # Direct view of the curve's width-indexed staircase for the O(1)
        # time_at fast path (the shared array only ever grows in place, so
        # holding a reference is safe).
        self._times = self._curve.times

    # ------------------------------------------------------------------
    @property
    def core(self) -> Core:
        """The core these rectangles describe."""
        return self._core

    @property
    def core_name(self) -> str:
        """The core's name."""
        return self._core.name

    @property
    def max_width(self) -> int:
        """Maximum TAM width considered when enumerating Pareto points."""
        return self._max_width

    @property
    def curve(self) -> WrapperCurve:
        """The full wrapper curve behind these rectangles."""
        return self._curve

    @property
    def points(self) -> Tuple[ParetoPoint, ...]:
        """All Pareto-optimal (width, time) points, by increasing width."""
        return self._points

    @property
    def rectangles(self) -> List[Rectangle]:
        """The Pareto-optimal rectangles as :class:`Rectangle` objects."""
        return [
            Rectangle(core=self._core.name, width=point.width, time=point.time)
            for point in self._points
        ]

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    # Width / time lookups
    # ------------------------------------------------------------------
    def effective_width(self, width: int) -> int:
        """Largest Pareto-optimal width that is <= ``width``.

        Assigning any width between two Pareto points wastes wires; the
        scheduler therefore snaps every assignment down to a Pareto width
        (found by binary search).
        """
        return self._curve.effective_width(width)

    def time_at(self, width: int) -> int:
        """Core testing time when given ``width`` TAM wires.

        The curve's ``times`` array already holds the best design with *at
        most* ``width`` chains (flat between Pareto steps), so no snapping
        to a Pareto width is needed -- one O(1) array read.
        """
        if width < 1:
            raise ValueError("width must be at least 1")
        if width > self._max_width:
            width = self._max_width
        return self._times[width - 1]

    @property
    def max_pareto_width(self) -> int:
        """The largest Pareto-optimal width."""
        return self._points[-1].width

    @property
    def min_time(self) -> int:
        """The smallest achievable testing time (at the largest Pareto width)."""
        return self._points[-1].time

    @property
    def min_area(self) -> int:
        """``min_w w * T(w)`` -- used by the lower bound of Table 1."""
        return self._curve.min_area

    def preferred_width(self, percent: float, delta: int, width_cap: int) -> int:
        """The paper's preferred width, clamped to a Pareto width <= ``width_cap``."""
        cap = max(1, min(self._max_width, width_cap))
        width = preferred_width(self._core, max_width=cap, percent=percent, delta=delta)
        return self.effective_width(min(width, cap))

    def preemption_overhead(self, width: int) -> int:
        """Cycles added each time this core's test is preempted at ``width``.

        Like :meth:`time_at`, the scan-length arrays are flat between
        Pareto steps, so the lookup needs no snapping.
        """
        return self._curve.preemption_overhead(min(width, self._max_width))


def build_rectangle_sets(
    soc: Soc, max_width: int = DEFAULT_MAX_WIDTH
) -> Dict[str, RectangleSet]:
    """Build the collection ``R`` of Pareto-optimal rectangle sets for an SOC."""
    return {core.name: RectangleSet(core, max_width=max_width) for core in soc.cores}


def resolve_rectangle_sets(
    soc: Soc,
    max_width: int,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> Dict[str, RectangleSet]:
    """Return ``rectangle_sets`` if supplied (and consistent), else build them.

    The shared "accept a caller's pre-built Pareto sets" entry used by the
    scheduler, the baselines and the lower bounds: supplied sets must have
    been built with the same ``max_width`` the caller would use, which is
    checked here so a solver cache bug fails loudly instead of silently
    changing results.
    """
    if rectangle_sets is None:
        return build_rectangle_sets(soc, max_width=max_width)
    for name, rect in rectangle_sets.items():
        if rect.max_width != max_width:
            raise ValueError(
                f"rectangle set for core {name!r} was built with "
                f"max_width={rect.max_width}, caller needs {max_width}"
            )
    return rectangle_sets

"""``TAM_schedule_optimizer``: integrated wrapper/TAM co-optimization and
constraint-driven, selectively preemptive test scheduling (paper Figures 4-8).

The scheduler is an event-driven greedy rectangle packer:

* **Preferred widths** (subroutine ``Initialize``, Figure 5): every core gets
  a preferred TAM width -- the smallest width whose testing time is within
  ``percent`` % of its time at the maximum allowable width, bumped to the
  highest Pareto width when the gap is at most ``delta`` wires.
* **Priority-driven assignment** (Figure 4): whenever TAM wires are free the
  scheduler repeatedly picks one core and starts (or resumes) its test:

  1. paused cores that have exhausted their preemption budget are resumed
     first (paper Priority 1);
  2. paused cores resume at their fixed assigned width and not-yet-started
     cores start at their preferred width, in order of decreasing remaining
     testing time (paper Priorities 2 and 3 -- see note below);
  3. if nothing fits, a not-yet-started core whose preferred width is within
     ``insertion_slack`` wires of the free width is squeezed into the idle
     time at the free width (Figure 4 lines 13-14);
  4. remaining free wires are given to a core that began at the current
     instant, raising its width to the highest Pareto width that fits
     (Figure 4 lines 15-16).

* **Events** (subroutine ``Update``, Figure 8): time advances to the earliest
  completion among running tests.  Completed tests free their wires;
  running tests that may still be preempted are paused and re-compete for
  wires, while non-preemptable (or budget-exhausted) tests keep their wires.
  A pause that is followed by a seamless resume costs nothing; a pause that
  leaves a gap counts as a preemption and adds ``s_in + s_out`` cycles to the
  test (Figure 6 line 5).

**Interpretation note.**  The paper's pseudocode resumes every previously
running test before admitting new tests (Priority 2 strictly ahead of
Priority 3), which -- because a set of tests that ran together can always be
resumed together -- would never actually produce a preemption.  To make
*selective preemption* meaningful we follow the paper's stated intent
("tests may be preempted and resumed ... the system integrator designates a
group of tests as preemptable") and let paused preemptable tests compete
with unstarted tests on remaining testing time; with preemption disabled
(``max_preemptions == 0``, the default) running tests are never paused and
the scheduler is exactly the paper's non-preemptive variant.  Setting
``strict_priority_resume=True`` in :class:`SchedulerConfig` restores the
literal pseudocode ordering.
"""

from __future__ import annotations

import dataclasses
import heapq
import sys
import warnings
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # import cycle: core/ must not pull in engine/ at runtime
    from repro.engine.faults import CancelToken

from repro.core.rectangles import RectangleSet, resolve_rectangle_sets
from repro.schedule.schedule import ScheduleSegment, TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH


class SchedulerError(RuntimeError):
    """Raised when an SOC cannot be scheduled under the given constraints."""


class MakespanLimitExceeded(SchedulerError):
    """Raised when a bounded run proves its makespan exceeds the limit.

    The grid sweep (:mod:`repro.core.grid_sweep`) passes the best makespan
    found so far as ``makespan_limit``; once the event clock moves strictly
    past it, this run can no longer win (its makespan is at least the
    current time while tests remain incomplete) and is abandoned early.
    """


class IncumbentAbort(MakespanLimitExceeded):
    """Raised when a *mid-run* incumbent probe proves the run cannot win.

    Identical pruning logic to :class:`MakespanLimitExceeded`, but the
    limit that killed the run arrived *during* the event loop (re-read
    from the executor's shared incumbent board via ``limit_probe``)
    rather than at dispatch.  Kept distinct so the executor can count
    board-driven aborts separately; because the board only ever holds
    makespans that some run actually completed, and the comparison is
    strict, an abort can only skip work that is strictly worse than the
    final best -- results stay byte-identical to serial.
    """


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable parameters of ``TAM_schedule_optimizer``.

    Parameters
    ----------
    percent:
        The ``q`` parameter: a core's preferred width is the smallest width
        whose testing time is within ``percent`` % of its testing time at the
        maximum allowable width.  The paper sweeps 1..10.
    delta:
        Bump the preferred width to the core's highest Pareto-optimal width if
        the difference is at most ``delta`` wires (the bottleneck-core
        heuristic).  The paper sweeps 0..4.
    max_core_width:
        Maximum TAM width ever assigned to a single core (``W_max``, 64 in the
        paper).
    insertion_slack:
        A not-yet-started core may be squeezed into idle wires when its
        preferred width is within this many wires of the available width
        (the paper found 3 to work best).
    enable_idle_insertion:
        Enable the idle-time rectangle-insertion heuristic.
    enable_width_increase:
        Enable the "give leftover wires to a core that just started"
        heuristic.
    strict_priority_resume:
        Resume paused tests strictly before starting new ones (the literal
        pseudocode ordering).  See the module docstring.
    use_candidate_heaps:
        Select candidates from maintained priority queues (lazy-invalidated
        heaps over the paused/unstarted pools) instead of re-scanning the
        pools on every query.  Results are bit-identical either way; the
        flag exists so the straightforward scan stays reachable as the
        executable reference for the property tests.
    """

    percent: float = 5.0
    delta: int = 0
    max_core_width: int = DEFAULT_MAX_WIDTH
    insertion_slack: int = 3
    enable_idle_insertion: bool = True
    enable_width_increase: bool = True
    strict_priority_resume: bool = False
    use_candidate_heaps: bool = True

    def __post_init__(self) -> None:
        if self.percent < 0:
            raise ValueError("percent must be non-negative")
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        if self.max_core_width <= 0:
            raise ValueError("max_core_width must be positive")
        if self.insertion_slack < 0:
            raise ValueError("insertion_slack must be non-negative")

    # ------------------------------------------------------------------
    # Serialization (the payload of a :class:`repro.solvers.ScheduleRequest`)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Flat, JSON-serializable dict of all configuration fields."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys raise)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SchedulerConfig fields: {unknown}")
        return cls(**dict(data))


class _CoreState:
    """Mutable bookkeeping for one core (the data structure of Figure 3).

    A plain ``__slots__`` class (not a dataclass): tens of instances are
    created per scheduler run and their attributes dominate the hot paths,
    so construction and access speed matter.
    """

    __slots__ = (
        "name",
        "rectangles",
        "preferred_width",
        "max_preemptions",
        "power",
        "bist_resource",
        "remaining",
        "assigned_width",
        "begun",
        "running",
        "complete",
        "preemptions",
        "first_begin",
        "end_time",
        "run_start",
        "segments",
    )

    def __init__(
        self,
        name: str,
        rectangles: RectangleSet,
        preferred_width: int,
        max_preemptions: int,
        power: float,
        bist_resource: Optional[str],
    ) -> None:
        self.name = name
        self.rectangles = rectangles
        self.preferred_width = preferred_width
        self.max_preemptions = max_preemptions
        self.power = power
        self.bist_resource = bist_resource
        self.remaining = 0
        self.assigned_width: Optional[int] = None
        self.begun = False
        self.running = False
        self.complete = False
        self.preemptions = 0
        self.first_begin: Optional[int] = None
        self.end_time: Optional[int] = None
        self.run_start: Optional[int] = None
        self.segments: List[ScheduleSegment] = []

    @property
    def paused(self) -> bool:
        """True if the test has begun, is not running, and is not complete."""
        return self.begun and not self.running and not self.complete

    @property
    def unstarted(self) -> bool:
        """True if the test has not begun yet."""
        return not self.begun and not self.complete

    def candidate_width(self, total_width: int) -> int:
        """Width this core would occupy if scheduled next."""
        if self.begun:
            assert self.assigned_width is not None
            return self.assigned_width
        return min(self.preferred_width, total_width)

    def candidate_remaining(self) -> int:
        """Remaining testing time used to rank this core."""
        if self.begun:
            return self.remaining
        return self.rectangles.time_at(self.preferred_width)


class _Scheduler:
    """One scheduling run; see :func:`schedule_soc` for the public entry point.

    The event loop keeps its hot-path state *incremental* instead of
    re-deriving it from ``states.values()`` on every query:

    * the running / paused / unstarted pools are maintained (insertion-
      ordered) dicts, updated in :meth:`_start` and :meth:`_pause`;
    * the TAM wires in use, the total running power and the per-BIST-engine
      occupancy counts are running totals, so :meth:`_conflicts` and
      :meth:`_width_available` are O(1) (plus a pairwise walk only when
      explicit concurrency constraints exist);
    * unsatisfied precedence is a per-core set of pending predecessors,
      emptied as predecessors complete;
    * :meth:`_advance` reads the next event time from a min-heap of
      completion times (entries are invalidated lazily: a popped entry is
      ignored unless it still matches its core's current finish time).

    Candidate selection (``max``/``min`` with name tie-breaks) is invariant
    to pool iteration order, so schedules are bit-identical to the
    re-scanning implementation this replaces -- a property pinned by the
    golden regression tests in ``tests/test_perf_regression.py``.
    """

    def __init__(
        self,
        soc: Soc,
        total_width: int,
        constraints: ConstraintSet,
        config: SchedulerConfig,
        rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
        preferred_widths: Optional[Mapping[str, int]] = None,
        makespan_limit: Optional[int] = None,
        limit_probe: Optional[Callable[[], int]] = None,
        probe_interval: int = 0,
    ) -> None:
        if total_width <= 0:
            raise SchedulerError("total TAM width must be positive")
        self.soc = soc
        self.total_width = total_width
        self.constraints = constraints
        self.config = config
        self.current_time = 0
        self.makespan_limit = makespan_limit
        # Mid-run incumbent checkpoint: every `probe_interval` completion
        # events, re-read the freshest incumbent (0 means "none yet") and
        # tighten the limit.  The probe must be monotone -- it only ever
        # returns makespans some run has actually completed.
        self._limit_probe = limit_probe
        self._probe_interval = int(probe_interval) if limit_probe is not None else 0
        self._events_until_probe = self._probe_interval
        self._board_limit = False
        # Ambient cooperative cancellation (service layer): capture the
        # calling thread's cancel token once at construction.  sys.modules
        # is consulted instead of importing -- core/ must not pull in
        # engine/, and a solve can only run inside a cancel scope if
        # repro.engine.faults is already imported (whoever armed the token
        # imported it first).  A fired token aborts the run at the next
        # event-loop checkpoint via CancelledSolve.
        faults = sys.modules.get("repro.engine.faults")
        self._cancel_token: Optional["CancelToken"] = (
            faults.active_cancel_token() if faults is not None else None
        )
        width_cap = min(config.max_core_width, total_width)
        self.rectangle_sets = resolve_rectangle_sets(
            soc, config.max_core_width, rectangle_sets
        )
        self.states: Dict[str, _CoreState] = {}
        for core in soc.cores:
            rect = self.rectangle_sets[core.name]
            if preferred_widths is not None:
                preferred = preferred_widths[core.name]
            else:
                preferred = rect.preferred_width(config.percent, config.delta, width_cap)
            self.states[core.name] = _CoreState(
                name=core.name,
                rectangles=rect,
                preferred_width=preferred,
                max_preemptions=constraints.preemption_limit(core.name),
                power=core.test_power,
                bist_resource=core.bist_resource,
            )
        # Incremental pools and running totals (see class docstring).
        self._running: Dict[str, _CoreState] = {}
        self._paused: Dict[str, _CoreState] = {}
        self._unstarted: Dict[str, _CoreState] = dict(self.states)
        self._incomplete = len(self.states)
        self._width_in_use = 0
        self._running_power = 0.0
        self._bist_in_use: Dict[str, int] = {}
        self._completion_heap: List[Tuple[int, str, _CoreState]] = []
        self._concurrency = frozenset(constraints.concurrency)
        self._pending_preds: Dict[str, Set[str]] = {}
        self._successors: Dict[str, List[str]] = {}
        for before, after in constraints.precedence:
            if before in self.states and after in self.states:
                self._pending_preds.setdefault(after, set()).add(before)
                self._successors.setdefault(before, []).append(after)
        # Candidate priority queues (see _select_candidate_heaps).  Entries
        # are (-candidate_remaining, rank, state) where rank is the core's
        # position in *descending* name order, so the heap pops the largest
        # (remaining, name) first with pure-integer comparisons (ranks are
        # unique, the state object is never compared).  Staleness is
        # detected lazily by re-checking the core's pool membership and
        # remaining time on pop.
        self._use_heaps = config.use_candidate_heaps
        self._fresh_starts: List[_CoreState] = []
        self._no_preemption = all(
            state.max_preemptions == 0 for state in self.states.values()
        )
        # With no constraints of any kind, _conflicts is identically False
        # and the per-candidate call can be skipped entirely.
        self._no_conflicts = (
            not self._pending_preds
            and not self._concurrency
            and constraints.power_max is None
            and all(state.bist_resource is None for state in self.states.values())
        )
        if self._use_heaps:
            names_desc = sorted(self.states, reverse=True)
            self._desc_rank: Dict[str, int] = {
                name: rank for rank, name in enumerate(names_desc)
            }
            asc_rank = {name: rank for rank, name in enumerate(sorted(self.states))}
            self._unstarted_heap: List[Tuple[int, int, _CoreState]] = [
                (-state.candidate_remaining(), self._desc_rank[name], state)
                for name, state in self.states.items()
            ]
            heapq.heapify(self._unstarted_heap)
            # Idle-insertion fallback wants the *smallest* (preferred width,
            # name) over unstarted cores, so this one ranks ascending.
            self._squeeze_heap: List[Tuple[int, int, _CoreState]] = [
                (state.preferred_width, asc_rank[name], state)
                for name, state in self.states.items()
            ]
            heapq.heapify(self._squeeze_heap)
            self._paused_heap: List[Tuple[int, int, _CoreState]] = []
            self._exhausted_heap: List[Tuple[int, int, _CoreState]] = []
        self._select = (
            self._select_candidate_heaps if self._use_heaps else self._select_candidate_scan
        )
        self._check_feasibility()

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def _check_feasibility(self) -> None:
        power_max = self.constraints.power_max
        if power_max is None:
            return
        for state in self.states.values():
            if state.power > power_max:
                raise SchedulerError(
                    f"core {state.name!r} dissipates {state.power} during test, "
                    f"which exceeds the SOC power budget {power_max}"
                )

    # ------------------------------------------------------------------
    # Conflict checks (paper Figure 7)
    # ------------------------------------------------------------------
    def _width_available(self) -> int:
        return self.total_width - self._width_in_use

    def _conflicts(self, state: _CoreState) -> bool:
        """True if scheduling ``state`` right now would violate a constraint."""
        # Precedence: every predecessor must be complete before the first
        # start.  Pending-predecessor sets are drained on completion, so
        # this is one dict lookup.
        if not state.begun and self._pending_preds.get(state.name):
            return True
        # Concurrency constraints against currently running tests; the
        # pairwise walk only happens when explicit constraints exist.
        if self._concurrency:
            name = state.name
            for other in self._running.values():
                if frozenset((name, other.name)) in self._concurrency:
                    return True
        # BIST-engine sharing: maintained occupancy count per engine.
        if (
            state.bist_resource is not None
            and self._bist_in_use.get(state.bist_resource, 0) > 0
        ):
            return True
        # Power budget against the maintained running-power total.
        power_max = self.constraints.power_max
        if power_max is not None:
            if self._running_power + state.power > power_max + 1e-9:
                return True
        return False

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def _start(self, state: _CoreState, width: int) -> None:
        """Start or resume a core test at the given width (paper ``Assign``)."""
        if state.begun:
            assert state.assigned_width is not None
            width = state.assigned_width  # widths are fixed once packed
            if state.end_time is not None and state.end_time < self.current_time:
                # True preemption: resuming after a gap costs an extra
                # scan-out + scan-in (Figure 6, line 5).
                state.preemptions += 1
                state.remaining += state.rectangles.preemption_overhead(width)
            del self._paused[state.name]
        else:
            width = state.rectangles.effective_width(width)
            state.assigned_width = width
            state.remaining = state.rectangles.time_at(width)
            state.begun = True
            state.first_begin = self.current_time
            del self._unstarted[state.name]
            self._fresh_starts.append(state)
        state.running = True
        state.run_start = self.current_time
        self._running[state.name] = state
        self._width_in_use += state.assigned_width
        self._running_power += state.power
        if state.bist_resource is not None:
            self._bist_in_use[state.bist_resource] = (
                self._bist_in_use.get(state.bist_resource, 0) + 1
            )
        heapq.heappush(
            self._completion_heap,
            (self.current_time + state.remaining, state.name, state),
        )

    def _pause(self, state: _CoreState) -> None:
        """Stop a running test at the current time and record its segment."""
        assert state.running and state.run_start is not None
        elapsed = self.current_time - state.run_start
        if elapsed > 0:
            self._emit_segment(state, state.run_start, self.current_time)
            state.remaining -= elapsed
        state.running = False
        state.run_start = None
        state.end_time = self.current_time
        del self._running[state.name]
        assert state.assigned_width is not None
        self._width_in_use -= state.assigned_width
        self._running_power -= state.power
        if not self._running:
            # Pin the accumulator back to exactly zero at quiet points so
            # float error cannot build up across busy periods.
            self._running_power = 0.0
        if state.bist_resource is not None:
            occupancy = self._bist_in_use.get(state.bist_resource, 0) - 1
            if occupancy > 0:
                self._bist_in_use[state.bist_resource] = occupancy
            else:
                self._bist_in_use.pop(state.bist_resource, None)
        if state.remaining <= 0:
            state.remaining = 0
            state.complete = True
            self._incomplete -= 1
            for after in self._successors.get(state.name, ()):
                pending = self._pending_preds.get(after)
                if pending:
                    pending.discard(state.name)
        else:
            self._paused[state.name] = state
            if self._use_heaps:
                # A paused core's remaining time and preemption count are
                # frozen until it resumes, so its Priority-1-vs-2 category
                # is fixed for the whole pause and one entry suffices.
                entry = (-state.remaining, self._desc_rank[state.name], state)
                if state.preemptions >= state.max_preemptions:
                    heapq.heappush(self._exhausted_heap, entry)
                else:
                    heapq.heappush(self._paused_heap, entry)

    def _emit_segment(self, state: _CoreState, start: int, end: int) -> None:
        assert state.assigned_width is not None
        if state.segments:
            last = state.segments[-1]
            if last.end == start and last.width == state.assigned_width:
                state.segments[-1] = ScheduleSegment(
                    core=state.name, start=last.start, end=end, width=last.width
                )
                return
        state.segments.append(
            ScheduleSegment(
                core=state.name, start=start, end=end, width=state.assigned_width
            )
        )

    def _exhausted_paused(self) -> List[_CoreState]:
        return [
            state
            for state in self._paused.values()
            if state.preemptions >= state.max_preemptions
        ]

    def _select_candidate(self, width_available: int) -> Optional[Tuple[_CoreState, int]]:
        """Pick the next core to schedule, or ``None`` if nothing fits.

        Delegates to the implementation bound at construction time: the
        maintained-heap path (the default) or the straightforward pool
        re-scan (``use_candidate_heaps=False``); the two are bit-identical,
        a property pinned by the randomized tests in
        ``tests/test_grid_sweep.py``.
        """
        return self._select(width_available)

    # -- heap implementation -------------------------------------------
    def _candidate_eligibility(
        self, state: _CoreState, width_available: int
    ) -> Optional[int]:
        """Width ``state`` would run at, or ``None`` if it cannot run now."""
        if state.begun:
            width = state.assigned_width or 0
            if width > width_available:
                return None
        else:
            width = state.preferred_width
            if width > self.total_width:
                width = self.total_width
            if width > width_available:
                if (
                    not self.config.enable_idle_insertion
                    or width - width_available > self.config.insertion_slack
                ):
                    return None
                width = width_available
        if not self._no_conflicts and self._conflicts(state):
            return None
        return width

    def _select_candidate_heaps(
        self, width_available: int
    ) -> Optional[Tuple[_CoreState, int]]:
        """Heap-backed candidate selection (same result as the scan).

        Each pool's heap yields candidates in decreasing priority order;
        entries are popped until the first *eligible* one (fits the free
        wires or can be squeezed in, and conflicts with nothing running),
        which by construction is the max the scan would have picked.
        Popped-but-skipped live entries are pushed back; stale entries
        (core left the pool, or remaining changed) are dropped for good.
        """
        # Fast path: with nothing paused (always true in non-preemptive
        # mode), a candidate can only come from the unstarted pool, and the
        # narrowest unstarted core (the squeeze heap's top) already tells
        # us whether *any* candidate is width-eligible.  A core is eligible
        # only if min(preferred, total) <= available, or -- with idle
        # insertion -- preferred <= available + slack; both imply
        # min(total, min_preferred) <= available + slack.
        if not self._paused:
            squeeze = self._squeeze_heap
            while squeeze and squeeze[0][2].begun:
                heapq.heappop(squeeze)
            if not squeeze:
                return None
            slack = (
                self.config.insertion_slack
                if self.config.enable_idle_insertion
                else 0
            )
            if min(self.total_width, squeeze[0][0]) > width_available + slack:
                return None

        def valid_exhausted(entry: Tuple[int, int, _CoreState]) -> bool:
            state = entry[2]
            return (
                state.begun
                and not state.running
                and not state.complete
                and state.remaining == -entry[0]
                and state.preemptions >= state.max_preemptions
            )

        def valid_paused(entry: Tuple[int, int, _CoreState]) -> bool:
            state = entry[2]
            return (
                state.begun
                and not state.running
                and not state.complete
                and state.remaining == -entry[0]
                and state.preemptions < state.max_preemptions
            )

        def valid_unstarted(entry: Tuple[int, int, _CoreState]) -> bool:
            # A core that never began cannot be complete, so one flag check
            # decides pool membership.
            return not entry[2].begun

        def live_top(
            heap: List[Tuple[int, int, _CoreState]],
            valid: Callable[[Tuple[int, int, _CoreState]], bool],
        ) -> Optional[Tuple[int, int, _CoreState]]:
            while heap:
                if valid(heap[0]):
                    return heap[0]
                heapq.heappop(heap)
            return None

        # Priority 1: paused tests that may not be preempted again; max by
        # (remaining, name), eligible iff their fixed width fits.
        winner: Optional[Tuple[_CoreState, int]] = None
        if self._paused:
            skipped: List[Tuple[int, int, _CoreState]] = []
            while True:
                if live_top(self._exhausted_heap, valid_exhausted) is None:
                    break
                entry = heapq.heappop(self._exhausted_heap)
                skipped.append(entry)
                state = entry[2]
                if (state.assigned_width or 0) <= width_available and (
                    self._no_conflicts or not self._conflicts(state)
                ):
                    winner = (state, state.assigned_width or 1)
                    break
            for entry in skipped:
                heapq.heappush(self._exhausted_heap, entry)
            if winner is not None:
                return winner

        if self.config.strict_priority_resume:
            # Literal pseudocode ordering: all paused before any unstarted.
            for heap, valid in (
                (self._paused_heap, valid_paused),
                (self._unstarted_heap, valid_unstarted),
            ):
                skipped = []
                while True:
                    if live_top(heap, valid) is None:
                        break
                    entry = heapq.heappop(heap)
                    skipped.append(entry)
                    width = self._candidate_eligibility(entry[2], width_available)
                    if width is not None:
                        winner = (entry[2], width)
                        break
                for entry in skipped:
                    heapq.heappush(heap, entry)
                if winner is not None:
                    return winner
        else:
            # Merged Priorities 2/3: pop from whichever heap holds the
            # globally best (remaining, begun, name); paused (begun) wins
            # remaining-time ties so seamless resumption is preferred, so
            # the paused heap is taken whenever its (negated) key is <=.
            skipped_paused: List[Tuple[int, int, _CoreState]] = []
            skipped_unstarted: List[Tuple[int, int, _CoreState]] = []
            # Tops are cached and refreshed only for the heap just popped
            # (the other heap cannot have changed).
            paused_top = (
                live_top(self._paused_heap, valid_paused) if self._paused else None
            )
            unstarted_top = live_top(self._unstarted_heap, valid_unstarted)
            while True:
                if paused_top is None and unstarted_top is None:
                    break
                if unstarted_top is None or (
                    paused_top is not None and paused_top[0] <= unstarted_top[0]
                ):
                    entry = heapq.heappop(self._paused_heap)
                    skipped_paused.append(entry)
                    paused_top = live_top(self._paused_heap, valid_paused)
                else:
                    entry = heapq.heappop(self._unstarted_heap)
                    skipped_unstarted.append(entry)
                    unstarted_top = live_top(self._unstarted_heap, valid_unstarted)
                width = self._candidate_eligibility(entry[2], width_available)
                if width is not None:
                    winner = (entry[2], width)
                    break
            for entry in skipped_paused:
                heapq.heappush(self._paused_heap, entry)
            for entry in skipped_unstarted:
                heapq.heappush(self._unstarted_heap, entry)
            if winner is not None:
                return winner

        # Idle-time rectangle insertion (Figure 4 lines 13-14): *smallest*
        # (preferred width, name) over unstarted cores within the slack.
        if self.config.enable_idle_insertion and width_available >= 1:
            slack_limit = width_available + self.config.insertion_slack
            skipped_squeeze: List[Tuple[int, int, _CoreState]] = []
            while self._squeeze_heap:
                entry = self._squeeze_heap[0]
                if entry[2].begun:
                    heapq.heappop(self._squeeze_heap)
                    continue
                if entry[0] > slack_limit:
                    break  # min-heap: every later entry is wider still
                heapq.heappop(self._squeeze_heap)
                skipped_squeeze.append(entry)
                if self._no_conflicts or not self._conflicts(entry[2]):
                    winner = (entry[2], width_available)
                    break
            for entry in skipped_squeeze:
                heapq.heappush(self._squeeze_heap, entry)
            if winner is not None:
                return winner
        return None

    # -- reference (re-scanning) implementation ------------------------
    def _select_candidate_scan(
        self, width_available: int
    ) -> Optional[Tuple[_CoreState, int]]:
        """Re-scanning candidate selection (the pre-heap reference path)."""
        # Priority 1: paused tests that may not be preempted again.
        priority1 = [
            state
            for state in self._exhausted_paused()
            if (state.assigned_width or 0) <= width_available
            and not self._conflicts(state)
        ]
        if priority1:
            state = max(priority1, key=lambda s: (s.remaining, s.name))
            return state, state.assigned_width or 1

        paused = list(self._paused.values())
        unstarted = list(self._unstarted.values())

        def eligible(pool: Iterable[_CoreState]) -> List[Tuple[_CoreState, int]]:
            found = []
            for state in pool:
                width = state.candidate_width(self.total_width)
                if width > width_available:
                    # An unstarted core whose preferred width slightly exceeds
                    # the free wires may still be squeezed in (paper Figure 4
                    # line 13: "within 3 bits of the preferred width").
                    if (
                        state.begun
                        or not self.config.enable_idle_insertion
                        or width - width_available > self.config.insertion_slack
                    ):
                        continue
                    width = width_available
                if not self._conflicts(state):
                    found.append((state, width))
            return found

        if self.config.strict_priority_resume:
            # Literal pseudocode ordering: Priority 2 then Priority 3.
            for pool in (paused, unstarted):
                candidates = eligible(pool)
                if candidates:
                    return max(
                        candidates, key=lambda item: (item[0].candidate_remaining(), item[0].name)
                    )
        else:
            # Merged Priorities 2/3: longest remaining test first; paused tests
            # win ties so seamless resumption is preferred.
            candidates = eligible(paused) + eligible(unstarted)
            if candidates:
                return max(
                    candidates,
                    key=lambda item: (
                        item[0].candidate_remaining(),
                        item[0].begun,
                        item[0].name,
                    ),
                )

        # Idle-time rectangle insertion (Figure 4 lines 13-14).
        if self.config.enable_idle_insertion and width_available >= 1:
            squeezable = [
                state
                for state in unstarted
                if state.preferred_width <= width_available + self.config.insertion_slack
                and not self._conflicts(state)
            ]
            if squeezable:
                state = min(squeezable, key=lambda s: (s.preferred_width, s.name))
                return state, width_available
        return None

    def _try_width_increase(self, width_available: int) -> bool:
        """Give leftover wires to a core that began now (Figure 4 lines 15-16)."""
        if not self.config.enable_width_increase or width_available <= 0:
            return False
        best: Optional[_CoreState] = None
        best_gain = 0
        best_width = 0
        # Only tests that *began* at the current instant qualify, so the
        # scan covers the fresh-start list (reset on every time advance)
        # instead of the whole running pool.
        for state in self._fresh_starts:
            if state.first_begin != self.current_time or state.run_start != self.current_time:
                continue
            if state.preemptions or len(state.segments) > 0:
                continue  # only brand-new tests may still change width
            assert state.assigned_width is not None
            new_width = state.rectangles.effective_width(
                min(
                    state.assigned_width + width_available,
                    self.config.max_core_width,
                    self.total_width,
                )
            )
            if new_width <= state.assigned_width:
                continue
            # A test that began this instant has run for zero cycles, so
            # its remaining time *is* its testing time at the current width.
            gain = state.remaining - state.rectangles.time_at(new_width)
            if gain > best_gain:
                best, best_gain, best_width = state, gain, new_width
        if best is None:
            return False
        assert best.assigned_width is not None
        self._width_in_use += best_width - best.assigned_width
        best.assigned_width = best_width
        best.remaining = best.rectangles.time_at(best_width)
        heapq.heappush(
            self._completion_heap,
            (self.current_time + best.remaining, best.name, best),
        )
        return True

    def _assignment_phase(self) -> None:
        while True:
            width_available = self._width_available()
            if width_available <= 0:
                return
            candidate = self._select(width_available)
            if candidate is None:
                # Nothing fits; hand leftover wires to a test that just began.
                while self._try_width_increase(self._width_available()):
                    pass
                return
            state, width = candidate
            self._start(state, width)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if not self._running:
            blocked = [s.name for s in self.states.values() if not s.complete]
            raise SchedulerError(
                "no test can be scheduled and none is running; the constraints are "
                f"unsatisfiable for cores {blocked}"
            )
        # The next event is the earliest completion among running tests,
        # read off the completion heap.  Entries are invalidated lazily: an
        # entry is stale once its core stopped running or changed its
        # finish time (width increase, preemption overhead), and every
        # running core always has one entry matching its current finish, so
        # the first live entry is the true minimum.
        heap = self._completion_heap
        while True:
            finish, _, state = heap[0]
            if (
                state.running
                and state.run_start is not None
                and state.run_start + state.remaining == finish
            ):
                break
            heapq.heappop(heap)
        next_time = finish
        assert next_time > self.current_time
        if self._cancel_token is not None:
            # Cooperative cancellation checkpoint: one Event read (plus a
            # monotonic-clock read when a deadline is armed) per event.
            self._cancel_token.raise_if_cancelled()
        if self._probe_interval > 0:
            self._events_until_probe -= 1
            if self._events_until_probe <= 0:
                self._events_until_probe = self._probe_interval
                assert self._limit_probe is not None
                fresh = self._limit_probe()
                if fresh > 0 and (
                    self.makespan_limit is None or fresh < self.makespan_limit
                ):
                    self.makespan_limit = fresh
                    self._board_limit = True
        if self.makespan_limit is not None and next_time > self.makespan_limit:
            # Tests remain incomplete past the limit, so the final makespan
            # is strictly worse than the incumbent: abandon the run.  The
            # strict comparison keeps a run that *ties* the limit alive,
            # which makes pruning safe in any evaluation order.
            message = f"makespan exceeds {self.makespan_limit} at time {next_time}"
            if self._board_limit:
                raise IncumbentAbort(message)
            raise MakespanLimitExceeded(message)
        self.current_time = next_time
        self._fresh_starts.clear()
        if self._no_preemption:
            # No test may ever be paused mid-run, so the only state changes
            # are the completions at the event time -- read them off the
            # heap instead of scanning the whole running pool.
            while heap:
                finish, _, state = heap[0]
                if finish > next_time:
                    break
                heapq.heappop(heap)
                if (
                    state.running
                    and state.run_start is not None
                    and state.run_start + state.remaining == finish
                ):
                    self._pause(state)  # records segment and marks complete
            return
        for state in list(self._running.values()):
            finish = (state.run_start or 0) + state.remaining
            if finish <= self.current_time:
                self._pause(state)  # records segment and marks complete
            elif state.preemptions < state.max_preemptions:
                # Preemptable test: pause it so it re-competes for wires.
                self._pause(state)
            # else: non-preemptable (or exhausted) tests keep running.

    def run(self) -> TestSchedule:
        """Execute the scheduler and return the packed schedule."""
        total_cores = len(self.states)
        safety_limit = 10 * total_cores * (max(s.max_preemptions for s in self.states.values()) + 2)
        iterations = 0
        check_floor = self._no_preemption and self.makespan_limit is not None
        while self._incomplete:
            iterations += 1
            if iterations > max(safety_limit, 1000):
                raise SchedulerError(
                    "scheduler failed to converge; this indicates an internal error"
                )
            self._assignment_phase()
            if check_floor:
                # Without preemption a started test runs to completion at
                # its now-final width, so each fresh start pins a floor on
                # the makespan; a floor beyond the incumbent ends the run
                # immediately (often at time 0, when a bad grid point gives
                # the bottleneck core too narrow a preferred width).
                limit = self.makespan_limit
                for state in self._fresh_starts:
                    if self.current_time + state.remaining > limit:
                        message = (
                            f"core {state.name!r} cannot finish before "
                            f"{self.current_time + state.remaining} > {limit}"
                        )
                        if self._board_limit:
                            raise IncumbentAbort(message)
                        raise MakespanLimitExceeded(message)
            if not self._incomplete:
                break
            self._advance()
        segments: List[ScheduleSegment] = []
        for state in self.states.values():
            segments.extend(state.segments)
        return TestSchedule(
            soc_name=self.soc.name,
            total_width=self.total_width,
            segments=tuple(segments),
        )


def run_paper_scheduler(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
    *,
    preferred_widths: Optional[Mapping[str, int]] = None,
    makespan_limit: Optional[int] = None,
) -> TestSchedule:
    """Schedule all core tests of ``soc`` on a TAM of ``total_width`` wires.

    The implementation behind the ``"paper"`` solver of the registry
    (:mod:`repro.solvers`): wrapper/TAM co-optimization (via the Pareto
    rectangle sets) and constraint-driven, selectively preemptive test
    scheduling in one pass, returning a
    :class:`~repro.schedule.schedule.TestSchedule`.

    Parameters
    ----------
    soc:
        The SOC to schedule.
    total_width:
        Total SOC TAM width ``W`` (bin height).
    constraints:
        Precedence/concurrency/power/preemption constraints; ``None`` means
        unconstrained, non-preemptive scheduling (the paper's Problem 1).
    config:
        Heuristic parameters; see :class:`SchedulerConfig`.
    rectangle_sets:
        Optional pre-built Pareto rectangle sets (must have been built with
        ``max_width == config.max_core_width``).  A solver
        :class:`~repro.solvers.Session` passes its shared cache here so
        repeated solves stop recomputing wrapper designs.
    preferred_widths:
        Optional precomputed per-core preferred widths (as produced by
        ``RectangleSet.preferred_width`` at this config's percent/delta and
        width cap).  The grid sweep passes these so deduplicated grid
        points skip the per-run recomputation.
    makespan_limit:
        Optional upper bound: once the event clock moves strictly past it
        the run raises :class:`MakespanLimitExceeded` instead of finishing.
        The grid sweep passes its incumbent best makespan here to prune
        runs that can no longer win.
    """
    constraints = constraints or ConstraintSet.unconstrained()
    config = config or SchedulerConfig()
    constraints.validate_for(soc)
    scheduler = _Scheduler(
        soc,
        total_width,
        constraints,
        config,
        rectangle_sets,
        preferred_widths=preferred_widths,
        makespan_limit=makespan_limit,
    )
    return scheduler.run()


def run_best_schedule(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    percents: Sequence[float] = (1, 5, 10, 25, 40, 60, 75),
    deltas: Sequence[int] = (0, 2, 4),
    slacks: Sequence[int] = (0, 3, 6),
    config: Optional[SchedulerConfig] = None,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
    workers: int = 0,
) -> TestSchedule:
    """Run the scheduler over a (``percent``, ``delta``, ``slack``) grid, keep the best.

    The implementation behind the ``"best"`` solver of the registry.  The
    paper tabulates the best result over all integer ``1 <= q <= 10`` and
    ``0 <= delta <= 4`` (with the idle-insertion slack fixed at 3); this
    helper reproduces that experimental protocol with a configurable grid.
    The default grid is slightly wider than the paper's because the synthetic
    Philips stand-ins reward smaller preferred widths at narrow TAMs.

    Since PR 4 this is a thin wrapper over
    :func:`repro.core.grid_sweep.run_grid_sweep`, which deduplicates grid
    points that induce identical per-core preferred-width vectors, prunes
    runs that cannot beat the incumbent, stops early when the Table 1 lower
    bound is met and can fan the surviving runs out over ``workers``
    processes -- all bit-identical to the straightforward triple loop (kept
    as :func:`repro.core.grid_sweep.run_best_schedule_reference`).  Use
    ``run_grid_sweep`` directly to also learn *which* grid point won.
    """
    from repro.core.grid_sweep import run_grid_sweep

    return run_grid_sweep(
        soc,
        total_width,
        constraints=constraints,
        percents=percents,
        deltas=deltas,
        slacks=slacks,
        config=config,
        rectangle_sets=rectangle_sets,
        workers=workers,
    ).schedule


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.solvers) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def schedule_soc(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
) -> TestSchedule:
    """Deprecated alias of :func:`run_paper_scheduler`.

    Prefer ``Session().solve(ScheduleRequest(soc=soc, total_width=W,
    solver="paper"))`` from :mod:`repro.solvers`, which shares Pareto
    rectangle sets across solves.  Signature and results are unchanged.
    """
    _deprecated("schedule_soc", 'Session.solve(ScheduleRequest(..., solver="paper"))')
    return run_paper_scheduler(soc, total_width, constraints=constraints, config=config)


def best_schedule(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    percents: Sequence[float] = (1, 5, 10, 25, 40, 60, 75),
    deltas: Sequence[int] = (0, 2, 4),
    slacks: Sequence[int] = (0, 3, 6),
    config: Optional[SchedulerConfig] = None,
) -> TestSchedule:
    """Deprecated alias of :func:`run_best_schedule`.

    Prefer ``Session().solve(ScheduleRequest(..., solver="best"))`` from
    :mod:`repro.solvers`.  Signature and results are unchanged.
    """
    _deprecated("best_schedule", 'Session.solve(ScheduleRequest(..., solver="best"))')
    return run_best_schedule(
        soc,
        total_width,
        constraints=constraints,
        percents=percents,
        deltas=deltas,
        slacks=slacks,
        config=config,
    )

"""Deduplicated, pruned, parallel best-over-grid sweep (the ``best`` solver core).

The paper's headline numbers are "best over a (``percent``, ``delta``)
grid" results, so the real unit of work is not one scheduler run but a
whole grid of them.  :func:`run_grid_sweep` turns that grid into a batched
subsystem with four cooperating optimisations, all bit-identical to the
straightforward triple loop (kept as
:func:`run_best_schedule_reference` and pinned by randomized property
tests in ``tests/test_grid_sweep.py``):

* **Grid deduplication.**  A scheduler run is fully determined by the
  per-core preferred-width vector (a pure function of ``percent``/``delta``
  via the shared :class:`~repro.wrapper.curve.WrapperCurve` staircases) and
  the insertion slack; grid points inducing identical ``(vector, slack)``
  signatures -- common at narrow TAMs, where many ``percent`` values snap
  to the same Pareto widths -- collapse into one run.  When idle insertion
  is disabled the slack drops out of the signature too.
* **Incumbent pruning.**  Every run after the first is bounded by the best
  makespan found so far (``makespan_limit``); the scheduler abandons the
  run as soon as its event clock moves *strictly* past the bound, which
  can never eliminate a winner (an abandoned run is strictly worse than
  the incumbent, and ties lose to the earlier grid point anyway).
* **Lower-bound early exit.**  Once a candidate meets the Table 1 lower
  bound (max of area and bottleneck bounds) no later grid point can beat
  it, so the sweep stops.
* **Parallel execution.**  Surviving runs fan out as individual tasks on
  the *shared flat executor* (:mod:`repro.engine.executor`) -- the same
  persistent pool the sweep engine dispatches to, so a ``best`` solve and
  an engine sweep never nest pools.  Tasks stream through
  ``imap_unordered`` carrying the incumbent makespan known at dispatch
  time (monotone-tightening only), and the winner is selected by
  ``(makespan, grid index)`` exactly as the serial loop would.  Pool-less
  sandboxes degrade to the serial path *observably* (a RuntimeWarning plus
  a ``degraded_to_serial`` marker in the outcome metadata); results are
  bit-identical for every worker count.

The sweep also reports *which* grid point won (:class:`GridSweepOutcome`),
which the ``best`` solver surfaces in its result metadata.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # circular at runtime: repro.engine imports this module
    from repro.engine.faults import RecoveryEvent

from repro.core.lower_bounds import lower_bound
from repro.core.rectangles import RectangleSet, resolve_rectangle_sets
from repro.core.scheduler import (
    IncumbentAbort,
    MakespanLimitExceeded,
    SchedulerConfig,
    _Scheduler,
    run_paper_scheduler,
)
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc

#: The default heuristic grid of the paper's experimental protocol (kept in
#: one place; the ``best`` solver re-exports these).
DEFAULT_PERCENTS: Tuple[float, ...] = (1, 5, 10, 25, 40, 60, 75)
DEFAULT_DELTAS: Tuple[int, ...] = (0, 2, 4)
DEFAULT_SLACKS: Tuple[int, ...] = (0, 3, 6)

#: Metadata keys that describe *how* a sweep executed (recovery ladder,
#: payload plane, board aborts) rather than *what* it computed.  They vary
#: with worker count, fault injection and scheduling races; byte-identity
#: contracts compare metadata modulo this set.
EXECUTION_METADATA_KEYS: Tuple[str, ...] = (
    "recovery_events",
    "degraded_to_serial",
    "board_aborts",
    "payload_bytes",
    "shm_bytes_saved",
)


@dataclass(frozen=True)
class GridPoint:
    """One (``percent``, ``delta``, ``slack``) heuristic-parameter choice."""

    percent: float
    delta: int
    slack: int


@dataclass(frozen=True)
class GridRun:
    """One deduplicated scheduler run: a signature and its representative.

    ``index`` is the enumeration index (percent outer, delta middle, slack
    inner) of the *first* grid point with this signature; it doubles as the
    deterministic tie-break key, reproducing the serial loop's
    "first strict improvement wins" behaviour.
    """

    index: int
    point: GridPoint
    preferred_widths: Tuple[int, ...]
    duplicates: int = 1


@dataclass(frozen=True)
class GridSweepOutcome:
    """The result of one best-over-grid sweep.

    All comparable fields are deterministic functions of the inputs --
    identical for every worker count -- so the outcome is safe to
    fingerprint.  ``recovery_events`` records the recovery-ladder steps
    (``resurrected``/``quarantined``/``serial``) the flat executor took to
    finish the sweep (environment-dependent, so excluded from equality);
    a clean run has none, keeping serial-reference comparisons exact.
    ``degraded_to_serial`` is the derived compatibility flag: ``True``
    whenever any rung of the ladder was the serial path.
    """

    schedule: TestSchedule
    winner: GridPoint
    makespan: int
    grid_points: int
    unique_runs: int
    lower_bound: int
    early_exit: bool
    recovery_events: Tuple["RecoveryEvent", ...] = field(default=(), compare=False)
    # Execution statistics of the parallel path (zero on the serial path).
    # Like ``recovery_events`` these depend on scheduling races and the
    # payload plane in use, so they are excluded from equality -- the
    # schedule/makespan/winner fields above carry the bit-identity contract.
    board_aborts: int = field(default=0, compare=False)
    payload_bytes: int = field(default=0, compare=False)
    shm_bytes_saved: int = field(default=0, compare=False)

    @property
    def degraded_to_serial(self) -> bool:
        """Derived compatibility flag: did any work run on the serial rung?"""
        # Stage names are stable string constants (see repro.engine.faults,
        # not importable here at runtime without a cycle).
        return any(event.stage == "serial" for event in self.recovery_events)

    def metadata(self) -> Dict[str, Any]:
        """Flat, JSON/CSV-friendly form for ``ScheduleResult.metadata``."""
        metadata = {
            "grid_points": self.grid_points,
            "unique_runs": self.unique_runs,
            "winner_percent": self.winner.percent,
            "winner_delta": self.winner.delta,
            "winner_slack": self.winner.slack,
            "lower_bound": self.lower_bound,
            "early_exit": self.early_exit,
        }
        if self.recovery_events:
            metadata["recovery_events"] = ">".join(
                event.encode() for event in self.recovery_events
            )
        if self.degraded_to_serial:
            metadata["degraded_to_serial"] = True
        # The payload-plane counters (board_aborts, payload_bytes,
        # shm_bytes_saved) deliberately stay OUT of result metadata: a
        # *serial* engine run whose jobs carry a ``workers`` option still
        # fans its inner grids out through the pool, so counter-bearing
        # metadata would differ from the pool-suppressed parallel path and
        # break the serial/parallel bit-identity contract.  They travel on
        # :class:`~repro.engine.results.ExecutorStats` (and these
        # compare-excluded fields) instead; the CLI surfaces them from
        # there.
        return metadata


def enumerate_grid_points(
    percents: Sequence[float],
    deltas: Sequence[int],
    slacks: Sequence[int],
) -> List[GridPoint]:
    """The full grid in reference order (percent outer, slack inner)."""
    return [
        GridPoint(percent=percent, delta=delta, slack=slack)
        for percent in percents
        for delta in deltas
        for slack in slacks
    ]


def dedupe_grid(
    soc: Soc,
    total_width: int,
    config: SchedulerConfig,
    rectangle_sets: Dict[str, RectangleSet],
    percents: Sequence[float],
    deltas: Sequence[int],
    slacks: Sequence[int],
) -> List[GridRun]:
    """Collapse the grid to the runs with distinct scheduler inputs.

    Two grid points are equivalent iff they induce the same per-core
    preferred-width vector and the same insertion slack (slack is ignored
    when idle insertion is disabled, since it is then never read).  The
    representative of each signature is its first grid point in reference
    order; runs are returned in representative order.
    """
    width_cap = min(config.max_core_width, total_width)
    vectors: Dict[Tuple[float, int], Tuple[int, ...]] = {}
    runs: Dict[Tuple[Any, ...], List[Any]] = {}
    for index, point in enumerate(enumerate_grid_points(percents, deltas, slacks)):
        vector = vectors.get((point.percent, point.delta))
        if vector is None:
            vector = tuple(
                rectangle_sets[core.name].preferred_width(
                    point.percent, point.delta, width_cap
                )
                for core in soc.cores
            )
            vectors[(point.percent, point.delta)] = vector
        signature: Tuple[Any, ...] = (
            (vector, point.slack) if config.enable_idle_insertion else (vector,)
        )
        entry = runs.get(signature)
        if entry is None:
            runs[signature] = [index, point, vector, 1]
        else:
            entry[3] += 1
    return [
        GridRun(index=index, point=point, preferred_widths=vector, duplicates=count)
        for index, point, vector, count in sorted(runs.values())
    ]


# ----------------------------------------------------------------------
# Pool context and run ordering (shared with the flat executor)
# ----------------------------------------------------------------------
def preferred_pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap start-up, inherits warm caches) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def order_runs_by_estimate(
    soc: Soc,
    rectangle_sets: Dict[str, RectangleSet],
    total_width: int,
    runs: Sequence[GridRun],
) -> List[GridRun]:
    """Deduplicated runs, most promising first.

    The estimate (area/bottleneck lower bound at the run's preferred
    widths) is a pure function of the inputs, and the strict pruning rule
    makes the final winner independent of evaluation order, so evaluating
    promising runs first is purely a wall-clock lever: the incumbent bound
    tightens early and prunes the rest harder.  Both the serial sweep and
    the flat executor's task decomposition use this order.
    """

    def estimate(run: GridRun) -> Tuple[int, int]:
        area = 0
        bottleneck = 0
        for core, width in zip(soc.cores, run.preferred_widths):
            time = rectangle_sets[core.name].time_at(width)
            area += width * time
            if time > bottleneck:
                bottleneck = time
        return (max(-(-area // total_width), bottleneck), run.index)

    return sorted(runs, key=estimate)


def _execute_run(
    soc: Soc,
    total_width: int,
    constraints: ConstraintSet,
    config: SchedulerConfig,
    rectangle_sets: Dict[str, RectangleSet],
    point: GridPoint,
    vector: Sequence[int],
    limit: Optional[int],
    limit_probe: Optional[Callable[[], int]] = None,
    probe_interval: int = 0,
) -> Optional[TestSchedule]:
    """One bounded scheduler run; ``None`` when the incumbent prunes it.

    Drives the scheduler directly (the sweep already resolved the
    rectangle sets and validated the constraints once for the whole grid,
    so the per-run front-door work of :func:`run_paper_scheduler` would be
    pure overhead repeated dozens of times).  ``limit_probe`` /
    ``probe_interval`` arm the mid-run incumbent checkpoint; a resulting
    :class:`IncumbentAbort` propagates (the executor counts those), while
    a dispatch-time prune still returns ``None``.
    """
    try:
        return _Scheduler(
            soc,
            total_width,
            constraints,
            replace(
                config,
                percent=point.percent,
                delta=point.delta,
                insertion_slack=point.slack,
            ),
            rectangle_sets,
            preferred_widths=dict(zip(soc.core_names, vector)),
            makespan_limit=limit,
            limit_probe=limit_probe,
            probe_interval=probe_interval,
        ).run()
    except IncumbentAbort:
        raise
    except MakespanLimitExceeded:
        return None


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def run_grid_sweep(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    percents: Sequence[float] = DEFAULT_PERCENTS,
    deltas: Sequence[int] = DEFAULT_DELTAS,
    slacks: Sequence[int] = DEFAULT_SLACKS,
    config: Optional[SchedulerConfig] = None,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
    workers: int = 0,
) -> GridSweepOutcome:
    """Best paper-scheduler run over the heuristic grid, with provenance.

    Parameters mirror :func:`repro.core.scheduler.run_best_schedule`;
    ``workers > 1`` fans the deduplicated runs out as individual tasks on
    the process-wide flat executor (:mod:`repro.engine.executor`), sharing
    its persistent worker pool with the sweep engine.  When no pool can be
    created the sweep degrades -- with a :class:`RuntimeWarning` and a
    ``degraded_to_serial`` outcome marker -- to the serial loop.  The
    returned outcome -- schedule, winning grid point and sweep statistics
    -- is bit-identical for every worker count.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    base = config or SchedulerConfig()
    resolved_constraints = constraints or ConstraintSet.unconstrained()
    resolved_constraints.validate_for(soc)
    sets = resolve_rectangle_sets(soc, base.max_core_width, rectangle_sets)
    runs = dedupe_grid(soc, total_width, base, sets, percents, deltas, slacks)
    if not runs:
        raise ValueError("the heuristic grid is empty; nothing to sweep")
    bound = lower_bound(soc, total_width, base.max_core_width, rectangle_sets=sets)
    grid_points = len(percents) * len(deltas) * len(slacks)
    ordered = order_runs_by_estimate(soc, sets, total_width, runs)

    best: Optional[Tuple[int, int, GridPoint, TestSchedule]] = None
    events: Tuple["RecoveryEvent", ...] = ()
    board_aborts = 0
    payload_bytes = 0
    shm_bytes_saved = 0

    if min(int(workers), len(runs)) > 1:
        # Lazy import: repro.engine imports this module at load time.
        from repro.engine.executor import get_default_executor

        flat, events, _failures, exec_stats = get_default_executor().run_grid_runs(
            soc,
            total_width,
            constraints,
            base,
            ordered,
            grid_points,
            bound,
            workers,
            rectangle_sets=sets,
        )
        if exec_stats is not None:
            board_aborts = exec_stats.board_aborts
            payload_bytes = exec_stats.payload_bytes
            shm_bytes_saved = exec_stats.shm_bytes_saved
        if flat is not None:
            best = flat
        # flat is None only when the executor declined to parallelise at
        # all (too few runs per worker); pool failures are recovered
        # *inside* the executor (resurrection or serial drain) and still
        # yield a winner, with the ladder reported through ``events``.

    if best is None:

        def skippable(run: GridRun) -> bool:
            # Once the incumbent meets the Table 1 lower bound, only an
            # earlier grid point could still displace it (by tying the
            # makespan with a smaller index); everything else is settled.
            return best is not None and best[0] <= bound and run.index > best[1]

        for run in ordered:
            if skippable(run):
                continue
            limit = best[0] if best is not None else None
            schedule = _execute_run(
                soc,
                total_width,
                resolved_constraints,
                base,
                sets,
                run.point,
                run.preferred_widths,
                limit,
            )
            if schedule is not None:
                key = (schedule.makespan, run.index)
                if best is None or key < (best[0], best[1]):
                    best = (schedule.makespan, run.index, run.point, schedule)

    assert best is not None  # the first (unbounded) run always completes
    makespan, _, point, schedule = best
    return GridSweepOutcome(
        schedule=schedule,
        winner=point,
        makespan=makespan,
        grid_points=grid_points,
        unique_runs=len(runs),
        lower_bound=bound,
        early_exit=makespan <= bound,
        recovery_events=events,
        board_aborts=board_aborts,
        payload_bytes=payload_bytes,
        shm_bytes_saved=shm_bytes_saved,
    )


def run_best_schedule_reference(
    soc: Soc,
    total_width: int,
    constraints: Optional[ConstraintSet] = None,
    percents: Sequence[float] = DEFAULT_PERCENTS,
    deltas: Sequence[int] = DEFAULT_DELTAS,
    slacks: Sequence[int] = DEFAULT_SLACKS,
    config: Optional[SchedulerConfig] = None,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> Tuple[TestSchedule, GridPoint]:
    """The straightforward serial triple loop (no dedup, no pruning).

    The executable reference for :func:`run_grid_sweep`: runs every grid
    point to completion and keeps the first strict improvement.  Used by
    the property tests and the perf harness's baseline measurement.
    """
    base = config or SchedulerConfig()
    sets = resolve_rectangle_sets(soc, base.max_core_width, rectangle_sets)
    best: Optional[Tuple[TestSchedule, GridPoint]] = None
    for point in enumerate_grid_points(percents, deltas, slacks):
        candidate = run_paper_scheduler(
            soc,
            total_width,
            constraints=constraints,
            config=replace(
                base,
                percent=point.percent,
                delta=point.delta,
                insertion_slack=point.slack,
            ),
            rectangle_sets=sets,
        )
        if best is None or candidate.makespan < best[0].makespan:
            best = (candidate, point)
    assert best is not None
    return best

"""Tester data volume reduction (Problem 3, paper Section 5).

The cost of testing an SOC depends on the testing time *and* on the tester
memory needed to hold the test data.  With a TAM of width ``W`` and an SOC
testing time of ``T(W)`` cycles, every TAM wire is driven from one tester
channel whose memory depth must cover the whole schedule, so the tester data
volume is

    ``D(W) = W * T(W)``  (bits).

``T(W)`` is a decreasing staircase, so ``D(W)`` is non-monotonic: it dips at
every Pareto-optimal width of the ``T`` curve and grows linearly in between
(Figure 9(b)).  The paper trades the two off with the normalized cost

    ``C(W) = alpha * T(W)/T_min + (1 - alpha) * D(W)/D_min``

whose minimiser ``W_e`` is the *effective* TAM width for a given
``alpha`` in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc


def tester_data_volume(schedule: TestSchedule) -> int:
    """Tester data volume (bits) implied by a schedule: width times depth."""
    return schedule.total_width * schedule.makespan


@dataclass(frozen=True)
class CostPoint:
    """Cost-function evaluation at one TAM width."""

    width: int
    testing_time: int
    data_volume: int
    cost: float


@dataclass(frozen=True)
class TamSweep:
    """Testing time and data volume as functions of the SOC TAM width."""

    soc_name: str
    widths: Tuple[int, ...]
    testing_times: Tuple[int, ...]
    data_volumes: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.widths) != len(self.testing_times):
            raise ValueError("widths and testing_times must have the same length")
        if not self.widths:
            raise ValueError("a TAM sweep needs at least one width")
        if not self.data_volumes:
            object.__setattr__(
                self,
                "data_volumes",
                tuple(w * t for w, t in zip(self.widths, self.testing_times)),
            )
        elif len(self.data_volumes) != len(self.widths):
            raise ValueError("data_volumes must match widths in length")

    # ------------------------------------------------------------------
    @property
    def min_testing_time(self) -> int:
        """``T_min`` -- the smallest testing time over the sweep."""
        return min(self.testing_times)

    @property
    def min_data_volume(self) -> int:
        """``D_min`` -- the smallest data volume over the sweep."""
        return min(self.data_volumes)

    @property
    def width_of_min_time(self) -> int:
        """The smallest width achieving ``T_min``."""
        index = self.testing_times.index(self.min_testing_time)
        return self.widths[index]

    @property
    def width_of_min_volume(self) -> int:
        """The smallest width achieving ``D_min``."""
        index = self.data_volumes.index(self.min_data_volume)
        return self.widths[index]

    def testing_time_at(self, width: int) -> int:
        """Testing time at a swept width."""
        return self.testing_times[self.widths.index(width)]

    def data_volume_at(self, width: int) -> int:
        """Data volume at a swept width."""
        return self.data_volumes[self.widths.index(width)]

    # ------------------------------------------------------------------
    def cost_at(self, width: int, alpha: float) -> float:
        """Normalized cost ``C`` at one width for trade-off parameter ``alpha``."""
        _check_alpha(alpha)
        time_term = self.testing_time_at(width) / self.min_testing_time
        volume_term = self.data_volume_at(width) / self.min_data_volume
        return alpha * time_term + (1.0 - alpha) * volume_term

    def cost_curve(self, alpha: float) -> List[CostPoint]:
        """The full ``C(W)`` curve for one ``alpha`` (Figure 9(c)/(d))."""
        _check_alpha(alpha)
        return [
            CostPoint(
                width=width,
                testing_time=self.testing_time_at(width),
                data_volume=self.data_volume_at(width),
                cost=self.cost_at(width, alpha),
            )
            for width in self.widths
        ]

    def effective_width(self, alpha: float) -> CostPoint:
        """The width minimising ``C`` for this ``alpha`` (ties: narrowest wins)."""
        curve = self.cost_curve(alpha)
        return min(curve, key=lambda point: (point.cost, point.width))

    def pareto_widths(self) -> List[int]:
        """Widths at which the testing time strictly improves (SOC-level staircase)."""
        result = []
        best: Optional[int] = None
        for width, time in zip(self.widths, self.testing_times):
            if best is None or time < best:
                result.append(width)
                best = time
        return result


def _check_alpha(alpha: float) -> None:
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must lie in [0, 1], got {alpha}")


def normalize_sweep_widths(widths: Sequence[int], monotone: bool = True) -> List[int]:
    """Validate and normalise the width list of a TAM sweep.

    Shared by the serial sweep below and the engine-backed
    :func:`repro.engine.api.parallel_tam_sweep` so the two stay
    bit-compatible.
    """
    if not widths:
        raise ValueError("at least one TAM width is required")
    ordered = [int(w) for w in widths]
    if monotone and ordered != sorted(ordered):
        raise ValueError("monotone sweeps require widths in increasing order")
    return ordered


def build_tam_sweep(
    soc_name: str,
    widths: Sequence[int],
    makespans: Sequence[int],
    monotone: bool = True,
) -> TamSweep:
    """Assemble a :class:`TamSweep` from per-width makespans.

    With ``monotone=True`` the testing-time curve is clamped to its running
    minimum over increasing widths (the Figure 9(a) staircase; see
    :func:`sweep_tam_widths`).
    """
    times: List[int] = []
    for makespan in makespans:
        if monotone and times:
            makespan = min(makespan, times[-1])
        times.append(makespan)
    return TamSweep(
        soc_name=soc_name,
        widths=tuple(widths),
        testing_times=tuple(times),
    )


def sweep_tam_widths(
    soc: Soc,
    widths: Sequence[int],
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    scheduler: Optional[Callable[..., TestSchedule]] = None,
    monotone: bool = True,
) -> TamSweep:
    """Schedule the SOC at every width in ``widths`` and collect T and D.

    By default each width is solved with the paper scheduler through the
    process-wide solver session (:mod:`repro.solvers`), so repeated sweeps
    share Pareto rectangle sets.  ``scheduler`` may be used to swap in a
    different scheduling function (e.g. a baseline); it must accept the same
    signature as :func:`repro.core.scheduler.run_paper_scheduler`.

    With ``monotone=True`` (the default) the testing-time curve is clamped to
    its running minimum over increasing widths: an SOC given ``W`` TAM wires
    can always ignore some of them, so a wider TAM is never allowed to look
    slower just because the packing heuristic had an unlucky run.  This is
    the staircase the paper plots in Figure 9(a).  Pass ``monotone=False`` to
    see the raw heuristic output.
    """
    ordered = normalize_sweep_widths(widths, monotone)
    if scheduler is None:
        # Imported here: repro.solvers depends on this module's types.
        from repro.solvers.request import ScheduleRequest
        from repro.solvers.session import get_default_session

        session = get_default_session()
        makespans = [
            session.solve(
                ScheduleRequest(
                    soc=soc,
                    total_width=width,
                    config=config or SchedulerConfig(),
                    constraints=constraints,
                )
            ).makespan
            for width in ordered
        ]
    else:
        makespans = [
            scheduler(soc, width, constraints=constraints, config=config).makespan
            for width in ordered
        ]
    return build_tam_sweep(soc.name, ordered, makespans, monotone)


def cost_curve(sweep: TamSweep, alpha: float) -> List[CostPoint]:
    """Convenience wrapper around :meth:`TamSweep.cost_curve`."""
    return sweep.cost_curve(alpha)


def effective_width(sweep: TamSweep, alpha: float) -> CostPoint:
    """Convenience wrapper around :meth:`TamSweep.effective_width`."""
    return sweep.effective_width(alpha)

"""The paper's primary contribution: wrapper/TAM co-optimization, constraint-
driven test scheduling and tester data volume reduction.

* :mod:`~repro.core.rectangles` -- Pareto-optimal rectangle sets per core
  (the input to the generalized rectangle-packing problem ``P_rp``).
* :mod:`~repro.core.scheduler` -- the ``TAM_schedule_optimizer`` heuristic
  (paper Figures 4-8) solving Problems 1 and 2: flexible-width TAM
  assignment, precedence/concurrency/power constraints and selective
  preemption.
* :mod:`~repro.core.grid_sweep` -- the deduplicated, pruned, optionally
  parallel best-over-grid sweep behind the ``best`` solver.
* :mod:`~repro.core.lower_bounds` -- the testing-time lower bound used in
  Table 1.
* :mod:`~repro.core.data_volume` -- tester data volume, the normalized cost
  function ``C`` and effective TAM width selection (Problem 3).
"""

from repro.core.rectangles import Rectangle, RectangleSet, build_rectangle_sets
from repro.core.scheduler import (
    MakespanLimitExceeded,
    SchedulerConfig,
    SchedulerError,
    schedule_soc,
    best_schedule,
    run_paper_scheduler,
    run_best_schedule,
)
from repro.core.grid_sweep import (
    GridPoint,
    GridSweepOutcome,
    run_best_schedule_reference,
    run_grid_sweep,
)
from repro.core.lower_bounds import lower_bound, area_lower_bound, bottleneck_lower_bound
from repro.core.data_volume import (
    CostPoint,
    TamSweep,
    cost_curve,
    effective_width,
    sweep_tam_widths,
    tester_data_volume,
)

__all__ = [
    "Rectangle",
    "RectangleSet",
    "build_rectangle_sets",
    "SchedulerConfig",
    "SchedulerError",
    "MakespanLimitExceeded",
    "schedule_soc",
    "best_schedule",
    "run_paper_scheduler",
    "run_best_schedule",
    "GridPoint",
    "GridSweepOutcome",
    "run_grid_sweep",
    "run_best_schedule_reference",
    "lower_bound",
    "area_lower_bound",
    "bottleneck_lower_bound",
    "TamSweep",
    "CostPoint",
    "sweep_tam_widths",
    "tester_data_volume",
    "cost_curve",
    "effective_width",
]

"""Lower bounds on SOC testing time (used in Table 1 of the paper).

Two effects bound the testing time from below:

* **Bottleneck bound** -- no schedule can finish before the slowest core
  finishes, even if that core gets as many TAM wires as it can use:
  ``max_i T_i(min(W, W_max))``.
* **Area bound** -- every core test occupies at least ``A_i = min_w w*T_i(w)``
  TAM wire-cycles, and only ``W`` wires exist, so the schedule length is at
  least ``ceil(sum_i A_i / W)``.

The paper's lower bound is the maximum of the two.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.rectangles import RectangleSet, resolve_rectangle_sets
from repro.soc.soc import Soc
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH


def _rectangles(
    soc: Soc,
    max_core_width: int,
    rectangle_sets: Optional[Dict[str, RectangleSet]],
) -> Dict[str, RectangleSet]:
    return resolve_rectangle_sets(soc, max_core_width, rectangle_sets)


def area_lower_bound(
    soc: Soc,
    total_width: int,
    max_core_width: int = DEFAULT_MAX_WIDTH,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> int:
    """``ceil(sum_i min_w w*T_i(w) / W)`` -- the TAM wire-cycle area bound."""
    if total_width <= 0:
        raise ValueError("total TAM width must be positive")
    sets = _rectangles(soc, max_core_width, rectangle_sets)
    total_area = sum(sets[core.name].min_area for core in soc.cores)
    return math.ceil(total_area / total_width)


def bottleneck_lower_bound(
    soc: Soc,
    total_width: int,
    max_core_width: int = DEFAULT_MAX_WIDTH,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> int:
    """``max_i T_i(min(W, W_max))`` -- the slowest-core bound."""
    if total_width <= 0:
        raise ValueError("total TAM width must be positive")
    sets = _rectangles(soc, max_core_width, rectangle_sets)
    cap = min(total_width, max_core_width)
    return max(sets[core.name].time_at(cap) for core in soc.cores)


def lower_bound(
    soc: Soc,
    total_width: int,
    max_core_width: int = DEFAULT_MAX_WIDTH,
    rectangle_sets: Optional[Dict[str, RectangleSet]] = None,
) -> int:
    """The paper's lower bound: max of the area and bottleneck bounds."""
    sets = _rectangles(soc, max_core_width, rectangle_sets)
    return max(
        area_lower_bound(soc, total_width, max_core_width, sets),
        bottleneck_lower_bound(soc, total_width, max_core_width, sets),
    )

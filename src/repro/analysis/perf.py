"""Perf-trajectory harness: machine-readable timing suites (``repro bench``).

Every PR that touches a hot path should leave a comparable baseline behind.
The three suites here emit JSON reports (``BENCH_<suite>.json``) with

* **per-phase wall time** -- curve construction vs. scheduling, cold vs.
  warm, minimum over ``repeats`` runs so scheduler noise does not swamp the
  signal;
* **cache statistics** -- the wrapper-curve kernel memo
  (:func:`repro.wrapper.curve.curve_cache_info`) and the solver session's
  rectangle cache;
* **schedule makespans and fingerprints for integrity** -- every timing run
  also records what it computed, so a "faster" run that silently changed
  results is caught by :func:`check_golden` against a checked-in golden
  file (CI runs this on every push).

Suites
------
``curves``
    Per-core wrapper-curve construction timings (cold and warm) plus a
    quick ``paper``-solver integrity solve per SOC.
``solve``
    The headline number: a **cold** full pass -- every registered solver x
    SOC x TAM width on a fresh session with an empty curve cache -- split
    into a curve-construction phase and a scheduling phase, plus a warm
    repeat pass.  Also measures the ``best_full`` headline: the full
    default-grid ``best`` sweep on p93791 at W=64, once through the
    deduplicated/pruned grid-sweep subsystem and once through the
    straightforward reference triple loop, reporting the speedup (the two
    must produce bit-identical schedules).
``sweep``
    The Figure 9 ``T(W)`` / ``D(W)`` sweep on the parallel sweep engine
    (serial path), cold and warm -- plus the flattened-executor headline
    phases: ``table1_best`` (the full Table 1 protocol, every cell one
    ``best`` job) and ``table2_best`` (the Table 2 width sweep with the
    ``best`` solver per width), each measured cold at ``workers=0`` and
    ``workers=4`` with the results asserted identical across worker
    counts and recorded for the golden check.
``scale``
    The committed scaling curve of the zero-copy payload plane: one
    trimmed ``best`` sweep per SOC -- the ITC'02 pair {d695, p93791} plus
    the deterministic synthetic 100- and 1000-core generator SOCs
    (``s100``/``s1000``) -- measured cold at ``workers=0`` (the serial
    reference) and at every count in ``--workers``.  Each parallel run's
    schedule fingerprint is asserted identical to the serial reference
    and the report records speedup, per-task serialized dispatch bytes
    before/after the shared-memory plane, shared-memory task share and
    mid-run board-abort counts.  ``cpus`` pins the host's core count so a
    1-CPU runner's (necessarily flat) speedups are never mistaken for a
    multi-core measurement.
``serve``
    The scheduling service under load: a burst of ``paper``-solver
    requests (with deliberate duplicates) driven through an in-process
    :class:`~repro.service.supervisor.Supervisor`, reporting throughput,
    submit-to-result latency percentiles, peak queue depth (the
    backpressure signal) and dedup/coalescing hit counts.  Every unique
    request's served result is recorded under the usual
    ``{soc}/paper/{width}`` golden keys, so a faster service that serves
    different schedules is caught like any other perf regression.

The standalone entry point ``benchmarks/harness.py`` and the ``repro bench``
CLI subcommand are thin wrappers over :func:`run_suite`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.grid_sweep import run_best_schedule_reference, run_grid_sweep
from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import TestSchedule
from repro.soc.benchmarks import get_benchmark
from repro.solvers import ScheduleRequest, Session
from repro.wrapper.curve import clear_curve_cache, curve_cache_info, wrapper_curve

SUITES = ("curves", "solve", "sweep", "scale", "serve")

#: SOCs and TAM widths of the ``solve`` suite's cold full pass (the full
#: registered ITC'02 set since PR 4).
SOLVE_SOCS: Tuple[str, ...] = ("d695", "p93791", "p22810", "p34392")
SOLVE_WIDTHS: Tuple[int, ...] = (16, 32, 64)

#: The headline measurement: a full default-grid ``best`` sweep, cold.
BEST_FULL_SOC = "p93791"
BEST_FULL_WIDTH = 64

#: Trimmed grid for the "best" solver so one pass stays CI-sized (same
#: trim as benchmarks/bench_solver_matrix.py).
SOLVE_OPTIONS: Dict[str, Dict[str, Any]] = {
    "best": {"percents": (1, 25), "deltas": (0,), "slacks": (3, 6)}
}

DEFAULT_MAX_WIDTH = 64


def schedule_fingerprint(schedule: Optional[TestSchedule]) -> Optional[str]:
    """Order-sensitive SHA-256 of a schedule's segments.

    Two schedules fingerprint equal iff they are bit-identical (same
    segments, same order, same widths); used to pin "faster" against
    "still computes the same thing".
    """
    if schedule is None:
        return None
    payload = repr(
        [(s.core, s.start, s.end, s.width) for s in schedule.segments]
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def cold_reset() -> None:
    """Drop every per-process wrapper cache for a deterministic cold start.

    Clears the curve kernel memo, the reference BFD memos, the
    process-wide default solver session's rectangle cache (the sweep
    engine solves through that session, and its cached ``RectangleSet``
    objects embed already-built curves, so leaving it warm would let a
    "cold" run skip all wrapper-design work) *and* the flat executor's
    persistent worker pool, so parallel measurements pay their pool
    spin-up like a fresh process would.
    """
    import repro.wrapper.design_wrapper  # noqa: F401  (module, not the function)
    from repro.engine.executor import close_default_executor
    from repro.solvers.session import get_default_session

    reference = sys.modules["repro.wrapper.design_wrapper"]
    clear_curve_cache()
    reference._scan_lengths_cached.cache_clear()
    reference._best_width_upto.cache_clear()
    get_default_session().clear_cache()
    close_default_executor()


def _meta(suite: str) -> Dict[str, Any]:
    return {
        "suite": suite,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "schema_version": 1,
    }


def _cache_stats(session: Optional[Session] = None) -> Dict[str, Any]:
    info = curve_cache_info()
    stats: Dict[str, Any] = {
        "curve": {
            "hits": info.hits,
            "misses": info.misses,
            "cores": info.cores,
            "widths_computed": info.widths_computed,
        }
    }
    if session is not None:
        session_info = session.cache_info()
        stats["session"] = {
            "hits": session_info.hits,
            "misses": session_info.misses,
            "entries": session_info.entries,
        }
    return stats


def _integrity_solves(
    session: Session, soc_names: Sequence[str], widths: Sequence[int]
) -> Tuple[Dict[str, int], Dict[str, str]]:
    """``paper``-solver makespans/fingerprints used for golden comparisons."""
    makespans: Dict[str, int] = {}
    fingerprints: Dict[str, str] = {}
    for soc_name in soc_names:
        soc = get_benchmark(soc_name)
        for width in widths:
            result = session.solve(
                ScheduleRequest(soc=soc, total_width=width, solver="paper")
            )
            key = f"{soc_name}/paper/{width}"
            makespans[key] = result.makespan
            fingerprints[key] = schedule_fingerprint(result.schedule)
    return makespans, fingerprints


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def run_curves_suite(
    soc_names: Sequence[str] = ("d695",),
    max_width: int = DEFAULT_MAX_WIDTH,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Per-core wrapper-curve construction timings, cold and warm."""
    cores_report: List[Dict[str, Any]] = []
    cold_totals: Dict[str, float] = {}
    warm_totals: Dict[str, float] = {}
    for soc_name in soc_names:
        soc = get_benchmark(soc_name)
        best_cold: Dict[str, float] = {}
        for _ in range(max(1, repeats)):
            cold_reset()
            for core in soc.cores:
                started = time.perf_counter()
                wrapper_curve(core, max_width)
                elapsed = time.perf_counter() - started
                if core.name not in best_cold or elapsed < best_cold[core.name]:
                    best_cold[core.name] = elapsed
        warm_total = 0.0
        for core in soc.cores:
            started = time.perf_counter()
            curve = wrapper_curve(core, max_width)
            warm = time.perf_counter() - started
            warm_total += warm
            cores_report.append(
                {
                    "soc": soc_name,
                    "core": core.name,
                    "cold_seconds": best_cold[core.name],
                    "warm_seconds": warm,
                    "pareto_points": len(curve.pareto_widths),
                    "max_pareto_width": curve.max_pareto_width,
                    "min_time": curve.min_time,
                }
            )
        cold_totals[soc_name] = sum(best_cold.values())
        warm_totals[soc_name] = warm_total
    session = Session()
    makespans, fingerprints = _integrity_solves(session, soc_names, SOLVE_WIDTHS)
    return {
        **_meta("curves"),
        "socs": list(soc_names),
        "max_width": max_width,
        "repeats": repeats,
        "phases": {
            "curve_cold_seconds": cold_totals,
            "curve_warm_seconds": warm_totals,
        },
        "cores": cores_report,
        "cache": _cache_stats(session),
        "makespans": makespans,
        "fingerprints": fingerprints,
    }


def _solve_pass(
    session: Session, soc_names: Sequence[str], widths: Sequence[int]
) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """One full solver x SOC x width pass; returns (cells, phase timings)."""
    cells: Dict[str, Any] = {}
    curve_seconds = 0.0
    solve_seconds = 0.0
    for soc_name in soc_names:
        soc = get_benchmark(soc_name)
        started = time.perf_counter()
        session.rectangle_sets(soc, DEFAULT_MAX_WIDTH)
        curve_seconds += time.perf_counter() - started
        for solver in session.solvers():
            options = SOLVE_OPTIONS.get(solver, {})
            for width in widths:
                key = f"{soc_name}/{solver}/{width}"
                started = time.perf_counter()
                try:
                    result = session.solve(
                        ScheduleRequest(
                            soc=soc,
                            total_width=width,
                            solver=solver,
                            options=options,
                        )
                    )
                    cells[key] = {
                        "makespan": result.makespan,
                        "fingerprint": schedule_fingerprint(result.schedule),
                    }
                except ValueError as error:  # solver refusals are contractual
                    cells[key] = {"refused": str(error)}
                solve_seconds += time.perf_counter() - started
    return cells, {"curves": curve_seconds, "solve": solve_seconds}


def _best_full_measurement(repeats: int) -> Dict[str, Any]:
    """Cold full-grid ``best`` sweep on p93791/W=64: optimized vs reference.

    Both paths run on freshly reset caches with pre-built rectangle sets
    (so the number isolates grid-sweep work from curve construction, like
    the matrix's ``solve`` phase).  The reference is the straightforward
    serial triple loop over the full grid with the pre-PR4 re-scanning
    ``_select_candidate`` -- the PR 3 execution strategy -- and must
    produce a bit-identical schedule.
    """
    soc = get_benchmark(BEST_FULL_SOC)
    reference_config = SchedulerConfig(use_candidate_heaps=False)
    optimized_best: Optional[float] = None
    reference_best: Optional[float] = None
    outcome = None
    reference_schedule = None
    for _ in range(max(1, repeats)):
        cold_reset()
        session = Session()
        sets = session.rectangle_sets(soc, DEFAULT_MAX_WIDTH)
        started = time.perf_counter()
        outcome = run_grid_sweep(soc, BEST_FULL_WIDTH, rectangle_sets=sets)
        elapsed = time.perf_counter() - started
        optimized_best = elapsed if optimized_best is None else min(optimized_best, elapsed)

        cold_reset()
        session = Session()
        sets = session.rectangle_sets(soc, DEFAULT_MAX_WIDTH)
        started = time.perf_counter()
        reference_schedule, _ = run_best_schedule_reference(
            soc, BEST_FULL_WIDTH, rectangle_sets=sets, config=reference_config
        )
        elapsed = time.perf_counter() - started
        reference_best = elapsed if reference_best is None else min(reference_best, elapsed)
    assert outcome is not None and reference_schedule is not None
    if schedule_fingerprint(reference_schedule) != schedule_fingerprint(outcome.schedule):
        raise AssertionError(
            "grid sweep and reference best solver produced different schedules"
        )
    key = f"{BEST_FULL_SOC}/best-full/{BEST_FULL_WIDTH}"
    return {
        "phases": {
            "reference_seconds": reference_best,
            "optimized_seconds": optimized_best,
            "speedup": reference_best / optimized_best if optimized_best else 0.0,
        },
        "makespans": {key: outcome.makespan},
        "fingerprints": {key: schedule_fingerprint(outcome.schedule)},
        "sweep": outcome.metadata(),
    }


def run_solve_suite(
    soc_names: Sequence[str] = SOLVE_SOCS,
    widths: Sequence[int] = SOLVE_WIDTHS,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Cold full pass over every registered solver, plus a warm repeat."""
    cells: Optional[Dict[str, Any]] = None
    cold_runs: List[Dict[str, float]] = []
    warm_runs: List[Dict[str, float]] = []
    session: Optional[Session] = None
    for _ in range(max(1, repeats)):
        cold_reset()
        session = Session()
        pass_cells, cold_phases = _solve_pass(session, soc_names, widths)
        warm_cells, warm_phases = _solve_pass(session, soc_names, widths)
        if cells is not None and pass_cells != cells:
            raise AssertionError("solve suite is non-deterministic across runs")
        if pass_cells != warm_cells:
            raise AssertionError("warm pass changed solver results")
        cells = pass_cells
        cold_runs.append(cold_phases)
        warm_runs.append(warm_phases)

    def best(runs: List[Dict[str, float]]) -> Dict[str, float]:
        total = min(sum(run.values()) for run in runs)
        keys = runs[0].keys()
        return {
            **{key: min(run[key] for run in runs) for key in keys},
            "total": total,
        }

    assert cells is not None and session is not None
    makespans = {
        key: cell["makespan"] for key, cell in cells.items() if "makespan" in cell
    }
    fingerprints = {
        key: cell["fingerprint"]
        for key, cell in cells.items()
        if cell.get("fingerprint")
    }
    refusals = {
        key: cell["refused"] for key, cell in cells.items() if "refused" in cell
    }
    # Snapshot the matrix's cache statistics before the best_full phase
    # (whose cold resets would otherwise clobber the process-wide curve
    # cache the report describes).
    cache_stats = _cache_stats(session)
    best_full = _best_full_measurement(repeats)
    makespans.update(best_full["makespans"])
    fingerprints.update(best_full["fingerprints"])
    return {
        **_meta("solve"),
        "socs": list(soc_names),
        "widths": list(widths),
        "repeats": repeats,
        "solver_options": {k: {n: list(v) for n, v in o.items()} for k, o in SOLVE_OPTIONS.items()},
        "phases": {
            "cold": best(cold_runs),
            "warm": best(warm_runs),
            "best_full": best_full["phases"],
        },
        "best_full_sweep": best_full["sweep"],
        "cache": cache_stats,
        "makespans": makespans,
        "fingerprints": fingerprints,
        "refusals": refusals,
    }


#: Worker count of the sweep suite's flattened-executor table phases (the
#: acceptance configuration of the flat-executor PR).
TABLE_WORKERS = 4


def _timed_cold(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """Min-of-``repeats`` cold wall time of ``fn()`` plus its last result."""
    best: Optional[float] = None
    value = None
    for _ in range(max(1, repeats)):
        cold_reset()
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    cold_reset()  # do not leak a warm pool into the next measurement
    assert best is not None  # range(max(1, repeats)) ran at least once
    return best, value


def _table_best_measurements(
    soc_name: str, repeats: int
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, int]]:
    """The flattened-executor headline: Tables 1 and 2 with the best solver.

    Each phase is measured cold (empty caches, no pool) at ``workers=0``
    and ``workers=TABLE_WORKERS``; the row values / sweep curves must be
    identical across worker counts (the executor's bit-identity contract)
    and are recorded for the golden check.
    """
    import warnings as warnings_module

    from repro.analysis.experiments import TABLE2_WIDTHS, run_table1
    from repro.engine.api import parallel_tam_sweep

    soc = get_benchmark(soc_name)
    phases: Dict[str, Dict[str, Any]] = {}
    makespans: Dict[str, int] = {}

    def timed_flat(fn: Callable[[], Any]) -> Tuple[float, Any, bool]:
        """Cold-time a parallel run, recording whether it degraded.

        Without the marker a pool-less sandbox would silently label a
        serial measurement ``flat_seconds`` and the report would claim a
        parallel-vs-serial comparison that never happened.
        """
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always", RuntimeWarning)
            seconds, value = _timed_cold(fn, repeats)
        degraded = any(
            "degrading to the serial" in str(entry.message) for entry in caught
        )
        return seconds, value, degraded

    serial_seconds, serial_rows = _timed_cold(
        lambda: run_table1(soc, workers=0), repeats
    )
    flat_seconds, flat_rows, degraded = timed_flat(
        lambda: run_table1(soc, workers=TABLE_WORKERS)
    )
    if flat_rows != serial_rows:
        raise AssertionError("table1_best rows differ across worker counts")
    phases[f"table1_best/{soc_name}"] = {
        "serial_seconds": serial_seconds,
        "flat_seconds": flat_seconds,
        "workers": TABLE_WORKERS,
        "degraded_to_serial": degraded,
    }
    for row in serial_rows:
        makespans[f"{soc_name}/table1/{row.width}/lower_bound"] = row.lower_bound
        makespans[f"{soc_name}/table1/{row.width}/non_preemptive"] = row.non_preemptive
        makespans[f"{soc_name}/table1/{row.width}/preemptive"] = row.preemptive
        makespans[
            f"{soc_name}/table1/{row.width}/power_constrained"
        ] = row.power_constrained

    serial_seconds, serial_sweep = _timed_cold(
        lambda: parallel_tam_sweep(soc, TABLE2_WIDTHS, workers=0, solver="best"),
        repeats,
    )
    flat_seconds, flat_sweep, degraded = timed_flat(
        lambda: parallel_tam_sweep(
            soc, TABLE2_WIDTHS, workers=TABLE_WORKERS, solver="best"
        )
    )
    if flat_sweep != serial_sweep:
        raise AssertionError("table2_best sweep differs across worker counts")
    phases[f"table2_best/{soc_name}"] = {
        "serial_seconds": serial_seconds,
        "flat_seconds": flat_seconds,
        "workers": TABLE_WORKERS,
        "degraded_to_serial": degraded,
    }
    for width, testing_time in zip(serial_sweep.widths, serial_sweep.testing_times):
        makespans[f"{soc_name}/table2_best/{width}"] = testing_time
    return phases, makespans


def run_sweep_suite(
    soc_names: Sequence[str] = ("d695",),
    min_width: int = 4,
    max_width: int = 80,
    step: int = 2,
    repeats: int = 2,
) -> Dict[str, Any]:
    """The Figure 9 ``T(W)``/``D(W)`` sweep plus the flat-executor tables.

    The classic cold/warm Figure 9 measurement (serial engine) is followed
    by the ``table1_best``/``table2_best`` phases: the full Table 1 and
    Table 2 protocols with the ``best`` solver, serial vs. the flattened
    executor at ``workers=4``, results asserted identical and recorded in
    the report's makespans for ``--check-golden``.
    """
    from repro.engine.api import parallel_tam_sweep

    widths = tuple(range(min_width, max_width + 1, step))
    timings: Dict[str, Dict[str, Any]] = {}
    makespans: Dict[str, int] = {}
    for soc_name in soc_names:
        soc = get_benchmark(soc_name)
        cold_best: Optional[float] = None
        sweep = None
        for _ in range(max(1, repeats)):
            cold_reset()
            started = time.perf_counter()
            sweep = parallel_tam_sweep(soc, widths, workers=0)
            elapsed = time.perf_counter() - started
            cold_best = elapsed if cold_best is None else min(cold_best, elapsed)
        started = time.perf_counter()
        warm_sweep = parallel_tam_sweep(soc, widths, workers=0)
        warm = time.perf_counter() - started
        assert sweep is not None
        if tuple(warm_sweep.testing_times) != tuple(sweep.testing_times):
            raise AssertionError("warm sweep changed results")
        timings[soc_name] = {"cold_seconds": cold_best, "warm_seconds": warm}
        for width, testing_time in zip(sweep.widths, sweep.testing_times):
            makespans[f"{soc_name}/sweep/{width}"] = testing_time
    for soc_name in soc_names:
        table_phases, table_makespans = _table_best_measurements(soc_name, repeats)
        timings.update(table_phases)
        makespans.update(table_makespans)
    return {
        **_meta("sweep"),
        "socs": list(soc_names),
        "widths": list(widths),
        "repeats": repeats,
        "table_workers": TABLE_WORKERS,
        "phases": timings,
        "cache": _cache_stats(),
        "makespans": makespans,
    }


#: Worker counts the scale suite sweeps by default (``0`` -- the serial
#: reference -- is always measured in addition).
SCALE_WORKERS: Tuple[int, ...] = (1, 2, 4)

#: SOCs of the scale suite: the ITC'02 pair the paper evaluates plus two
#: deterministic synthetic generator SOCs sized to stress the payload
#: plane (a 1000-core SOC pickles an ~8 KB preferred-width vector per
#: fat task, so the slim/fat byte ratio is the headline there).
SCALE_SOCS: Tuple[str, ...] = ("d695", "p93791", "s100", "s1000")

#: Synthetic scale SOCs: ``name -> (generator seed, core count)``.  These
#: are resolved here rather than registered as benchmarks -- the benchmark
#: registry is the paper's evaluation set, not a grab-bag of fixtures.
SCALE_SYNTHETIC: Dict[str, Tuple[int, int]] = {
    "s100": (1002, 100),
    "s1000": (1003, 1000),
}

#: Per-SOC TAM width of the scale measurement (default 64).
SCALE_WIDTHS: Dict[str, int] = {"d695": 32}
SCALE_DEFAULT_WIDTH = 64

#: Trimmed grid so one scale cell stays CI-sized (8 runs per sweep); the
#: same trim as the solve suite's ``best`` matrix cell.
SCALE_OPTIONS: Dict[str, Any] = {
    "percents": (1, 25),
    "deltas": (0,),
    "slacks": (3, 6),
}


def scale_soc(name: str):
    """Resolve a scale-suite SOC: benchmark name or synthetic ``s<cores>``."""
    spec = SCALE_SYNTHETIC.get(name)
    if spec is None:
        return get_benchmark(name)
    seed, cores = spec
    from repro.soc.generator import GeneratorProfile, generate_soc

    return generate_soc(
        seed, name=name, profile=GeneratorProfile(min_cores=cores, max_cores=cores)
    )


def run_scale_suite(
    soc_names: Optional[Sequence[str]] = None,
    workers: Sequence[int] = SCALE_WORKERS,
    repeats: int = 2,
) -> Dict[str, Any]:
    """Worker-count scaling of the shm payload plane, byte-identity checked.

    Every measured configuration is cold (empty caches, no pool); the
    serial reference's makespan/fingerprint go into the golden sections
    under ``{soc}/scale/{width}`` keys and every parallel configuration
    must fingerprint identically.  Per-worker-count entries record wall
    time, speedup over serial, and the payload-plane counters off
    :class:`~repro.engine.results.ExecutorStats`: per-task serialized
    bytes with the shm plane (``payload_bytes_per_task``) vs. without
    (``pickled_bytes_per_task``), their ratio (``payload_shrink``), the
    share of pool dispatches that travelled slim (``shm_task_share``) and
    the mid-run ``board_aborts``.
    """
    from repro.engine.executor import get_default_executor
    from repro.solvers.session import get_default_session

    names = tuple(soc_names or SCALE_SOCS)
    counts = tuple(int(count) for count in workers)
    if any(count < 1 for count in counts):
        raise ValueError("scale-suite worker counts must be >= 1")
    phases: Dict[str, Dict[str, Any]] = {}
    makespans: Dict[str, int] = {}
    fingerprints: Dict[str, str] = {}
    for soc_name in names:
        soc = scale_soc(soc_name)
        width = SCALE_WIDTHS.get(soc_name, SCALE_DEFAULT_WIDTH)

        def solve(count: int):
            return get_default_session().solve(
                ScheduleRequest(
                    soc=soc,
                    total_width=width,
                    solver="best",
                    options={**SCALE_OPTIONS, "workers": count},
                )
            )

        serial_seconds, serial = _timed_cold(lambda: solve(0), repeats)
        key = f"{soc_name}/scale/{width}"
        makespans[key] = serial.makespan
        fingerprints[key] = schedule_fingerprint(serial.schedule)
        reference_print = fingerprints[key]
        phases[f"scale/{soc_name}/serial"] = {"seconds": serial_seconds}
        for count in counts:
            seconds, result = _timed_cold(lambda: solve(count), repeats)
            if schedule_fingerprint(result.schedule) != reference_print:
                raise AssertionError(
                    f"scale suite: {soc_name} workers={count} changed the "
                    "schedule vs the serial reference"
                )
            entry: Dict[str, Any] = {
                "seconds": seconds,
                "speedup": serial_seconds / seconds if seconds else 0.0,
                "workers": count,
            }
            stats = get_default_executor().last_stats if count >= 2 else None
            if stats is not None and stats.shm_tasks:
                # payload_bytes counts slim dispatches; adding the saved
                # bytes back reconstructs what the same dispatches would
                # have pickled without the shm plane.
                slim = stats.payload_bytes / stats.shm_tasks
                pickled = (
                    stats.payload_bytes + stats.shm_bytes_saved
                ) / stats.shm_tasks
                entry.update(
                    {
                        "board_aborts": stats.board_aborts,
                        "payload_bytes": stats.payload_bytes,
                        "shm_bytes_saved": stats.shm_bytes_saved,
                        "payload_bytes_per_task": int(round(slim)),
                        "pickled_bytes_per_task": int(round(pickled)),
                        "payload_shrink": round(pickled / slim, 2) if slim else 0.0,
                        "shm_task_share": round(stats.shm_tasks / stats.tasks, 3)
                        if stats.tasks
                        else 0.0,
                    }
                )
            phases[f"scale/{soc_name}/w{count}"] = entry
    return {
        **_meta("scale"),
        "socs": list(names),
        "workers": list(counts),
        "repeats": repeats,
        "cpus": os.cpu_count(),
        "grid": {name: list(value) for name, value in SCALE_OPTIONS.items()},
        "phases": phases,
        "cache": _cache_stats(),
        "makespans": makespans,
        "fingerprints": fingerprints,
    }


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    index = int(round(quantile * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_serve_suite(
    soc_names: Optional[Sequence[str]] = None,
    widths: Sequence[int] = SOLVE_WIDTHS,
    duplicates: int = 3,
) -> Dict[str, Any]:
    """Throughput/latency/queue-depth of the scheduling service under load.

    Submits ``duplicates`` identically-fingerprinted ``paper`` requests
    per (SOC, width) cell in one burst through an in-process supervisor
    (two worker threads, serial solves), then drains.  The duplicate
    traffic is the point: one copy solves fresh, the rest must be served
    by in-flight coalescing or the dedup cache, and the report records
    how many were.  Latency is submit-to-result per request; integrity
    comes from the served schedules under ``{soc}/paper/{width}`` keys.
    """
    import threading

    from repro.service.supervisor import ServiceConfig, Supervisor
    from repro.solvers import ScheduleResult

    names = tuple(soc_names or ("d695",))
    cells = [(soc_name, int(width)) for soc_name in names for width in widths]
    if duplicates < 1:
        raise ValueError(f"duplicates must be >= 1, got {duplicates}")
    total_requests = len(cells) * duplicates

    cold_reset()
    supervisor = Supervisor(
        config=ServiceConfig(
            max_inflight=2, queue_limit=max(total_requests, 1), workers=0
        )
    )
    lock = threading.Lock()
    submit_times: Dict[str, float] = {}
    done_times: Dict[str, float] = {}
    results: Dict[str, Dict[str, Any]] = {}

    def reply(message: Dict[str, Any]) -> None:
        if message.get("event") != "result":
            return
        now = time.perf_counter()
        with lock:
            done_times[message["id"]] = now
            results[message["id"]] = dict(message["result"])

    supervisor.start()
    try:
        started = time.perf_counter()
        for soc_name, width in cells:
            request = ScheduleRequest(
                soc=get_benchmark(soc_name), total_width=width, solver="paper"
            )
            for copy in range(duplicates):
                request_id = f"{soc_name}/w{width}/{copy}"
                submit_times[request_id] = time.perf_counter()
                supervisor.submit(request_id, request, reply)
        drained = supervisor.drain(timeout=600.0)
        total_seconds = time.perf_counter() - started
        stats = supervisor.stats()
    finally:
        supervisor.close()
    if not drained:
        raise AssertionError("serve suite: the supervisor did not drain")
    if len(results) != total_requests:
        raise AssertionError(
            f"serve suite: submitted {total_requests} requests but "
            f"{len(results)} results came back"
        )

    latencies = sorted(
        done_times[request_id] - submit_times[request_id]
        for request_id in done_times
    )
    makespans: Dict[str, int] = {}
    fingerprints: Dict[str, str] = {}
    for soc_name, width in cells:
        served = ScheduleResult.from_dict(results[f"{soc_name}/w{width}/0"])
        key = f"{soc_name}/paper/{width}"
        makespans[key] = served.makespan
        fingerprints[key] = schedule_fingerprint(served.schedule)
    phases: Dict[str, Dict[str, Any]] = {
        "serve/total": {
            "seconds": total_seconds,
            "requests": total_requests,
            "throughput_rps": (
                total_requests / total_seconds if total_seconds else 0.0
            ),
        },
        "serve/latency": {
            "p50_seconds": _percentile(latencies, 0.50),
            "p90_seconds": _percentile(latencies, 0.90),
            "max_seconds": latencies[-1] if latencies else 0.0,
        },
        "serve/queue": {
            "max_queue_depth": stats.get("max_queue_depth", 0),
            "queue_limit": stats.get("queue_limit", 0),
        },
        "serve/dedup": {
            "fresh": stats.get("completed", 0)
            - stats.get("dedup_cached", 0)
            - stats.get("dedup_coalesced", 0),
            "coalesced": stats.get("dedup_coalesced", 0),
            "cached": stats.get("dedup_cached", 0),
        },
    }
    return {
        **_meta("serve"),
        "socs": list(names),
        "widths": [int(width) for width in widths],
        "duplicates": duplicates,
        "phases": phases,
        "cache": _cache_stats(),
        "makespans": makespans,
        "fingerprints": fingerprints,
    }


def run_suite(
    suite: str, soc_names: Optional[Sequence[str]] = None, **kwargs: Any
) -> Dict[str, Any]:
    """Dispatch one named suite (``curves``, ``solve``, ``sweep``, ``scale``,
    ``serve``)."""
    if suite == "curves":
        return run_curves_suite(soc_names or ("d695",), **kwargs)
    if suite == "solve":
        return run_solve_suite(soc_names or SOLVE_SOCS, **kwargs)
    if suite == "sweep":
        return run_sweep_suite(soc_names or ("d695",), **kwargs)
    if suite == "scale":
        return run_scale_suite(soc_names or SCALE_SOCS, **kwargs)
    if suite == "serve":
        return run_serve_suite(soc_names or ("d695",), **kwargs)
    raise ValueError(f"unknown suite {suite!r}; choose from {SUITES}")


# ----------------------------------------------------------------------
# Golden comparisons and report IO
# ----------------------------------------------------------------------
def check_golden(report: Mapping[str, Any], golden: Mapping[str, Any]) -> List[str]:
    """Compare a report's integrity values against a golden file.

    Only keys present in *both* the report and the golden data are
    compared (so a d695-only CI run checks against a golden file that also
    covers p93791).  Returns a list of human-readable drift descriptions;
    empty means everything matches.
    """
    drifts: List[str] = []
    compared = 0
    for section in ("makespans", "fingerprints"):
        want = golden.get(section, {})
        have = report.get(section, {})
        for key in sorted(set(want) & set(have)):
            compared += 1
            if want[key] != have[key]:
                drifts.append(
                    f"{section[:-1]} drift at {key}: "
                    f"golden {want[key]!r} != measured {have[key]!r}"
                )
    if compared == 0:
        # A gate that compares nothing must fail loudly, not pass silently
        # -- this catches empty golden files and report/golden key-format
        # divergence (e.g. a renamed solver) alike.
        drifts.append(
            "golden check compared zero values: no overlap between the "
            "report's and the golden file's makespans/fingerprints keys"
        )
    return drifts


def write_report(report: Mapping[str, Any], path: str) -> None:
    """Write one suite report as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a suite report (or golden file) from JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def summarize(report: Mapping[str, Any]) -> str:
    """Human-readable one-screen summary of a suite report."""
    lines = [f"suite      : {report.get('suite')}"]
    lines.append(f"socs       : {', '.join(report.get('socs', ()))}")
    phases = report.get("phases", {})
    for name, value in phases.items():
        if isinstance(value, Mapping):

            def render(key: str, entry: Any) -> str:
                if not isinstance(entry, float):
                    return f"{key}={entry}"
                if key in ("speedup", "payload_shrink"):
                    return f"{key}={entry:.2f}x"
                if key == "shm_task_share":
                    return f"{key}={entry:.3f}"
                return f"{key}={entry:.4f}s"

            rendered = ", ".join(render(key, entry) for key, entry in value.items())
            lines.append(f"{name:<11}: {rendered}")
        else:
            lines.append(f"{name:<11}: {value:.4f}s")
    cache = report.get("cache", {})
    curve = cache.get("curve")
    if curve:
        lines.append(
            "curve cache: "
            f"{curve['hits']} hits, {curve['misses']} misses, "
            f"{curve['cores']} cores, {curve['widths_computed']} widths"
        )
    session = cache.get("session")
    if session:
        lines.append(
            "session    : "
            f"{session['hits']} hits, {session['misses']} misses, "
            f"{session['entries']} entries"
        )
    makespans = report.get("makespans", {})
    if makespans:
        lines.append(f"makespans  : {len(makespans)} recorded")
    refusals = report.get("refusals", {})
    for key, reason in sorted(refusals.items()):
        lines.append(f"refused    : {key}: {reason}")
    return "\n".join(lines)

"""Experiment drivers and reporting for the paper's tables and figures.

* :mod:`~repro.analysis.experiments` -- functions that regenerate each table
  and figure of the paper's evaluation section (Table 1, Table 2, Figure 1,
  Figure 9) plus the ablations listed in DESIGN.md.
* :mod:`~repro.analysis.reporting` -- plain-text table formatting shared by
  the CLI, the examples and the benchmark harness.
"""

from repro.analysis.experiments import (
    Table1Row,
    Table2Row,
    figure1_staircase,
    figure9_curves,
    run_table1,
    run_table2,
)
from repro.analysis.reporting import (
    format_figure_series,
    format_table,
    table1_to_text,
    table2_to_text,
)
from repro.analysis.multisite import (
    MultisitePoint,
    TesterModel,
    best_multisite_width,
    evaluate_multisite,
    multisite_curve,
)
from repro.analysis.export import (
    save_csv,
    series_to_csv,
    sweep_to_csv,
    table1_to_csv,
    table2_to_csv,
)

__all__ = [
    "Table1Row",
    "Table2Row",
    "run_table1",
    "run_table2",
    "figure1_staircase",
    "figure9_curves",
    "format_table",
    "table1_to_text",
    "table2_to_text",
    "format_figure_series",
    "TesterModel",
    "MultisitePoint",
    "evaluate_multisite",
    "best_multisite_width",
    "multisite_curve",
    "table1_to_csv",
    "table2_to_csv",
    "sweep_to_csv",
    "series_to_csv",
    "save_csv",
]

"""CSV export of experiment results.

The benchmark harness writes aligned plain-text tables; downstream users who
want to re-plot the paper's figures with their own tooling usually prefer
CSV.  These helpers serialise the library's result objects (Table 1/2 rows,
TAM sweeps, figure series) without any third-party dependency.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable, Sequence, Tuple, Union

from repro.analysis.experiments import Table1Row, Table2Row
from repro.core.data_volume import TamSweep

Number = Union[int, float]


def _write_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def table1_to_csv(rows: Sequence[Table1Row]) -> str:
    """Serialise Table 1 rows to CSV text."""
    headers = (
        "soc",
        "tam_width",
        "lower_bound",
        "non_preemptive",
        "preemptive",
        "power_constrained",
    )
    return _write_csv(
        headers,
        (
            (
                row.soc,
                row.width,
                row.lower_bound,
                row.non_preemptive,
                row.preemptive,
                row.power_constrained,
            )
            for row in rows
        ),
    )


def table2_to_csv(rows: Sequence[Table2Row]) -> str:
    """Serialise Table 2 rows to CSV text."""
    headers = (
        "soc",
        "alpha",
        "min_testing_time",
        "width_of_min_time",
        "min_data_volume",
        "width_of_min_volume",
        "min_cost",
        "effective_width",
        "testing_time_at_effective",
        "data_volume_at_effective",
    )
    return _write_csv(
        headers,
        (
            (
                row.soc,
                row.alpha,
                row.min_testing_time,
                row.width_of_min_time,
                row.min_data_volume,
                row.width_of_min_volume,
                row.min_cost,
                row.effective_width,
                row.testing_time_at_effective,
                row.data_volume_at_effective,
            )
            for row in rows
        ),
    )


def sweep_to_csv(sweep: TamSweep, alphas: Sequence[float] = ()) -> str:
    """Serialise a TAM sweep (and optional cost columns) to CSV text."""
    headers = ["tam_width", "testing_time", "data_volume"]
    headers.extend(f"cost_alpha_{alpha}" for alpha in alphas)
    rows = []
    for width, time, volume in zip(sweep.widths, sweep.testing_times, sweep.data_volumes):
        row: list = [width, time, volume]
        row.extend(sweep.cost_at(width, alpha) for alpha in alphas)
        rows.append(row)
    return _write_csv(headers, rows)


def series_to_csv(
    series: Sequence[Tuple[Number, Number]], x_label: str = "x", y_label: str = "y"
) -> str:
    """Serialise an (x, y) figure series to CSV text."""
    return _write_csv((x_label, y_label), series)


def save_csv(text: str, path: Union[str, os.PathLike]) -> None:
    """Write CSV text to a file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)

"""Drivers that regenerate the paper's tables and figures.

Every public function here corresponds to one experiment of the paper's
evaluation section (see the per-experiment index in DESIGN.md):

* :func:`run_table1`  -- Table 1: lower bound, non-preemptive, preemptive and
  power-constrained testing times per SOC and TAM width.
* :func:`run_table2`  -- Table 2: minimum testing time / data volume and
  effective TAM widths for several values of ``alpha``.
* :func:`figure1_staircase` -- Figure 1: testing time vs. TAM width for one
  core (Core 6 of p93791 in the paper).
* :func:`figure9_curves` -- Figure 9: SOC-level ``T(W)``, ``D(W)`` and the
  cost curves ``C(W)`` for chosen ``alpha`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.data_volume import TamSweep, sweep_tam_widths
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import SchedulerConfig, best_schedule
from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH, testing_time_curve

# The TAM widths Table 1 evaluates for each SOC.
TABLE1_WIDTHS: Dict[str, Tuple[int, ...]] = {
    "d695": (16, 32, 48, 64),
    "p22810": (16, 32, 48, 64),
    "p34392": (16, 24, 28, 32),
    "p93791": (16, 32, 48, 64),
}

# The alpha values Table 2 reports for each SOC.
TABLE2_ALPHAS: Dict[str, Tuple[float, ...]] = {
    "d695": (0.1, 0.3, 0.5),
    "p22810": (0.01, 0.3, 0.5),
    "p34392": (0.2, 0.25, 0.3),
    "p93791": (0.5, 0.95, 0.99),
}

# Preemption limit used for the "larger cores" in the preemptive experiments.
PREEMPTION_LIMIT = 2

# Power budget = factor * max per-core test power (the paper's P_max is
# defined relative to the per-core power values; see DESIGN.md section 5).
# A factor just above 1.0 reproduces the paper's qualitative behaviour: the
# power constraint barely matters at narrow TAMs (little test concurrency)
# and increasingly dominates as the TAM gets wider.
POWER_BUDGET_FACTOR = 1.1


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    soc: str
    width: int
    lower_bound: int
    non_preemptive: int
    preemptive: int
    power_constrained: int

    @property
    def non_preemptive_ratio(self) -> float:
        """Non-preemptive testing time relative to the lower bound."""
        return self.non_preemptive / self.lower_bound

    @property
    def preemptive_ratio(self) -> float:
        """Preemptive testing time relative to the lower bound."""
        return self.preemptive / self.lower_bound


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (one ``alpha`` value for one SOC)."""

    soc: str
    alpha: float
    min_testing_time: int
    width_of_min_time: int
    min_data_volume: int
    width_of_min_volume: int
    min_cost: float
    effective_width: int
    testing_time_at_effective: int
    data_volume_at_effective: int


def preemption_limits(soc: Soc, limit: int = PREEMPTION_LIMIT, top_fraction: float = 0.5) -> Dict[str, int]:
    """Per-core preemption limits: the larger half of the cores get ``limit``.

    The paper sets ``max_preemptions`` to 2 "for the larger cores"; we rank
    cores by total test data volume and give the top ``top_fraction`` of them
    the limit.
    """
    ranked = sorted(soc.cores, key=lambda core: core.total_test_bits, reverse=True)
    count = max(1, int(round(len(ranked) * top_fraction)))
    return {core.name: limit for core in ranked[:count]}


def power_budget(soc: Soc, factor: float = POWER_BUDGET_FACTOR) -> float:
    """The power constraint ``P_max`` used in the power-constrained rows."""
    return factor * soc.max_test_power()


def run_table1(
    soc: Soc,
    widths: Optional[Sequence[int]] = None,
    percents: Sequence[float] = (1, 5, 10, 25, 40, 60, 75),
    deltas: Sequence[int] = (0, 2, 4),
    slacks: Sequence[int] = (0, 3, 6),
    preemption_limit: int = PREEMPTION_LIMIT,
    power_factor: float = POWER_BUDGET_FACTOR,
    max_core_width: int = DEFAULT_MAX_WIDTH,
) -> List[Table1Row]:
    """Regenerate the Table 1 rows for one SOC.

    For each TAM width the lower bound and three schedules are produced:
    non-preemptive, preemptive, and preemptive + power-constrained, each the
    best over the (``percent``, ``delta``, ``slack``) grid, exactly as the
    paper tabulates the best result over its parameter sweep.
    """
    if widths is None:
        widths = TABLE1_WIDTHS.get(soc.name, (16, 32, 48, 64))
    base_config = SchedulerConfig(max_core_width=max_core_width)
    limits = preemption_limits(soc, limit=preemption_limit)
    rows = []
    for width in widths:
        bound = lower_bound(soc, width, max_core_width=max_core_width)
        non_preemptive = best_schedule(
            soc,
            width,
            constraints=None,
            percents=percents,
            deltas=deltas,
            slacks=slacks,
            config=base_config,
        )
        preemptive_constraints = ConstraintSet.for_soc(soc, max_preemptions=limits)
        preemptive = best_schedule(
            soc,
            width,
            constraints=preemptive_constraints,
            percents=percents,
            deltas=deltas,
            slacks=slacks,
            config=base_config,
        )
        power_constraints = preemptive_constraints.with_power_max(
            power_budget(soc, power_factor)
        )
        power_constrained = best_schedule(
            soc,
            width,
            constraints=power_constraints,
            percents=percents,
            deltas=deltas,
            slacks=slacks,
            config=base_config,
        )
        rows.append(
            Table1Row(
                soc=soc.name,
                width=width,
                lower_bound=bound,
                non_preemptive=non_preemptive.makespan,
                preemptive=preemptive.makespan,
                power_constrained=power_constrained.makespan,
            )
        )
    return rows


def run_table2(
    soc: Soc,
    alphas: Optional[Sequence[float]] = None,
    widths: Optional[Sequence[int]] = None,
    config: Optional[SchedulerConfig] = None,
    sweep: Optional[TamSweep] = None,
) -> Tuple[List[Table2Row], TamSweep]:
    """Regenerate the Table 2 rows for one SOC.

    A TAM-width sweep provides ``T(W)`` and ``D(W)``; for each ``alpha`` the
    effective width minimising the cost function is reported together with
    the testing time and data volume it yields.
    """
    if alphas is None:
        alphas = TABLE2_ALPHAS.get(soc.name, (0.25, 0.5, 0.75))
    if sweep is None:
        if widths is None:
            widths = tuple(range(8, 65, 2))
        sweep = sweep_tam_widths(soc, widths, config=config)
    rows = []
    for alpha in alphas:
        point = sweep.effective_width(alpha)
        rows.append(
            Table2Row(
                soc=soc.name,
                alpha=alpha,
                min_testing_time=sweep.min_testing_time,
                width_of_min_time=sweep.width_of_min_time,
                min_data_volume=sweep.min_data_volume,
                width_of_min_volume=sweep.width_of_min_volume,
                min_cost=point.cost,
                effective_width=point.width,
                testing_time_at_effective=point.testing_time,
                data_volume_at_effective=point.data_volume,
            )
        )
    return rows, sweep


def figure1_staircase(
    core: Core, max_width: int = DEFAULT_MAX_WIDTH
) -> List[Tuple[int, int]]:
    """Figure 1: ``(width, testing time)`` pairs for one core, widths 1..max."""
    curve = testing_time_curve(core, max_width)
    return list(zip(range(1, max_width + 1), curve))


@dataclass(frozen=True)
class Figure9Data:
    """All four panels of Figure 9 for one SOC."""

    sweep: TamSweep
    alphas: Tuple[float, ...]
    cost_curves: Dict[float, List[Tuple[int, float]]]

    @property
    def time_curve(self) -> List[Tuple[int, int]]:
        """Panel (a): testing time vs. TAM width."""
        return list(zip(self.sweep.widths, self.sweep.testing_times))

    @property
    def volume_curve(self) -> List[Tuple[int, int]]:
        """Panel (b): tester data volume vs. TAM width."""
        return list(zip(self.sweep.widths, self.sweep.data_volumes))


def figure9_curves(
    soc: Soc,
    widths: Optional[Sequence[int]] = None,
    alphas: Sequence[float] = (0.5, 0.75),
    config: Optional[SchedulerConfig] = None,
    sweep: Optional[TamSweep] = None,
) -> Figure9Data:
    """Figure 9: ``T(W)``, ``D(W)`` and ``C(W)`` curves for one SOC."""
    if sweep is None:
        if widths is None:
            widths = tuple(range(4, 81, 2))
        sweep = sweep_tam_widths(soc, widths, config=config)
    curves = {
        alpha: [(p.width, p.cost) for p in sweep.cost_curve(alpha)] for alpha in alphas
    }
    return Figure9Data(sweep=sweep, alphas=tuple(alphas), cost_curves=curves)

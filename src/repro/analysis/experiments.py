"""Drivers that regenerate the paper's tables and figures.

Every public function here corresponds to one experiment of the paper's
evaluation section (see the per-experiment index in DESIGN.md):

* :func:`run_table1`  -- Table 1: lower bound, non-preemptive, preemptive and
  power-constrained testing times per SOC and TAM width.
* :func:`run_table2`  -- Table 2: minimum testing time / data volume and
  effective TAM widths for several values of ``alpha``.
* :func:`figure1_staircase` -- Figure 1: testing time vs. TAM width for one
  core (Core 6 of p93791 in the paper).
* :func:`figure9_curves` -- Figure 9: SOC-level ``T(W)``, ``D(W)`` and the
  cost curves ``C(W)`` for chosen ``alpha`` values.

All drivers run on the sweep engine (:mod:`repro.engine`).  Table 1
submits one ``best`` job per (width, mode) cell, so every cell runs the
``best`` solver's deduplicated, incumbent-pruned, early-exiting grid
sweep -- a fraction of the naive width x mode x (percent, delta, slack)
expansion's scheduler work -- while producing byte-identical rows.  The
flat executor picks the parallel granularity by shape (whole ``best``
jobs when the cell count can fill the pool, per-cell grid-run tasks
otherwise); results are guaranteed identical for every ``workers`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.data_volume import TamSweep
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import SchedulerConfig
from repro.engine.api import (
    MODE_NON_PREEMPTIVE,
    MODE_POWER_CONSTRAINED,
    MODE_PREEMPTIVE,
    POWER_BUDGET_FACTOR,
    PREEMPTION_LIMIT,
    SCHEDULER_MODES,
    mode_constraint_sets,
    parallel_tam_sweep,
    power_budget,
    preemption_limits,
)
from repro.engine.jobs import EngineContext, ScheduleJob
from repro.engine.runner import run_jobs
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH, testing_time_curve

__all__ = [
    "TABLE1_WIDTHS",
    "TABLE2_ALPHAS",
    "TABLE2_WIDTHS",
    "PREEMPTION_LIMIT",
    "POWER_BUDGET_FACTOR",
    "Table1Row",
    "Table2Row",
    "Figure9Data",
    "preemption_limits",
    "power_budget",
    "run_table1",
    "run_table2",
    "figure1_staircase",
    "figure9_curves",
]

# The TAM widths Table 1 evaluates for each SOC.
TABLE1_WIDTHS: Dict[str, Tuple[int, ...]] = {
    "d695": (16, 32, 48, 64),
    "p22810": (16, 32, 48, 64),
    "p34392": (16, 24, 28, 32),
    "p93791": (16, 32, 48, 64),
}

# The TAM width range of the Table 2 effective-width study (also the
# width axis of the bench suite's table2_best phase).
TABLE2_WIDTHS: Tuple[int, ...] = tuple(range(8, 65, 2))

# The alpha values Table 2 reports for each SOC.
TABLE2_ALPHAS: Dict[str, Tuple[float, ...]] = {
    "d695": (0.1, 0.3, 0.5),
    "p22810": (0.01, 0.3, 0.5),
    "p34392": (0.2, 0.25, 0.3),
    "p93791": (0.5, 0.95, 0.99),
}


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    soc: str
    width: int
    lower_bound: int
    non_preemptive: int
    preemptive: int
    power_constrained: int

    @property
    def non_preemptive_ratio(self) -> float:
        """Non-preemptive testing time relative to the lower bound."""
        return self.non_preemptive / self.lower_bound

    @property
    def preemptive_ratio(self) -> float:
        """Preemptive testing time relative to the lower bound."""
        return self.preemptive / self.lower_bound


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (one ``alpha`` value for one SOC)."""

    soc: str
    alpha: float
    min_testing_time: int
    width_of_min_time: int
    min_data_volume: int
    width_of_min_volume: int
    min_cost: float
    effective_width: int
    testing_time_at_effective: int
    data_volume_at_effective: int


def run_table1(
    soc: Soc,
    widths: Optional[Sequence[int]] = None,
    percents: Sequence[float] = (1, 5, 10, 25, 40, 60, 75),
    deltas: Sequence[int] = (0, 2, 4),
    slacks: Sequence[int] = (0, 3, 6),
    preemption_limit: int = PREEMPTION_LIMIT,
    power_factor: float = POWER_BUDGET_FACTOR,
    max_core_width: int = DEFAULT_MAX_WIDTH,
    workers: int = 0,
) -> List[Table1Row]:
    """Regenerate the Table 1 rows for one SOC.

    For each TAM width the lower bound and three schedules are produced:
    non-preemptive, preemptive, and preemptive + power-constrained, each the
    best over the (``percent``, ``delta``, ``slack``) grid, exactly as the
    paper tabulates the best result over its parameter sweep.

    Each (width, mode) cell is one ``best``-solver job, i.e. one
    deduplicated grid sweep with incumbent pruning and the Table 1
    lower-bound early exit, so the protocol runs a fraction of the naive
    grid expansion's scheduler work, serially or in parallel (the flat
    executor dispatches cells whole when there are enough of them to fill
    the pool, and explodes them into grid-run tasks when there are not).
    Rows are byte-identical to the historical per-point expansion for
    every ``workers`` value: the
    ``best`` sweep keeps the first grid point (percent outer, delta
    middle, slack inner) achieving the minimum makespan, exactly like the
    engine's ``(makespan, job index)`` aggregation did.
    """
    if widths is None:
        widths = TABLE1_WIDTHS.get(soc.name, (16, 32, 48, 64))
    base_config = SchedulerConfig(max_core_width=max_core_width)
    constraints = mode_constraint_sets(
        soc, preemption_limit=preemption_limit, power_factor=power_factor
    )
    context = EngineContext.for_soc(soc, constraints)
    options = {
        "percents": tuple(percents),
        "deltas": tuple(deltas),
        "slacks": tuple(slacks),
    }
    jobs = []
    for width in widths:
        for mode in SCHEDULER_MODES:
            jobs.append(
                ScheduleJob(
                    index=len(jobs),
                    soc=soc.name,
                    width=width,
                    config=base_config,
                    constraints=None if mode == MODE_NON_PREEMPTIVE else mode,
                    solver="best",
                    options=options,
                    group=(width, mode),
                    tags=(("mode", mode),),
                )
            )
    best = run_jobs(jobs, context, workers=workers).best_by_group()
    rows = []
    for width in widths:
        rows.append(
            Table1Row(
                soc=soc.name,
                width=width,
                lower_bound=lower_bound(soc, width, max_core_width=max_core_width),
                non_preemptive=best[(width, MODE_NON_PREEMPTIVE)].makespan,
                preemptive=best[(width, MODE_PREEMPTIVE)].makespan,
                power_constrained=best[(width, MODE_POWER_CONSTRAINED)].makespan,
            )
        )
    return rows


def run_table2(
    soc: Soc,
    alphas: Optional[Sequence[float]] = None,
    widths: Optional[Sequence[int]] = None,
    config: Optional[SchedulerConfig] = None,
    sweep: Optional[TamSweep] = None,
    workers: int = 0,
    solver: str = "paper",
    solver_options: Optional[Dict[str, object]] = None,
) -> Tuple[List[Table2Row], TamSweep]:
    """Regenerate the Table 2 rows for one SOC.

    A TAM-width sweep provides ``T(W)`` and ``D(W)``; for each ``alpha`` the
    effective width minimising the cost function is reported together with
    the testing time and data volume it yields.  The sweep runs on the
    engine (one job per width) when not supplied pre-computed.  ``solver``
    names the registry solver producing each width's schedule -- pass
    ``"best"`` for the paper's full best-over-grid protocol per width,
    executed on the flat executor's shared pool.
    """
    if alphas is None:
        alphas = TABLE2_ALPHAS.get(soc.name, (0.25, 0.5, 0.75))
    if sweep is None:
        if widths is None:
            widths = TABLE2_WIDTHS
        sweep = parallel_tam_sweep(
            soc,
            widths,
            config=config,
            workers=workers,
            solver=solver,
            solver_options=solver_options,
        )
    rows = []
    for alpha in alphas:
        point = sweep.effective_width(alpha)
        rows.append(
            Table2Row(
                soc=soc.name,
                alpha=alpha,
                min_testing_time=sweep.min_testing_time,
                width_of_min_time=sweep.width_of_min_time,
                min_data_volume=sweep.min_data_volume,
                width_of_min_volume=sweep.width_of_min_volume,
                min_cost=point.cost,
                effective_width=point.width,
                testing_time_at_effective=point.testing_time,
                data_volume_at_effective=point.data_volume,
            )
        )
    return rows, sweep


def figure1_staircase(
    core: Core, max_width: int = DEFAULT_MAX_WIDTH
) -> List[Tuple[int, int]]:
    """Figure 1: ``(width, testing time)`` pairs for one core, widths 1..max."""
    curve = testing_time_curve(core, max_width)
    return list(zip(range(1, max_width + 1), curve))


@dataclass(frozen=True)
class Figure9Data:
    """All four panels of Figure 9 for one SOC."""

    sweep: TamSweep
    alphas: Tuple[float, ...]
    cost_curves: Dict[float, List[Tuple[int, float]]]

    @property
    def time_curve(self) -> List[Tuple[int, int]]:
        """Panel (a): testing time vs. TAM width."""
        return list(zip(self.sweep.widths, self.sweep.testing_times))

    @property
    def volume_curve(self) -> List[Tuple[int, int]]:
        """Panel (b): tester data volume vs. TAM width."""
        return list(zip(self.sweep.widths, self.sweep.data_volumes))


def figure9_curves(
    soc: Soc,
    widths: Optional[Sequence[int]] = None,
    alphas: Sequence[float] = (0.5, 0.75),
    config: Optional[SchedulerConfig] = None,
    sweep: Optional[TamSweep] = None,
    workers: int = 0,
) -> Figure9Data:
    """Figure 9: ``T(W)``, ``D(W)`` and ``C(W)`` curves for one SOC."""
    if sweep is None:
        if widths is None:
            widths = tuple(range(4, 81, 2))
        sweep = parallel_tam_sweep(soc, widths, config=config, workers=workers)
    curves = {
        alpha: [(p.width, p.cost) for p in sweep.cost_curve(alpha)] for alpha in alphas
    }
    return Figure9Data(sweep=sweep, alphas=tuple(alphas), cost_curves=curves)

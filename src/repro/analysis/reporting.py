"""Plain-text rendering of experiment results (tables and figure series).

The CLI, the examples and EXPERIMENTS.md all use these helpers so the output
format stays consistent everywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from repro.analysis.experiments import Table1Row, Table2Row

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a list of rows as an aligned plain-text table."""
    materialised = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def table1_to_text(rows: Sequence[Table1Row]) -> str:
    """Render Table 1 rows the way the paper prints them."""
    headers = (
        "SOC",
        "W",
        "Lower bound",
        "Non-preemptive",
        "Preemptive",
        "Preempt+power",
        "NP/LB",
        "P/LB",
    )
    body = [
        (
            row.soc,
            row.width,
            row.lower_bound,
            row.non_preemptive,
            row.preemptive,
            row.power_constrained,
            row.non_preemptive_ratio,
            row.preemptive_ratio,
        )
        for row in rows
    ]
    return format_table(headers, body)


def table2_to_text(rows: Sequence[Table2Row]) -> str:
    """Render Table 2 rows the way the paper prints them."""
    headers = (
        "SOC",
        "alpha",
        "T_min",
        "W @ T_min",
        "D_min",
        "W @ D_min",
        "C_min",
        "W_e",
        "T @ W_e",
        "D @ W_e",
    )
    body = [
        (
            row.soc,
            row.alpha,
            row.min_testing_time,
            row.width_of_min_time,
            row.min_data_volume,
            row.width_of_min_volume,
            row.min_cost,
            row.effective_width,
            row.testing_time_at_effective,
            row.data_volume_at_effective,
        )
        for row in rows
    ]
    return format_table(headers, body)


def format_figure_series(
    series: Sequence[Tuple[Number, Number]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as two aligned columns (figure data dump)."""
    headers = (x_label, y_label)
    return format_table(headers, series)


def ascii_plot(
    series: Sequence[Tuple[Number, Number]],
    height: int = 16,
    width: int = 72,
    title: str = "",
) -> str:
    """A small dependency-free scatter/step plot for terminal inspection.

    Used by the examples to visualise the Figure 1 staircase and the
    Figure 9 curves without matplotlib.
    """
    if not series:
        return "(no data)"
    xs = [float(x) for x, _ in series]
    ys = [float(y) for _, y in series]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * len(f"{y_max:.3g}") + " │" + "".join(row))
    lines.append(f"{y_min:.3g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * len(f"{y_max:.3g}")
        + "  "
        + f"{x_min:.3g}".ljust(width - len(f"{x_max:.3g}"))
        + f"{x_max:.3g}"
    )
    return "\n".join(lines)

"""Multisite testing model (the paper's motivation for Problem 3).

Section 5 of the paper motivates narrow TAMs with *multisite testing*: one
tester with a fixed number of digital channels and a fixed per-channel vector
memory tests several SOCs ("sites") in parallel.  Narrower TAMs mean

* more sites fit on the tester (``sites = channels // W``), and
* the per-channel memory depth (= the SOC testing time, one stored bit per
  cycle per channel) is more likely to fit the tester buffer, avoiding slow
  buffer reloads from the workstation.

This module turns those observations into a small quantitative model so the
effective-TAM-width selection of Problem 3 can be evaluated in terms the
paper's introduction uses: *throughput of a production batch*.

The model is deliberately simple and fully documented:

* a tester has ``channels`` digital channels and ``buffer_depth`` bits of
  vector memory per channel;
* testing one SOC at TAM width ``W`` takes ``T(W)`` cycles and needs a
  per-channel depth of ``T(W)`` bits;
* if the depth exceeds the buffer, the test data must be split into
  ``ceil(T(W)/buffer_depth)`` segments and every segment beyond the first
  costs ``reload_cycles`` cycles of tester time (the paper cites [3] for the
  observation that these transfers dominate when frequent);
* ``sites = max(1, channels // W)`` SOCs are tested in parallel, so a batch
  of ``batch_size`` SOCs needs ``ceil(batch_size / sites)`` test insertions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.data_volume import TamSweep
from repro.core.scheduler import SchedulerConfig
from repro.engine.api import parallel_tam_sweep
from repro.soc.constraints import ConstraintSet
from repro.soc.soc import Soc


@dataclass(frozen=True)
class TesterModel:
    """A production tester: channel count, per-channel memory, reload cost.

    Parameters
    ----------
    channels:
        Number of digital tester channels available for TAM wires.
    buffer_depth:
        Per-channel vector memory, in bits (stored test-data bits per pin).
    reload_cycles:
        Tester cycles lost every time the vector memory must be refilled from
        the workstation (only incurred when a test does not fit the buffer).
    """

    # Not a test case, despite the ``Tester`` prefix.
    __test__ = False

    channels: int
    buffer_depth: int
    reload_cycles: int = 0

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("a tester needs at least one channel")
        if self.buffer_depth <= 0:
            raise ValueError("buffer_depth must be positive")
        if self.reload_cycles < 0:
            raise ValueError("reload_cycles must be non-negative")

    def sites(self, tam_width: int) -> int:
        """How many SOCs with ``tam_width`` TAM wires fit on the tester."""
        if tam_width <= 0:
            raise ValueError("TAM width must be positive")
        return max(1, self.channels // tam_width)

    def buffer_reloads(self, testing_time: int) -> int:
        """Number of vector-memory refills needed for one SOC test."""
        if testing_time <= 0:
            raise ValueError("testing time must be positive")
        return math.ceil(testing_time / self.buffer_depth) - 1

    def insertion_time(self, testing_time: int) -> int:
        """Tester time for one test insertion (one group of parallel sites)."""
        return testing_time + self.buffer_reloads(testing_time) * self.reload_cycles


@dataclass(frozen=True)
class MultisitePoint:
    """Batch-level consequences of choosing one TAM width."""

    width: int
    testing_time: int
    sites: int
    buffer_reloads: int
    insertion_time: int
    insertions: int
    batch_time: int

    @property
    def throughput(self) -> float:
        """SOCs tested per million tester cycles."""
        if self.batch_time == 0:
            return 0.0
        return 1e6 * self.insertions * self.sites / self.batch_time / max(self.insertions, 1)


def evaluate_multisite(
    sweep: TamSweep,
    tester: TesterModel,
    batch_size: int,
    widths: Optional[Sequence[int]] = None,
) -> List[MultisitePoint]:
    """Evaluate batch testing time for every swept TAM width.

    Parameters
    ----------
    sweep:
        A :class:`~repro.core.data_volume.TamSweep` produced by
        :func:`~repro.core.data_volume.sweep_tam_widths`.
    tester:
        The tester resource model.
    batch_size:
        Number of SOCs in the production batch.
    widths:
        Optional subset of the sweep's widths to evaluate.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    selected = list(widths) if widths is not None else list(sweep.widths)
    return [
        _evaluate_width(width, sweep.testing_time_at(width), tester, batch_size)
        for width in selected
    ]


def _evaluate_width(
    width: int, testing_time: int, tester: TesterModel, batch_size: int
) -> MultisitePoint:
    """Batch-level consequences of one ``(width, T(width))`` sweep point."""
    sites = tester.sites(width)
    insertion = tester.insertion_time(testing_time)
    insertions = math.ceil(batch_size / sites)
    return MultisitePoint(
        width=width,
        testing_time=testing_time,
        sites=sites,
        buffer_reloads=tester.buffer_reloads(testing_time),
        insertion_time=insertion,
        insertions=insertions,
        batch_time=insertions * insertion,
    )


def multisite_curve(
    soc: Soc,
    tester: TesterModel,
    batch_size: int,
    widths: Sequence[int],
    constraints: Optional[ConstraintSet] = None,
    config: Optional[SchedulerConfig] = None,
    workers: int = 0,
    solver: str = "paper",
) -> List[MultisitePoint]:
    """Schedule the SOC over ``widths`` and evaluate each width's batch time.

    The scheduling sweep (the expensive part) runs on the sweep engine, each
    width solved through the solver session's ``solve(ScheduleRequest)``
    front door; ``workers > 1`` fans the per-width schedules out over a
    process pool with results identical to the serial path.  ``solver`` may
    name any registered schedule-producing solver (see :mod:`repro.solvers`)
    to study multisite throughput under a baseline architecture.
    """
    sweep = parallel_tam_sweep(
        soc,
        widths,
        constraints=constraints,
        config=config,
        workers=workers,
        solver=solver,
    )
    return evaluate_multisite(sweep, tester, batch_size)


def best_multisite_width(
    sweep: TamSweep,
    tester: TesterModel,
    batch_size: int,
    widths: Optional[Sequence[int]] = None,
) -> MultisitePoint:
    """The TAM width minimising total batch testing time (ties: narrowest)."""
    points = evaluate_multisite(sweep, tester, batch_size, widths)
    return min(points, key=lambda point: (point.batch_time, point.width))

"""Cross-module symbol table for the interprocedural analysis layer.

The table indexes every function, method and class of the linted tree by a
stable *identifier* (``module.qualname``, e.g.
``repro.engine.executor._execute_task`` or
``repro.solvers.session.Session.solve``) and resolves the name-binding
machinery the per-module rules cannot see:

* **imports** -- ``import a.b as c`` / ``from a.b import d as e`` (absolute
  and relative) become an alias map per module, so a dotted reference in
  one module resolves to the symbol it names in another;
* **re-exports** -- a ``from x import y`` in a package ``__init__`` makes
  ``package.y`` resolve through to ``x.y`` (chains are followed with a
  cycle guard);
* **class attributes and methods** -- classes carry their base-class
  references, so ``self.method(...)`` resolves through project-local
  inheritance;
* **decorator unwrapping** -- every decorator is recorded by its
  *resolved* dotted name (``@register_solver(...)`` on a class imported
  from :mod:`repro.solvers.registry` is recorded as
  ``repro.solvers.registry.register_solver``), which is what the call
  graph's registry-dispatch resolution keys on.

The table also records, per module, the names declared **fork-local** via
a ``# repro: fork-local`` comment on their definition line: module globals
(or memoised functions) that are sanctioned worker-side state -- each
worker's private memo, or the lock-free shared incumbent board -- which
the REP007/REP008 concurrency rules exempt.

Everything here is purely syntactic (no imports are executed), mirroring
the wire-schema extractor's approach.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Matches the fork-local sanction pragma (see module docstring).
_FORK_LOCAL_RE = re.compile(r"#\s*repro:\s*fork-local\b")


def module_name_for(path: Path, source_roots: Sequence[Path]) -> str:
    """The dotted module name of ``path`` relative to the closest source root.

    ``src/repro/engine/executor.py`` under root ``src`` becomes
    ``repro.engine.executor``; package ``__init__`` files name the package
    itself.  Files outside every root are named by their stem, which keeps
    single-file lint fixtures addressable (module ``fixture`` for
    ``fixture.py``).
    """
    resolved = path.resolve()
    best: Optional[Tuple[int, Tuple[str, ...]]] = None
    for root in source_roots:
        try:
            relative = resolved.relative_to(Path(root).resolve())
        except ValueError:
            continue
        parts = relative.with_suffix("").parts
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if not parts:
            continue
        candidate = (len(relative.parts), tuple(parts))
        if best is None or candidate < best:
            best = candidate  # the closest root wins (shortest relative path)
    if best is not None:
        return ".".join(best[1])
    return resolved.stem if resolved.stem != "__init__" else resolved.parent.name


def dotted_expr(node: ast.expr) -> str:
    """``a.b.c`` rendered as a dotted string, or ``""`` for other shapes."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def decorator_expr(node: ast.expr) -> str:
    """The dotted name under a decorator (``@f(...)`` and ``@f`` both -> ``f``)."""
    if isinstance(node, ast.Call):
        node = node.func
    return dotted_expr(node)


def annotation_class_name(node: Optional[ast.expr]) -> str:
    """The class a (possibly quoted / Optional-wrapped) annotation names.

    ``Session``, ``"Session"``, ``Optional[Session]`` and
    ``Optional["Session"]`` all yield ``"Session"``; shapes the shallow
    receiver-typing cannot use (unions, generics over several arguments)
    yield ``""``.
    """
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ""
    if isinstance(node, ast.Subscript):
        head = dotted_expr(node.value).rsplit(".", 1)[-1]
        if head == "Optional":
            return annotation_class_name(node.slice)
        return ""
    return dotted_expr(node)


@dataclass(frozen=True)
class FunctionSymbol:
    """One function, method or nested function of the analysed tree."""

    ident: str
    module: str
    qualname: str
    name: str
    path: str
    lineno: int
    class_name: str  # "" for free functions
    decorators: Tuple[str, ...]  # resolved dotted names, outermost first
    returns_class: str  # resolved class ident of the return annotation, or ""
    node: FunctionNode = field(repr=False, compare=False, hash=False)

    @property
    def is_method(self) -> bool:
        """Whether the function is defined inside a class body."""
        return bool(self.class_name)


@dataclass(frozen=True)
class ClassSymbol:
    """One class of the analysed tree, with its project-resolvable bases."""

    ident: str
    module: str
    name: str
    path: str
    lineno: int
    bases: Tuple[str, ...]  # dotted base names as written
    decorators: Tuple[str, ...]  # resolved dotted names
    methods: Tuple[str, ...]  # method names (idents are ident + "." + name)
    node: ast.ClassDef = field(repr=False, compare=False, hash=False)


@dataclass(frozen=True)
class ModuleSymbols:
    """Everything the table knows about one module."""

    name: str
    path: str
    is_package: bool
    imports: Tuple[Tuple[str, str], ...]  # (local alias, dotted target)
    functions: Tuple[str, ...]  # top-level function names
    classes: Tuple[str, ...]  # top-level class names
    module_globals: Tuple[Tuple[str, int], ...]  # (name, definition line)
    mutable_globals: Tuple[str, ...]  # subset bound to mutable containers
    fork_local: Tuple[str, ...]  # names sanctioned by the fork-local pragma

    def import_map(self) -> Dict[str, str]:
        """The alias -> dotted-target mapping as a dict."""
        return dict(self.imports)

    def global_names(self) -> Set[str]:
        """Module-level bound names (assignment targets only)."""
        return {name for name, _ in self.module_globals}


#: Call targets whose value is a mutable container by construction.
_MUTABLE_CONSTRUCTORS = ("dict", "list", "set", "defaultdict", "deque", "Counter")


def _fork_local_lines(source: str) -> Set[int]:
    """1-based lines carrying a ``# repro: fork-local`` pragma comment."""
    lines: Set[int] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        comment = text.partition("#")[2]
        if comment and _FORK_LOCAL_RE.search("#" + comment):
            lines.add(lineno)
    return lines


def _relative_import_base(module: str, is_package: bool, level: int) -> str:
    """The absolute package a ``from ...x import y`` resolves against."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


class SymbolTable:
    """The project-wide symbol index (build with :meth:`build`)."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        modules: Iterable[Tuple[str, str, str, ast.Module]],
        # each entry: (module name, display path, source, parsed tree)
    ) -> "SymbolTable":
        """Index the given modules (name, display path, source, tree)."""
        table = cls()
        entries = sorted(modules, key=lambda item: item[0])
        for name, path, source, tree in entries:
            table._index_module(name, path, source, tree)
        table._resolve_decorators()
        return table

    def _index_module(
        self, name: str, path: str, source: str, tree: ast.Module
    ) -> None:
        pragma_lines = _fork_local_lines(source)
        imports: List[Tuple[str, str]] = []
        function_names: List[str] = []
        class_names: List[str] = []
        module_globals: List[Tuple[str, int]] = []
        mutable: List[str] = []
        fork_local: List[str] = []
        is_package = path.endswith("__init__.py")

        for statement in tree.body:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports.append((local, target))
            elif isinstance(statement, ast.ImportFrom):
                if statement.level:
                    base = _relative_import_base(name, is_package, statement.level)
                else:
                    base = statement.module or ""
                if statement.module and statement.level:
                    base = f"{base}.{statement.module}" if base else statement.module
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    imports.append((local, target))
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function_names.append(statement.name)
                self._index_function(name, path, statement, "", pragma_lines)
                if self._def_is_fork_local(statement, pragma_lines):
                    fork_local.append(statement.name)
            elif isinstance(statement, ast.ClassDef):
                class_names.append(statement.name)
                self._index_class(name, path, statement, pragma_lines)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                value = statement.value
                is_mutable = isinstance(
                    value,
                    (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
                ) or (
                    isinstance(value, ast.Call)
                    and dotted_expr(value.func).rsplit(".", 1)[-1]
                    in _MUTABLE_CONSTRUCTORS
                )
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    module_globals.append((target.id, statement.lineno))
                    if is_mutable:
                        mutable.append(target.id)
                    if statement.lineno in pragma_lines:
                        fork_local.append(target.id)

        self.modules[name] = ModuleSymbols(
            name=name,
            path=path,
            is_package=is_package,
            imports=tuple(imports),
            functions=tuple(function_names),
            classes=tuple(class_names),
            module_globals=tuple(module_globals),
            mutable_globals=tuple(mutable),
            fork_local=tuple(sorted(set(fork_local))),
        )

    @staticmethod
    def _def_is_fork_local(node: FunctionNode, pragma_lines: Set[int]) -> bool:
        """Whether the pragma sits on the def line or any decorator line."""
        lines = {node.lineno}
        lines.update(d.lineno for d in node.decorator_list)
        return bool(lines & pragma_lines)

    def _index_function(
        self,
        module: str,
        path: str,
        node: FunctionNode,
        prefix: str,
        pragma_lines: Set[int],
        class_name: str = "",
    ) -> FunctionSymbol:
        qualname = f"{prefix}{node.name}"
        symbol = FunctionSymbol(
            ident=f"{module}.{qualname}",
            module=module,
            qualname=qualname,
            name=node.name,
            path=path,
            lineno=node.lineno,
            class_name=class_name,
            decorators=tuple(decorator_expr(d) for d in node.decorator_list),
            returns_class=annotation_class_name(node.returns),
            node=node,
        )
        self.functions[symbol.ident] = symbol
        # Nested functions are their own nodes (qualname uses the
        # <locals> convention so the identifiers match runtime qualnames).
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._direct_parent_function(node, child) is node:
                    self._index_function(
                        module,
                        path,
                        child,
                        f"{qualname}.<locals>.",
                        pragma_lines,
                        class_name="",
                    )
        return symbol

    @staticmethod
    def _direct_parent_function(root: FunctionNode, target: ast.AST) -> ast.AST:
        """The innermost function enclosing ``target`` within ``root``."""
        parent: ast.AST = root
        stack: List[Tuple[ast.AST, ast.AST]] = [(root, root)]
        while stack:
            node, owner = stack.pop()
            for child in ast.iter_child_nodes(node):
                if child is target:
                    return owner
                next_owner = (
                    child
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else owner
                )
                stack.append((child, next_owner))
        return parent

    def _index_class(
        self, module: str, path: str, node: ast.ClassDef, pragma_lines: Set[int]
    ) -> None:
        method_names: List[str] = []
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_names.append(statement.name)
                self._index_function(
                    module,
                    path,
                    statement,
                    f"{node.name}.",
                    pragma_lines,
                    class_name=node.name,
                )
        symbol = ClassSymbol(
            ident=f"{module}.{node.name}",
            module=module,
            name=node.name,
            path=path,
            lineno=node.lineno,
            bases=tuple(b for b in (dotted_expr(base) for base in node.bases) if b),
            decorators=tuple(decorator_expr(d) for d in node.decorator_list),
            methods=tuple(method_names),
            node=node,
        )
        self.classes[symbol.ident] = symbol

    def _resolve_decorators(self) -> None:
        """Rewrite decorator names to their resolved dotted form."""
        for ident in sorted(self.functions):
            symbol = self.functions[ident]
            resolved = tuple(
                self.resolve_dotted(symbol.module, d) or d for d in symbol.decorators
            )
            if resolved != symbol.decorators:
                object.__setattr__(symbol, "decorators", resolved)
        for ident in sorted(self.classes):
            cls_symbol = self.classes[ident]
            resolved = tuple(
                self.resolve_dotted(cls_symbol.module, d) or d
                for d in cls_symbol.decorators
            )
            if resolved != cls_symbol.decorators:
                object.__setattr__(cls_symbol, "decorators", resolved)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted reference as seen from ``module``.

        Returns the dotted form with the leading alias replaced by its
        import target (``sess.solve`` -> ``repro.solvers.session.solve``),
        or the input unchanged when the head names a local symbol, or
        ``None`` when the head is unknown (builtins, stdlib).
        """
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        if head in symbols.functions or head in symbols.classes:
            return f"{module}.{dotted}"
        target = symbols.import_map().get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted reference to a function/method/class *ident*.

        Follows import aliases and re-export chains (``from x import y``
        in package ``__init__`` modules) with a cycle guard.  Returns the
        ident of a known :class:`FunctionSymbol` or :class:`ClassSymbol`,
        or ``None``.
        """
        absolute = self.resolve_dotted(module, dotted)
        if absolute is None:
            return None
        return self.resolve_absolute(absolute)

    def resolve_absolute(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve an absolute dotted path through modules and re-exports."""
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Longest module prefix, then member lookup inside it.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            symbols = self.modules.get(module)
            if symbols is None:
                continue
            member = parts[cut]
            rest = parts[cut + 1 :]
            candidate = f"{module}.{'.'.join([member] + rest)}"
            if candidate in self.functions or candidate in self.classes:
                return candidate
            reexport = symbols.import_map().get(member)
            if reexport is not None:
                chased = ".".join([reexport] + rest)
                return self.resolve_absolute(chased, seen)
            return None
        return None

    # ------------------------------------------------------------------
    # Class helpers
    # ------------------------------------------------------------------
    def method_of(self, class_ident: str, method: str) -> Optional[str]:
        """The ident of ``method`` on a class or its project bases (MRO-ish)."""
        seen: Set[str] = set()
        queue: List[str] = [class_ident]
        while queue:
            ident = queue.pop(0)
            if ident in seen:
                continue
            seen.add(ident)
            symbol = self.classes.get(ident)
            if symbol is None:
                continue
            if method in symbol.methods:
                return f"{ident}.{method}"
            for base in symbol.bases:
                resolved = self.resolve(symbol.module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def classes_decorated_by(self, decorator_suffixes: Tuple[str, ...]) -> List[str]:
        """Class idents whose (resolved) decorator ends with any suffix."""
        found: List[str] = []
        for ident in sorted(self.classes):
            for decorator in self.classes[ident].decorators:
                tail = decorator.rsplit(".", 1)[-1]
                if tail in decorator_suffixes:
                    found.append(ident)
                    break
        return found

    def fork_local_names(self, module: str) -> Set[str]:
        """Names declared fork-local in ``module`` (empty for unknown modules)."""
        symbols = self.modules.get(module)
        return set(symbols.fork_local) if symbols is not None else set()

"""Project-wide call graph over the cross-module symbol table.

Edges are discovered syntactically and resolved through
:class:`~repro.staticcheck.analysis.symbols.SymbolTable`:

* **direct calls** -- ``f(...)``, ``mod.f(...)``, ``pkg.sub.f(...)`` via
  import aliases and re-export chains;
* **method calls** -- ``self.m(...)`` through the enclosing class and its
  project bases, and ``obj.m(...)`` when the receiver's class is known
  from a parameter annotation (``session: Session``), a local constructor
  assignment (``s = Session()``), a call to a factory whose return
  annotation names a project class (``get_default_session().solve(...)``),
  or a nested-function closure;
* **function references** -- a project function passed *as an argument*
  (``pool.imap_unordered(_execute_task, ...)``, ``initializer=_init_worker``,
  ``atexit.register(close_default_executor)``) becomes an edge of kind
  ``ref``: whoever receives the object may call it, which is exactly the
  conservative over-approximation worker-reachability needs;
* **registry dispatch** -- the repo's two indirection idioms are resolved
  to *synthetic* edges of kind ``dispatch``: a call to ``Session.solve``
  fans out to every ``@register_solver``-decorated class's ``solve``
  method, and a ``check_module``/``check_project`` call fans out to every
  ``@register_rule``-decorated class's same-named method.

The graph also identifies the **worker entry points** of the flat-executor
idiom: payload functions submitted to pool methods (``imap_unordered``,
``apply_async``, ...), pool ``initializer=`` arguments, and functions
following the initializer naming conventions.  :meth:`CallGraph.reachable`
walks the graph from those entries and returns, per reachable function,
the *witness call chain* (entry -> ... -> function) that findings attach
so reviewers can verify them without re-running the analysis.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.analysis.symbols import (
    FunctionNode,
    FunctionSymbol,
    SymbolTable,
    annotation_class_name,
    dotted_expr,
)

#: Pool / executor submission methods whose first argument is the payload
#: (the REP004 vocabulary, shared so both layers agree on what dispatches).
SUBMISSION_METHODS = (
    "imap",
    "imap_unordered",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
)

#: Functions that are worker entry points by naming convention.
INITIALIZER_NAMES = ("_init_worker",)
INITIALIZER_SUFFIXES = ("_initializer",)

#: Registry dispatch: resolved decorator name -> dispatched method names.
REGISTRY_DISPATCH: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("register_solver", ("solve",)),
    ("register_rule", ("check_module", "check_project")),
)


def is_initializer_name(name: str) -> bool:
    return name in INITIALIZER_NAMES or name.endswith(INITIALIZER_SUFFIXES)


@dataclass(frozen=True, order=True)
class CallSite:
    """One resolved edge of the call graph."""

    caller: str
    callee: str
    path: str
    line: int
    kind: str  # "call" | "ref" | "dispatch"


class CallGraph:
    """The resolved project call graph (build with :meth:`build`)."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, Tuple[CallSite, ...]] = {}
        self.entry_points: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        """Resolve every function's calls/references into graph edges."""
        graph = cls(table)
        dispatch_targets = graph._dispatch_targets()
        entries: Set[str] = set()
        for ident in sorted(table.functions):
            symbol = table.functions[ident]
            sites = graph._edges_of(symbol, dispatch_targets, entries)
            if sites:
                graph.edges[ident] = tuple(sorted(set(sites)))
            if is_initializer_name(symbol.name):
                entries.add(ident)
        graph.entry_points = tuple(sorted(entries))
        return graph

    def _dispatch_targets(self) -> Dict[str, Tuple[str, ...]]:
        """Dispatched method name -> idents of every registered implementation."""
        targets: Dict[str, List[str]] = {}
        for decorator, methods in REGISTRY_DISPATCH:
            for class_ident in self.table.classes_decorated_by((decorator,)):
                for method in methods:
                    method_ident = self.table.method_of(class_ident, method)
                    if method_ident is not None:
                        targets.setdefault(method, []).append(method_ident)
        return {name: tuple(sorted(idents)) for name, idents in targets.items()}

    # -- per-function edge extraction ----------------------------------
    def _edges_of(
        self,
        symbol: FunctionSymbol,
        dispatch_targets: Dict[str, Tuple[str, ...]],
        entries: Set[str],
    ) -> List[CallSite]:
        table = self.table
        module = symbol.module
        nested = self._nested_of(symbol)
        receiver_types = self._receiver_types(symbol)
        sites: List[CallSite] = []

        def add(callee: Optional[str], node: ast.AST, kind: str) -> None:
            if callee is None:
                return
            sites.append(
                CallSite(
                    caller=symbol.ident,
                    callee=callee,
                    path=symbol.path,
                    line=int(getattr(node, "lineno", symbol.lineno)),
                    kind=kind,
                )
            )

        def resolve_callable(expr: ast.expr) -> Optional[str]:
            """A function/method ident for a callable expression, if known."""
            if isinstance(expr, ast.Name):
                if expr.id in nested:
                    return nested[expr.id]
                resolved = table.resolve(module, expr.id)
                return self._as_function(resolved)
            if isinstance(expr, ast.Attribute):
                return self._resolve_attribute_call(
                    symbol, expr, receiver_types, nested
                )
            return None

        for node in self._walk_own_scope(symbol.node):
            if not isinstance(node, ast.Call):
                continue
            # The call target itself.
            callee = resolve_callable(node.func)
            add(callee, node, "call")
            # Registry dispatch fan-out on the two indirection idioms.
            method_name = (
                node.func.attr if isinstance(node.func, ast.Attribute) else ""
            )
            for target in dispatch_targets.get(method_name, ()):
                if target != callee:
                    add(target, node, "dispatch")
            # Function references passed as arguments (payloads, callbacks).
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                referenced = resolve_callable(arg)
                if referenced is not None:
                    add(referenced, arg, "ref")
            # Worker entry points: pool payloads and initializers.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMISSION_METHODS
                and node.args
            ):
                payload = resolve_callable(node.args[0])
                if payload is not None:
                    entries.add(payload)
            if isinstance(node.func, (ast.Attribute, ast.Name)):
                tail = dotted_expr(node.func).rsplit(".", 1)[-1]
                if tail in ("Pool", "ProcessPoolExecutor"):
                    for keyword in node.keywords:
                        if keyword.arg == "initializer":
                            initializer = resolve_callable(keyword.value)
                            if initializer is not None:
                                entries.add(initializer)
        return sites

    def _as_function(self, ident: Optional[str]) -> Optional[str]:
        """Map a resolved ident to a function; classes become __init__."""
        if ident is None:
            return None
        if ident in self.table.functions:
            return ident
        if ident in self.table.classes:
            return self.table.method_of(ident, "__init__")
        return None

    def _nested_of(self, symbol: FunctionSymbol) -> Dict[str, str]:
        """Direct nested-function names of ``symbol`` -> their idents."""
        prefix = f"{symbol.ident}.<locals>."
        nested: Dict[str, str] = {}
        for ident in self.table.functions:
            if ident.startswith(prefix) and "." not in ident[len(prefix) :]:
                nested[ident[len(prefix) :]] = ident
        return nested

    def _receiver_types(self, symbol: FunctionSymbol) -> Dict[str, str]:
        """Local names with a known project class (shallow, syntactic).

        Sources: parameter annotations, local assignments from a project
        class constructor, and local assignments from a call to a project
        function whose return annotation names a project class.
        """
        table = self.table
        module = symbol.module
        types: Dict[str, str] = {}
        args = symbol.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            class_name = annotation_class_name(arg.annotation)
            if class_name:
                resolved = table.resolve(module, class_name)
                if resolved is not None and resolved in table.classes:
                    types[arg.arg] = resolved
        if symbol.is_method:
            class_ident = f"{module}.{symbol.class_name}"
            types.setdefault("self", class_ident)
            types.setdefault("cls", class_ident)
        for node in self._walk_own_scope(symbol.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            inferred = self._class_of_value(module, node.value)
            if inferred is not None:
                types[target.id] = inferred
            else:
                types.pop(target.id, None)  # reassignment loses the type
        return types

    def _class_of_value(self, module: str, value: ast.expr) -> Optional[str]:
        """The project class an expression evaluates to, if inferable."""
        if not isinstance(value, ast.Call):
            return None
        dotted = dotted_expr(value.func)
        if not dotted:
            return None
        resolved = self.table.resolve(module, dotted)
        if resolved is None:
            return None
        if resolved in self.table.classes:
            return resolved
        function = self.table.functions.get(resolved)
        if function is not None and function.returns_class:
            returned = self.table.resolve(function.module, function.returns_class)
            if returned is not None and returned in self.table.classes:
                return returned
        return None

    def _resolve_attribute_call(
        self,
        symbol: FunctionSymbol,
        func: ast.Attribute,
        receiver_types: Dict[str, str],
        nested: Dict[str, str],
    ) -> Optional[str]:
        table = self.table
        module = symbol.module
        method = func.attr
        receiver = func.value
        # Typed receiver: a name with a known class, or a factory call
        # whose return annotation names a class (Session chains).
        class_ident: Optional[str] = None
        if isinstance(receiver, ast.Name):
            class_ident = receiver_types.get(receiver.id)
        elif isinstance(receiver, ast.Call):
            class_ident = self._class_of_value(module, receiver)
        if class_ident is not None:
            return table.method_of(class_ident, method)
        # Module attribute: mod.f(...) / pkg.sub.f(...).
        dotted = dotted_expr(func)
        if dotted:
            return self._as_function(table.resolve(module, dotted))
        return None

    @staticmethod
    def _walk_own_scope(node: FunctionNode) -> List[ast.AST]:
        """Nodes of one function body, nested function interiors excluded."""
        found: List[ast.AST] = []
        stack: List[ast.AST] = list(node.body)
        while stack:
            current = stack.pop()
            found.append(current)
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)
        return found

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callees(self, ident: str) -> Tuple[CallSite, ...]:
        """The outgoing edges of one function."""
        return self.edges.get(ident, ())

    def reachable(
        self, entries: Optional[Sequence[str]] = None
    ) -> Dict[str, Tuple[str, ...]]:
        """Functions reachable from ``entries`` with their witness chains.

        Returns ``{ident: (entry, ..., ident)}`` where the chain is the
        BFS-shortest call path from an entry point (ties broken by sorted
        order, so chains are deterministic).  Defaults to the discovered
        worker entry points.
        """
        start = tuple(sorted(entries)) if entries is not None else self.entry_points
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for entry in start:
            if entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for site in self.callees(current):
                if site.callee not in parents:
                    parents[site.callee] = current
                    queue.append(site.callee)
        chains: Dict[str, Tuple[str, ...]] = {}
        for ident in parents:
            chain: List[str] = []
            cursor: Optional[str] = ident
            while cursor is not None:
                chain.append(cursor)
                cursor = parents[cursor]
            chains[ident] = tuple(reversed(chain))
        return chains

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (round-trips through :func:`call_graph_from_json`)."""
        return {
            "version": 1,
            "functions": {
                ident: {
                    "module": info.module,
                    "path": info.path,
                    "line": info.lineno,
                    "decorators": list(info.decorators),
                }
                for ident, info in sorted(self.table.functions.items())
            },
            "edges": [
                {
                    "caller": site.caller,
                    "callee": site.callee,
                    "path": site.path,
                    "line": site.line,
                    "kind": site.kind,
                }
                for ident in sorted(self.edges)
                for site in self.edges[ident]
            ],
            "entry_points": list(self.entry_points),
        }


def call_graph_to_json(graph: CallGraph, indent: int = 2) -> str:
    """Serialise a call graph to the ``repro lint --call-graph`` payload."""
    return json.dumps(graph.to_dict(), indent=indent, sort_keys=True)


def call_graph_from_json(text: str) -> Dict[str, object]:
    """Decode a :func:`call_graph_to_json` payload (validating its version).

    Returns the payload in exactly the :meth:`CallGraph.to_dict` shape, so
    ``call_graph_from_json(call_graph_to_json(g)) == g.to_dict()``.
    """
    payload = json.loads(text)
    if payload.get("version") != 1:
        raise ValueError(f"unsupported call-graph payload version: {payload.get('version')!r}")
    return {
        "version": 1,
        "functions": payload.get("functions", {}),
        "edges": payload.get("edges", []),
        "entry_points": list(payload.get("entry_points", [])),
    }

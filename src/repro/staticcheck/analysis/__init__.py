"""Interprocedural analysis layer for ``repro lint`` project rules.

Three passes, each building on the last:

1. :mod:`~repro.staticcheck.analysis.symbols` -- a cross-module symbol
   table (imports, re-exports, class attributes, decorator unwrapping);
2. :mod:`~repro.staticcheck.analysis.callgraph` -- the project call
   graph, resolving the repo's two indirection idioms (registry dispatch
   via ``@register_solver``/``@register_rule`` and ``FlatExecutor`` /
   pool-submission task entry points) and exposing worker reachability
   with witness chains;
3. :mod:`~repro.staticcheck.analysis.effects` -- purity / side-effect
   inference (module-global writes, instance/closure mutation, I/O)
   propagated over call-graph SCCs to a fixpoint.

:class:`ProjectAnalysis` bundles the three for the REP007--REP010 rules;
``repro lint --call-graph FILE`` / ``--effects FILE`` export the
artifacts as JSON via the ``*_to_json`` helpers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.staticcheck.analysis.callgraph import (
    INITIALIZER_NAMES,
    INITIALIZER_SUFFIXES,
    SUBMISSION_METHODS,
    CallGraph,
    CallSite,
    call_graph_from_json,
    call_graph_to_json,
)
from repro.staticcheck.analysis.effects import (
    Effects,
    GlobalWrite,
    effects_from_json,
    effects_to_dict,
    effects_to_json,
    local_effects,
    propagate_effects,
)
from repro.staticcheck.analysis.symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassSymbol",
    "Effects",
    "FunctionSymbol",
    "GlobalWrite",
    "INITIALIZER_NAMES",
    "INITIALIZER_SUFFIXES",
    "ModuleSymbols",
    "ProjectAnalysis",
    "SUBMISSION_METHODS",
    "SymbolTable",
    "analyze_modules",
    "analyze_paths",
    "call_graph_from_json",
    "call_graph_to_json",
    "effects_from_json",
    "effects_to_dict",
    "effects_to_json",
    "local_effects",
    "module_name_for",
    "propagate_effects",
]


@dataclass(frozen=True)
class ProjectAnalysis:
    """Symbol table + call graph + effect summaries for one linted tree."""

    table: SymbolTable = field(compare=False)
    call_graph: CallGraph = field(compare=False)
    local_effects: Dict[str, Effects] = field(compare=False)
    effects: Dict[str, Effects] = field(compare=False)  # propagated (closed)

    @classmethod
    def build(
        cls,
        modules: Iterable[Tuple[str, str, str, ast.Module]],
        # each entry: (module name, display path, source, parsed tree)
    ) -> "ProjectAnalysis":
        """Run all three passes over the given parsed modules."""
        table = SymbolTable.build(modules)
        graph = CallGraph.build(table)
        local = {
            ident: local_effects(table.functions[ident], table)
            for ident in sorted(table.functions)
        }
        propagated = propagate_effects(graph, local)
        return cls(
            table=table,
            call_graph=graph,
            local_effects=local,
            effects=propagated,
        )

    def worker_reachable(self) -> Dict[str, Tuple[str, ...]]:
        """Idents reachable from worker entry points, with witness chains."""
        return self.call_graph.reachable()

    def call_graph_json(self) -> str:
        """The ``--call-graph`` artifact payload."""
        return call_graph_to_json(self.call_graph)

    def effects_json(self) -> str:
        """The ``--effects`` artifact payload."""
        return effects_to_json(self.local_effects, self.effects)


def analyze_modules(
    entries: Sequence[Tuple[Path, str, str, ast.Module]],
    source_roots: Sequence[Path],
    # each entry: (filesystem path, display path, source, parsed tree)
) -> ProjectAnalysis:
    """Build a :class:`ProjectAnalysis` from loaded module contexts.

    Module names are derived from the filesystem path relative to the
    closest source root (fixture files outside every root are named by
    their stem), matching :func:`module_name_for`.
    """
    named = [
        (module_name_for(path, source_roots), display, source, tree)
        for path, display, source, tree in entries
    ]
    return ProjectAnalysis.build(named)


def analyze_paths(
    paths: Sequence[Path],
    source_roots: Sequence[Path],
    display_root: Optional[Path] = None,
) -> ProjectAnalysis:
    """Parse files from disk and analyse them (CLI export convenience)."""
    entries = []
    for path in sorted(set(Path(p) for p in paths)):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        display = str(path)
        if display_root is not None:
            try:
                display = path.resolve().relative_to(display_root.resolve()).as_posix()
            except ValueError:
                display = str(path)
        entries.append((path, display, source, tree))
    return analyze_modules(entries, source_roots)

"""Purity / side-effect inference over the project call graph.

For every function the analysis first infers its **local** effects
syntactically:

* ``global_writes`` -- assignments (or ``global``-declared rebinding) to
  module-level names, and mutating calls/subscript-stores on names the
  symbol table knows to be module-level mutable containers
  (``_CACHE[k] = v``, ``_SEEN.add(x)``, ``_LOG.append(...)``);
* ``instance_writes`` -- stores through ``self`` (``self.x = ...``,
  ``self.items.append(...)``);
* ``closure_writes`` -- ``nonlocal``-declared rebinding inside nested
  functions;
* ``io`` -- calls into the obvious I/O vocabulary (``open``, ``print``,
  ``os.*``/``subprocess.*``/``socket.*`` tails, ``.write``/``.read`` on
  file-ish receivers is deliberately out of scope for this shallow pass);
* ``memoized`` -- the function is wrapped in ``functools.lru_cache`` /
  ``functools.cache``.

Local effects are then **propagated over the call graph to a fixpoint**:
the condensation of the graph into strongly connected components (Tarjan)
is processed in reverse topological order, so each SCC absorbs the
effects of everything it calls before its own members are finalised, and
mutual recursion converges in a single pass (effects only ever grow).

Propagated ``global_writes`` carry their origin, so a rule can say *which*
function actually performs the write a worker-reachable entry point
transitively triggers.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.staticcheck.analysis.callgraph import CallGraph
from repro.staticcheck.analysis.symbols import (
    FunctionSymbol,
    SymbolTable,
    dotted_expr,
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = (
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
)

#: Call heads / dotted tails that count as I/O for the shallow pass.
_IO_CALL_NAMES = ("open", "print", "input")
_IO_MODULE_HEADS = ("os", "subprocess", "socket", "shutil", "requests", "urllib")


@dataclass(frozen=True, order=True)
class GlobalWrite:
    """One module-global mutation: which name, where, by whom."""

    module: str  # module owning the global
    name: str  # the global's name
    writer: str  # ident of the function performing the write
    path: str
    line: int

    @property
    def target(self) -> str:
        """The fully qualified global name (``module.name``)."""
        return f"{self.module}.{self.name}"


@dataclass
class Effects:
    """The (local or propagated) effect summary of one function."""

    global_writes: Tuple[GlobalWrite, ...] = ()
    instance_writes: Tuple[int, ...] = ()  # lines of self.* stores
    closure_writes: Tuple[int, ...] = ()  # lines of nonlocal rebinding
    io_calls: Tuple[int, ...] = ()  # lines of I/O calls
    memoized: bool = False

    @property
    def is_pure(self) -> bool:
        """No observable side effect of any tracked kind."""
        return not (
            self.global_writes
            or self.instance_writes
            or self.closure_writes
            or self.io_calls
        )

    def merged_with(self, other: "Effects") -> "Effects":
        """This summary plus another's effects (memoized stays local)."""
        return Effects(
            global_writes=tuple(
                sorted(set(self.global_writes) | set(other.global_writes))
            ),
            instance_writes=tuple(
                sorted(set(self.instance_writes) | set(other.instance_writes))
            ),
            closure_writes=tuple(
                sorted(set(self.closure_writes) | set(other.closure_writes))
            ),
            io_calls=tuple(sorted(set(self.io_calls) | set(other.io_calls))),
            memoized=self.memoized,
        )


def _is_memoized(symbol: FunctionSymbol) -> bool:
    """Whether the function is wrapped in lru_cache/cache."""
    for decorator in symbol.decorators:
        tail = decorator.rsplit(".", 1)[-1]
        if tail in ("lru_cache", "cache"):
            return True
    return False


class _LocalEffectVisitor(ast.NodeVisitor):
    """Collects one function's own effects (nested defs excluded)."""

    def __init__(self, symbol: FunctionSymbol, table: SymbolTable) -> None:
        self.symbol = symbol
        self.table = table
        module_symbols = table.modules.get(symbol.module)
        self.module_globals: Set[str] = (
            module_symbols.global_names() if module_symbols is not None else set()
        )
        self.mutable_globals: Set[str] = (
            set(module_symbols.mutable_globals) if module_symbols is not None else set()
        )
        self.declared_global: Set[str] = set()
        self.local_names: Set[str] = self._parameter_names()
        self.writes: List[GlobalWrite] = []
        self.instance_lines: Set[int] = set()
        self.closure_lines: Set[int] = set()
        self.io_lines: Set[int] = set()
        # Two passes: declarations and local bindings first, so a local
        # shadowing a module global is never misread as a global write.
        for node in self._own_nodes():
            if isinstance(node, ast.Global):
                self.declared_global.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for target in self._assign_targets(node):
                    if isinstance(target, ast.Name):
                        self.local_names.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        self.local_names.add(name_node.id)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                for name_node in ast.walk(node.optional_vars):
                    if isinstance(name_node, ast.Name):
                        self.local_names.add(name_node.id)
        self.local_names -= self.declared_global

    def _parameter_names(self) -> Set[str]:
        args = self.symbol.node.args
        names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        return names

    @staticmethod
    def _assign_targets(
        node: ast.AST,
    ) -> List[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            return [node.target]
        return []

    def _own_nodes(self) -> List[ast.AST]:
        found: List[ast.AST] = []
        stack: List[ast.AST] = list(self.symbol.node.body)
        while stack:
            current = stack.pop()
            found.append(current)
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)
        return found

    # -- classification -------------------------------------------------
    def _is_global_name(self, name: str) -> bool:
        if name in self.declared_global:
            return True
        if name in self.local_names:
            return False
        return name in self.module_globals

    def _record_global(self, name: str, line: int) -> None:
        self.writes.append(
            GlobalWrite(
                module=self.symbol.module,
                name=name,
                writer=self.symbol.ident,
                path=self.symbol.path,
                line=line,
            )
        )

    def collect(self) -> Effects:
        for node in self._own_nodes():
            self._classify(node)
        return Effects(
            global_writes=tuple(sorted(set(self.writes))),
            instance_writes=tuple(sorted(self.instance_lines)),
            closure_writes=tuple(sorted(self.closure_lines)),
            io_calls=tuple(sorted(self.io_lines)),
            memoized=_is_memoized(self.symbol),
        )

    def _classify(self, node: ast.AST) -> None:
        if isinstance(node, ast.Nonlocal):
            self.closure_lines.add(node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for target in self._assign_targets(node):
                self._classify_store(target)
        elif isinstance(node, ast.Call):
            self._classify_call(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._classify_store(target)

    def _classify_store(self, target: ast.expr) -> None:
        line = int(getattr(target, "lineno", self.symbol.lineno))
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self._record_global(target.id, line)
        elif isinstance(target, ast.Subscript):
            receiver = target.value
            if isinstance(receiver, ast.Name):
                if self._is_global_name(receiver.id):
                    self._record_global(receiver.id, line)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in ("self", "cls")
            ):
                self.instance_lines.add(line)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id in (
                "self",
                "cls",
            ):
                self.instance_lines.add(line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_store(element)

    def _classify_call(self, node: ast.Call) -> None:
        line = node.lineno
        func = node.func
        # I/O vocabulary.
        if isinstance(func, ast.Name) and func.id in _IO_CALL_NAMES:
            self.io_lines.add(line)
            return
        dotted = dotted_expr(func)
        if dotted and dotted.split(".")[0] in _IO_MODULE_HEADS and "." in dotted:
            self.io_lines.add(line)
            return
        # Mutating method on a module-global container or on self.
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if self._is_global_name(receiver.id):
                    self._record_global(receiver.id, line)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in ("self", "cls")
            ):
                self.instance_lines.add(line)


def local_effects(symbol: FunctionSymbol, table: SymbolTable) -> Effects:
    """The syntactically inferred effects of one function body."""
    return _LocalEffectVisitor(symbol, table).collect()


# ----------------------------------------------------------------------
# Fixpoint propagation
# ----------------------------------------------------------------------
def _tarjan_sccs(graph: CallGraph) -> List[Tuple[str, ...]]:
    """Strongly connected components in reverse topological order.

    Iterative Tarjan over the (deterministically ordered) call edges; the
    emission order of Tarjan is already reverse-topological on the
    condensation, which is exactly the order fixpoint propagation wants.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    def successors(ident: str) -> List[str]:
        return sorted({site.callee for site in graph.callees(ident)})

    for root in sorted(graph.table.functions):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = successors(node)
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def propagate_effects(
    graph: CallGraph, local: Optional[Dict[str, Effects]] = None
) -> Dict[str, Effects]:
    """Local effects closed over the call graph (callee effects absorbed).

    Processes Tarjan SCCs in reverse topological order; within an SCC the
    members share one merged summary, so mutual recursion reaches its
    fixpoint in a single pass (effects only grow, and every callee outside
    the SCC is already final).
    """
    table = graph.table
    if local is None:
        local = {
            ident: local_effects(table.functions[ident], table)
            for ident in sorted(table.functions)
        }
    final: Dict[str, Effects] = {}
    for component in _tarjan_sccs(graph):
        members: FrozenSet[str] = frozenset(component)
        merged = Effects()
        for ident in component:
            merged = local.get(ident, Effects()).merged_with(merged)
            for site in graph.callees(ident):
                if site.callee in members:
                    continue  # intra-SCC: absorbed via the shared summary
                callee_effects = final.get(site.callee)
                if callee_effects is not None:
                    merged = merged.merged_with(callee_effects)
        for ident in component:
            final[ident] = Effects(
                global_writes=merged.global_writes,
                instance_writes=merged.instance_writes,
                closure_writes=merged.closure_writes,
                io_calls=merged.io_calls,
                memoized=local.get(ident, Effects()).memoized,
            )
    return final


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def effects_to_dict(
    local: Dict[str, Effects], propagated: Dict[str, Effects]
) -> Dict[str, object]:
    """JSON-serializable form of both effect layers."""

    def one(effects: Effects) -> Dict[str, object]:
        return {
            "global_writes": [
                {
                    "module": write.module,
                    "name": write.name,
                    "writer": write.writer,
                    "path": write.path,
                    "line": write.line,
                }
                for write in effects.global_writes
            ],
            "instance_writes": list(effects.instance_writes),
            "closure_writes": list(effects.closure_writes),
            "io_calls": list(effects.io_calls),
            "memoized": effects.memoized,
            "pure": effects.is_pure,
        }

    return {
        "version": 1,
        "local": {ident: one(local[ident]) for ident in sorted(local)},
        "propagated": {
            ident: one(propagated[ident]) for ident in sorted(propagated)
        },
    }


def effects_to_json(
    local: Dict[str, Effects], propagated: Dict[str, Effects], indent: int = 2
) -> str:
    """Serialise both effect layers to the ``repro lint --effects`` payload."""
    return json.dumps(effects_to_dict(local, propagated), indent=indent, sort_keys=True)


def effects_from_json(text: str) -> Dict[str, object]:
    """Decode an :func:`effects_to_json` payload (validating its version)."""
    payload = json.loads(text)
    if payload.get("version") != 1:
        raise ValueError(f"unsupported effects payload version: {payload.get('version')!r}")
    return {
        "version": 1,
        "local": payload.get("local", {}),
        "propagated": payload.get("propagated", {}),
    }

"""Determinism & fork-safety static analysis (the ``repro lint`` suite).

An AST-based lint engine purpose-built for this repository's reproduction
contract: schedules, Table rows and sweep winners must be byte-identical
across runs, worker counts and platforms.  The general-purpose linters
(ruff, mypy) run alongside in CI; this package checks the properties they
cannot see -- hash-order iteration feeding schedule output, ambient
process state in solver code, float equality on makespan arithmetic,
fork-hostile executor payloads, wire-format drift and registry hygiene.

Public surface::

    from repro.staticcheck import run_lint, Finding

    report = run_lint([Path("src/repro")])
    for finding in report.findings:
        print(finding.render())

Rules are plugins (the solver-registry idiom): subclass
:class:`~repro.staticcheck.engine.LintRule`, decorate with
:func:`~repro.staticcheck.engine.register_rule`, and the engine picks the
rule up by its ``REPnnn`` code.

Project rules (``check_project``) additionally see the interprocedural
layer through :meth:`~repro.staticcheck.engine.ProjectContext.analysis`:
a cross-module symbol table, the project call graph (registry dispatch
and executor entry points resolved) and per-function side-effect
summaries -- see :mod:`repro.staticcheck.analysis`.
"""

from repro.staticcheck.analysis import (
    CallGraph,
    Effects,
    ProjectAnalysis,
    SymbolTable,
    analyze_paths,
)
from repro.staticcheck.engine import (
    ENGINE_RULE,
    LintError,
    LintReport,
    LintRule,
    ModuleContext,
    ProjectContext,
    RuleInfo,
    RuleRegistry,
    default_rule_registry,
    discover_files,
    load_module_context,
    parse_suppressions,
    register_rule,
    run_lint,
)
from repro.staticcheck.findings import (
    Finding,
    findings_from_json,
    findings_to_json,
)
from repro.staticcheck.schema import (
    DEFAULT_SCHEMA_RELPATH,
    WIRE_CLASSES,
    WireSchemaError,
    check_wire_drift,
    default_wire_drifts,
    generate_schema,
    write_schema,
)

__all__ = [
    "CallGraph",
    "Effects",
    "ProjectAnalysis",
    "SymbolTable",
    "analyze_paths",
    "ENGINE_RULE",
    "LintError",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "ProjectContext",
    "RuleInfo",
    "RuleRegistry",
    "default_rule_registry",
    "discover_files",
    "load_module_context",
    "parse_suppressions",
    "register_rule",
    "run_lint",
    "Finding",
    "findings_from_json",
    "findings_to_json",
    "DEFAULT_SCHEMA_RELPATH",
    "WIRE_CLASSES",
    "WireSchemaError",
    "check_wire_drift",
    "default_wire_drifts",
    "generate_schema",
    "write_schema",
]

"""The AST lint engine behind ``repro lint``.

The engine mirrors the solver layer's architecture on purpose: rules are
small plugins registered by decorator into a process-wide
:class:`RuleRegistry` (exactly the :func:`~repro.solvers.registry.register_solver`
idiom), the engine owns discovery/parsing/suppression, and the output is a
list of frozen, JSON-round-trippable :class:`~repro.staticcheck.findings.Finding`
records.

Two kinds of checks exist:

* **module rules** (:meth:`LintRule.check_module`) run once per parsed
  source file and see a :class:`ModuleContext` (path, AST, source lines and
  a *scope hint* -- the file's path relative to the ``repro`` package, used
  to restrict determinism rules to the modules that feed schedule output);
* **project rules** (:meth:`LintRule.check_project`) run once per lint
  invocation and see a :class:`ProjectContext` -- the wire-format freeze
  check (REP005) lives here, diffing dataclass shapes against the pinned
  ``benchmarks/wire_schema.json`` snapshot.

False positives are suppressed inline with ``# repro: noqa REP00x`` (one
or more comma/space-separated codes).  A bare ``# repro: noqa`` -- a
*blanket* suppression -- is itself reported as a finding (rule ``REP000``):
the acceptance bar for this suite is "zero blanket suppressions", so the
engine enforces it rather than trusting review to catch it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    cast,
)

from repro.staticcheck.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.staticcheck.analysis import ProjectAnalysis

#: Matches a ``repro: noqa`` comment with an optional code list.  The
#: colon after ``repro`` is required: it namespaces the pragma away from
#: the standard noqa comments that ruff/flake8 own.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b:?\s*(?P<codes>[A-Z][A-Z0-9]*(?:[,\s]+[A-Z][A-Z0-9]*)*)?"
)

#: Rule code reserved for the engine itself (blanket-suppression policing).
ENGINE_RULE = "REP000"


class LintError(ValueError):
    """Raised for unknown rules, unreadable paths or bad engine input."""


@dataclass(frozen=True)
class ModuleContext:
    """Everything a module rule may look at for one source file.

    ``module`` is the scope hint: the file's path relative to the ``repro``
    package root (e.g. ``"core/scheduler.py"``) when the file lives inside
    one, else ``""``.  Rules with declared scopes skip files whose hint is
    non-empty and matches none of their prefixes; files *outside* a
    recognised package layout (fixtures, ad-hoc scripts) always see every
    rule, which keeps the rule fixtures in ``tests/`` trivial.
    """

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]


@dataclass(frozen=True)
class ProjectContext:
    """Everything a project rule may look at for one lint invocation.

    ``modules`` holds every parsed file of the invocation, so project
    rules can cross-reference the whole tree.  :meth:`analysis` builds the
    interprocedural layer (symbol table, call graph, effect summaries)
    lazily, exactly once per invocation -- the REP007--REP010 rules all
    share the same :class:`~repro.staticcheck.analysis.ProjectAnalysis`.
    """

    source_roots: Tuple[Path, ...]
    schema_path: Optional[Path]
    modules: Tuple[ModuleContext, ...] = ()
    _cache: Dict[str, object] = field(default_factory=dict, compare=False, repr=False)

    def analysis(self) -> "ProjectAnalysis":
        """The shared interprocedural analysis (built on first use)."""
        cached = self._cache.get("analysis")
        if cached is None:
            from repro.staticcheck.analysis import analyze_modules

            cached = analyze_modules(
                [
                    (context.path, context.display_path, context.source, context.tree)
                    for context in self.modules
                ],
                self.source_roots,
            )
            self._cache["analysis"] = cached
        return cast("ProjectAnalysis", cached)


class LintRule:
    """Base class for lint rules (subclass and register with ``@register_rule``).

    Subclasses set ``code``/``name``/``description`` (the registry entry)
    and ``scopes`` (path prefixes relative to the ``repro`` package root;
    empty means every file) and override :meth:`check_module` and/or
    :meth:`check_project`.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    severity: str = "error"
    scopes: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        """True when this rule should run on a file with scope hint ``module``."""
        if not self.scopes or not module:
            return True
        return module.startswith(self.scopes)

    def check_module(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed source file (default: none)."""
        return iter(())

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        """Yield project-wide findings, once per invocation (default: none)."""
        return iter(())

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """A finding of this rule at an AST node's location."""
        return Finding(
            path=context.display_path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)),
            rule=self.code,
            severity=self.severity,
            message=message,
        )


@dataclass(frozen=True)
class RuleInfo:
    """One registry entry: the canonical code, factory and description."""

    code: str
    factory: Callable[[], LintRule]
    name: str
    description: str


class RuleRegistry:
    """A mutable mapping of rule codes to rule factories.

    The exact shape of :class:`~repro.solvers.registry.SolverRegistry`,
    applied to lint rules: register by decorator, look up by code,
    ``describe()`` for the CLI listing.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, RuleInfo] = {}

    def register(
        self,
        code: str,
        factory: Callable[[], LintRule],
        name: str,
        description: str,
        replace: bool = False,
    ) -> RuleInfo:
        """Register a rule factory under ``code`` (``REPnnn``)."""
        key = code.strip().upper()
        if not re.fullmatch(r"REP\d{3}", key):
            raise LintError(f"rule code must look like REP001, got {code!r}")
        if key in self._entries and not replace:
            raise LintError(
                f"rule {key!r} is already registered; pass replace=True to override"
            )
        info = RuleInfo(code=key, factory=factory, name=name, description=description)
        self._entries[key] = info
        return info

    def codes(self) -> List[str]:
        """All registered rule codes, sorted."""
        return sorted(self._entries)

    def __contains__(self, code: object) -> bool:
        return isinstance(code, str) and code.strip().upper() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def info(self, code: str) -> RuleInfo:
        """The registry entry for one rule (unknown codes raise)."""
        key = code.strip().upper()
        try:
            return self._entries[key]
        except KeyError:
            raise LintError(f"unknown rule {code!r}; known: {self.codes()}") from None

    def create(self, code: str) -> LintRule:
        """Instantiate one rule."""
        return self.info(code).factory()

    def create_all(self, select: Optional[Sequence[str]] = None) -> List[LintRule]:
        """Instantiate the selected rules (all of them by default)."""
        codes = self.codes() if select is None else [self.info(c).code for c in select]
        return [self.create(code) for code in codes]

    def describe(self) -> str:
        """Multi-line listing of every rule (the ``repro lint --list-rules`` output)."""
        if not self._entries:
            return "(no rules registered)"
        width = max(len(info.name) for info in self._entries.values())
        lines = []
        for code in self.codes():
            info = self._entries[code]
            lines.append(f"{info.code}  {info.name:<{width}}  {info.description}")
        return "\n".join(lines)


# The process-wide registry the built-in rules register into.
_DEFAULT_REGISTRY = RuleRegistry()


def default_rule_registry() -> RuleRegistry:
    """The process-wide default registry (with all built-in rules)."""
    # Importing the rules lazily avoids a cycle at package import time
    # while guaranteeing the default registry is always populated --
    # exactly the solver registry's bootstrap idiom.
    import repro.staticcheck.rules  # noqa: F401

    return _DEFAULT_REGISTRY


def register_rule(
    cls: Optional[Type[LintRule]] = None,
    *,
    registry: Optional[RuleRegistry] = None,
    replace: bool = False,
) -> Callable[[Type[LintRule]], Type[LintRule]]:
    """Class decorator registering a :class:`LintRule` subclass.

    Usable bare (``@register_rule``) or parameterised
    (``@register_rule(registry=...)``); reads ``code``/``name``/
    ``description`` from the class attributes.
    """

    def decorate(rule_cls: Type[LintRule]) -> Type[LintRule]:
        target = registry if registry is not None else _DEFAULT_REGISTRY
        target.register(
            rule_cls.code,
            rule_cls,
            name=rule_cls.name or rule_cls.__name__,
            description=rule_cls.description,
            replace=replace,
        )
        return rule_cls

    if cls is not None:  # bare @register_rule
        return decorate(cls)
    return decorate


# ----------------------------------------------------------------------
# Suppression (# repro: noqa REP00x)
# ----------------------------------------------------------------------
def parse_suppressions(
    source: str, display_path: str
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Per-line suppression codes, plus findings for blanket suppressions.

    Returns ``(suppressions, blanket_findings)`` where ``suppressions``
    maps 1-based line numbers to the set of rule codes suppressed there.
    A bare ``repro: noqa`` comment with no codes suppresses nothing and is
    reported as a :data:`ENGINE_RULE` finding instead.

    Only real ``COMMENT`` tokens count -- the source is tokenized, so a
    pragma *mentioned* inside a docstring or string literal (as this very
    module does) neither suppresses nor trips the blanket check.
    """
    suppressions: Dict[int, Set[str]] = {}
    blanket: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return suppressions, blanket  # the file already parsed; be lenient
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        lineno, start_column = token.start
        codes = match.group("codes")
        if not codes:
            blanket.append(
                Finding(
                    path=display_path,
                    line=lineno,
                    column=start_column + match.start(),
                    rule=ENGINE_RULE,
                    severity="error",
                    message=(
                        "blanket 'repro: noqa' suppressions are forbidden; "
                        "name the suppressed rule(s), e.g. 'repro: noqa REP001'"
                    ),
                )
            )
            continue
        suppressions.setdefault(lineno, set()).update(
            code for code in re.split(r"[,\s]+", codes) if code
        )
    return suppressions, blanket


# ----------------------------------------------------------------------
# Discovery and execution
# ----------------------------------------------------------------------
def _scope_hint(path: Path) -> str:
    """The path relative to the ``repro`` package root, or ``""``.

    Recognises both an installed/ checked-out ``.../repro/<module>`` layout
    and the conventional ``src/repro/`` source tree.  Files outside any
    ``repro`` package get the empty hint (every rule applies).
    """
    parts = path.resolve().parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "repro" and (
            index == 1 or parts[index - 2] in ("src", "site-packages")
        ):
            return "/".join(parts[index:])
    return ""


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            found.add(path)
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
    return sorted(found)


def load_module_context(path: Path, root: Optional[Path] = None) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext` (syntax errors raise)."""
    source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    display = str(path)
    if root is not None:
        try:
            display = str(Path(path).resolve().relative_to(Path(root).resolve()))
        except ValueError:
            display = str(path)
    return ModuleContext(
        path=Path(path),
        display_path=display,
        module=_scope_hint(Path(path)),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


@dataclass(frozen=True)
class LintReport:
    """The outcome of one :func:`run_lint` invocation."""

    findings: Tuple[Finding, ...]
    checked_files: int
    suppressed: int
    rules: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no finding of severity ``error`` survived."""
        return not any(f.severity == "error" for f in self.findings)


def run_lint(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Sequence[str] = (),
    registry: Optional[RuleRegistry] = None,
    schema_path: Optional[Path] = None,
    source_roots: Sequence[Path] = (),
    display_root: Optional[Path] = None,
) -> LintReport:
    """Run the lint suite over ``paths`` and return the surviving findings.

    Parameters
    ----------
    paths:
        Files and/or directories to lint (directories recurse over ``*.py``).
    select:
        Rule codes to run (default: every registered rule).
    ignore:
        Rule codes to drop from the selection.
    registry:
        Rule registry to draw from (default: the process-wide registry).
    schema_path:
        Pinned wire-schema snapshot for the freeze check (REP005); ``None``
        lets the rule report the snapshot as missing when it is selected.
    source_roots:
        Import roots used to resolve the schema's module keys to files
        (default: derived from the linted paths).
    display_root:
        Paths in findings are reported relative to this directory.
    """
    rules_registry = registry if registry is not None else default_rule_registry()
    rules = rules_registry.create_all(select)
    ignored = {rules_registry.info(code).code for code in ignore}
    rules = [rule for rule in rules if rule.code not in ignored]

    files = discover_files(paths)
    roots = tuple(Path(r) for r in source_roots)
    if not roots:
        roots = tuple(sorted({_default_source_root(path) for path in files}))
    contexts = [load_module_context(path, root=display_root) for path in files]
    project = ProjectContext(
        source_roots=roots, schema_path=schema_path, modules=tuple(contexts)
    )

    findings: List[Finding] = []
    suppressed = 0
    suppressions_by_path: Dict[str, Dict[int, Set[str]]] = {}
    for context in contexts:
        suppressions, blanket = parse_suppressions(
            context.source, context.display_path
        )
        suppressions_by_path[context.display_path] = suppressions
        findings.extend(blanket)
        for rule in rules:
            if not rule.applies_to(context.module):
                continue
            for finding in rule.check_module(context):
                if finding.rule in suppressions.get(finding.line, ()):
                    suppressed += 1
                    continue
                findings.append(finding)
    for rule in rules:
        # Project findings honour the same per-line suppressions as
        # module findings (keyed by the finding's display path).
        for finding in rule.check_project(project):
            per_line = suppressions_by_path.get(finding.path, {})
            if finding.rule in per_line.get(finding.line, ()):
                suppressed += 1
                continue
            findings.append(finding)
    return LintReport(
        findings=tuple(sorted(findings)),
        checked_files=len(files),
        suppressed=suppressed,
        rules=tuple(rule.code for rule in rules),
    )


def _default_source_root(path: Path) -> Path:
    """The import root implied by a linted path (the dir above ``repro``)."""
    resolved = Path(path).resolve()
    for parent in resolved.parents:
        if parent.name == "repro":
            return parent.parent
    return resolved.parent

"""REP005: wire-format freeze for the solver layer's dataclasses.

A project-level rule: once per lint invocation it re-extracts the shapes
of the wire dataclasses (:data:`~repro.staticcheck.schema.WIRE_CLASSES`)
from the AST and diffs them against the pinned
``benchmarks/wire_schema.json`` snapshot.  Every drift -- field added,
removed, re-typed, re-defaulted or re-ordered -- is one finding, and a
missing snapshot is itself a finding (a freeze gate that silently skips
is no gate).

After *reviewing* an intentional wire change, regenerate the snapshot::

    repro lint --write-wire-schema
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck import schema
from repro.staticcheck.engine import (
    Finding,
    LintRule,
    ProjectContext,
    register_rule,
)


@register_rule
class WireSchemaRule(LintRule):
    """Unreviewed drift of the pinned wire-format snapshot."""

    code = "REP005"
    name = "wire-format-freeze"
    description = (
        "ScheduleRequest/ScheduleResult/SolverCapabilities/SchedulerConfig/"
        "ConstraintSet shapes must match the pinned benchmarks/wire_schema.json; "
        "regenerate with 'repro lint --write-wire-schema' after review"
    )

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        drifts = schema.check_wire_drift(context.schema_path, context.source_roots)
        display = (
            str(context.schema_path)
            if context.schema_path is not None
            else "wire-schema"
        )
        for drift in drifts:
            yield Finding(
                path=display,
                line=1,
                column=0,
                rule=self.code,
                severity=self.severity,
                message=drift,
            )

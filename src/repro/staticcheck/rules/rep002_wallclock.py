"""REP002: unseeded randomness and wall-clock reads in solver/kernel code.

A schedule, Table row or sweep winner must be a pure function of the
request.  ``random.random()`` (the module-level, process-seeded generator),
``random.Random()`` *without* a seed, ``random.seed()`` without arguments,
``time.time``/``time.time_ns`` and ``datetime.now``/``utcnow``/``today``
all smuggle ambient process state into the computation.  ``time.perf_counter``
and ``time.monotonic`` stay legal: they feed *timing metadata*
(``wall_time`` is excluded from result equality), not result content.

The fix is always the same: thread an explicit seed (``random.Random(seed)``)
or take the timestamp at the reporting layer, outside solver code.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.staticcheck.engine import Finding, LintRule, ModuleContext, register_rule
from repro.staticcheck.rules._astutil import dotted_name

#: Wall-clock reads (dotted suffixes; ``datetime.datetime.now`` matches via
#: its last two components).
WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: ``random`` module functions driven by the shared, process-seeded state.
UNSEEDED_RANDOM = (
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "getrandbits",
    "randbytes",
)


@register_rule
class WallClockRule(LintRule):
    """Unseeded ``random`` / wall-clock use inside solver or kernel code."""

    code = "REP002"
    name = "unseeded-random-wallclock"
    description = (
        "solver/kernel code must be a pure function of the request: no "
        "module-level random, no unseeded random.Random(), no time.time/"
        "datetime.now (time.perf_counter for timing metadata is fine)"
    )
    scopes = ("core/", "wrapper/", "engine/", "solvers/", "schedule/", "baselines/")

    def check_module(self, context: ModuleContext) -> Iterator[Finding]:
        random_imports = _names_imported_from(context.tree, "random")
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if any(dotted == clock or dotted.endswith("." + clock) for clock in WALL_CLOCK):
                yield self.finding(
                    context,
                    node,
                    f"wall-clock read {dotted}() makes results depend on when "
                    "they ran; timestamp at the reporting layer instead",
                )
                continue
            if dotted.startswith("random.") and dotted.split(".", 1)[1] in UNSEEDED_RANDOM:
                yield self.finding(
                    context,
                    node,
                    f"{dotted}() draws from the process-seeded global generator; "
                    "thread an explicit random.Random(seed) through instead",
                )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in random_imports
                and node.func.id in UNSEEDED_RANDOM
            ):
                yield self.finding(
                    context,
                    node,
                    f"{node.func.id}() (imported from random) draws from the "
                    "process-seeded global generator; use random.Random(seed)",
                )
                continue
            is_rng_constructor = dotted in ("random.Random", "random.SystemRandom") or (
                isinstance(node.func, ast.Name)
                and node.func.id in ("Random", "SystemRandom")
                and node.func.id in random_imports
            )
            if is_rng_constructor and not node.args and not node.keywords:
                yield self.finding(
                    context,
                    node,
                    "random.Random() without a seed is seeded from the OS; "
                    "pass an explicit seed",
                )
            elif dotted in ("random.seed",) and not node.args:
                yield self.finding(
                    context,
                    node,
                    "random.seed() without arguments re-seeds from the OS; "
                    "pass an explicit seed",
                )


def _names_imported_from(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound by ``from <module> import ...`` statements."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names

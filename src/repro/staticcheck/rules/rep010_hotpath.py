"""REP010: accidental O(n^2) idioms on the scheduler hot path.

``core/`` and ``wrapper/`` are the measured hot paths (the PR 3/PR 4
benchmarks gate on them); a linear idiom quietly nested inside a loop
turns the scheduler's carefully-incremental event loop back into a
quadratic one the moment the synthetic 1000-core SOCs land.  The rule
flags four shapes, each only when the shallow syntactic type pass can
*prove* the receiver is a list by construction (so ``x in some_set`` or
``x in some_dict`` never trips it):

* **list membership in a loop** -- ``x in items`` / ``x not in items``
  inside ``for``/``while``, where ``items`` is list-typed: each test is
  O(n), the loop makes it O(n^2); use a set/dict alongside the list;
* **repeated list concatenation** -- ``items = items + [...]`` (or the
  reversed form) inside a loop copies the whole list every iteration;
  use ``append``/``extend``;
* **``.index()`` in a loop** -- a linear scan per iteration; carry the
  index in the loop state instead;
* **``sorted()`` inside the scheduler event loop** -- a full re-sort per
  ``while``-iteration is exactly what PR 4's lazily-invalidated heaps
  removed; keep a heap or insert in order.

Scoped to ``core/`` and ``wrapper/``; fixture files outside the package
layout see the rule everywhere (the engine's usual scope-hint contract).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from repro.staticcheck.engine import (
    Finding,
    LintRule,
    ModuleContext,
    ProjectContext,
    register_rule,
)
from repro.staticcheck.rules._astutil import (
    call_name,
    collect_list_names,
    walk_functions,
)

LoopNode = Union[ast.For, ast.AsyncFor, ast.While]


def _list_param_names(function: ast.AST) -> Set[str]:
    """Parameters annotated as lists."""
    names: Set[str] = set()
    args = getattr(function, "args", None)
    if args is None:
        return names
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is None:
            continue
        head = ast.unparse(arg.annotation).split("[")[0].strip().lower()
        if head in ("list", "typing.list", "sequence", "typing.sequence"):
            names.add(arg.arg)
    return names


def _walk_loop(loop: LoopNode) -> Iterator[ast.AST]:
    """Nodes directly inside one loop body.

    Nested function definitions are excluded (separate scopes) and so are
    nested *loops*: each loop is visited by :meth:`_own_loops` on its own,
    so a node is only ever checked against its innermost enclosing loop.
    """
    stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
    if isinstance(loop, ast.While):
        stack.append(loop.test)  # the test re-evaluates every iteration
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.For, ast.AsyncFor)):
            stack.append(node.iter)  # evaluated in this loop's iterations
            continue
        if isinstance(node, ast.While):
            continue  # its test re-evaluates per *inner* iteration: owned there
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


@register_rule
class HotPathComplexityRule(LintRule):
    """Quadratic idioms in loops on the core/wrapper hot paths."""

    code = "REP010"
    name = "hot-path-complexity"
    description = (
        "O(n^2) idioms in core/ and wrapper/ loops: list membership tests, "
        "repeated list concatenation, .index() scans, and sorted() inside "
        "the scheduler event loop"
    )
    scopes = ("core/", "wrapper/")

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        for module in context.modules:
            if not self.applies_to(module.module):
                continue
            for function in walk_functions(module.tree):
                list_names = collect_list_names(function.body)
                list_names |= _list_param_names(function)
                for loop in self._own_loops(function):
                    yield from self._check_loop(module, loop, list_names)

    @staticmethod
    def _own_loops(function: ast.AST) -> List[LoopNode]:
        """Loops belonging to this function (not to nested functions)."""
        loops: List[LoopNode] = []
        stack: List[ast.AST] = list(getattr(function, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                loops.append(node)
            for child in ast.iter_child_nodes(node):
                stack.append(child)
        return loops

    def _check_loop(
        self,
        module: ModuleContext,
        loop: LoopNode,
        list_names: Set[str],
    ) -> Iterator[Finding]:
        for node in _walk_loop(loop):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue  # inner loops are visited as their own loop
            # x in items / x not in items with a list receiver.
            if isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if (
                        isinstance(op, (ast.In, ast.NotIn))
                        and isinstance(comparator, ast.Name)
                        and comparator.id in list_names
                    ):
                        yield self._finding(
                            module,
                            node,
                            f"membership test against list {comparator.id!r} "
                            "inside a loop is O(n) per iteration; keep a "
                            "set/dict alongside the list",
                        )
            # items = items + [...] (either operand order).
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.BinOp)
                    and isinstance(value.op, ast.Add)
                    and any(
                        isinstance(operand, ast.Name) and operand.id == target.id
                        for operand in (value.left, value.right)
                    )
                    and (
                        target.id in list_names
                        or any(
                            isinstance(operand, (ast.List, ast.ListComp))
                            for operand in (value.left, value.right)
                        )
                    )
                ):
                    yield self._finding(
                        module,
                        node,
                        f"list concatenation {target.id!r} = {target.id!r} + ... "
                        "inside a loop copies the whole list each iteration; "
                        "use append/extend",
                    )
            # items.index(...) with a list receiver.
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "index"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in list_names
                ):
                    yield self._finding(
                        module,
                        node,
                        f"{func.value.id}.index(...) inside a loop is a linear "
                        "scan per iteration; track the index in the loop state",
                    )
                # sorted() per iteration of the (while-driven) event loop.
                elif isinstance(loop, ast.While) and call_name(func) == "sorted":
                    yield self._finding(
                        module,
                        node,
                        "sorted() inside a while-driven event loop re-sorts "
                        "every iteration; keep a heap or insert in order",
                    )

    def _finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)),
            rule=self.code,
            severity=self.severity,
            message=message,
        )

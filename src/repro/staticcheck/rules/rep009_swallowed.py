"""REP009: swallowed failures on the parallel path.

The executor's degradation contract (PR 5) is explicit: when the pool
path fails, the engine *warns and sets* ``degraded_to_serial`` rather
than silently serialising.  A broad/bare ``except`` in ``engine/`` or
``solvers/`` that discards the exception -- no re-raise, no degraded
flag, no logging -- breaks that contract in the worst possible way: a
worker-side failure turns into a silently wrong or silently slower
answer, and nothing in the result records that it happened.

A handler is reported when all of the following hold:

* it catches broadly -- bare ``except``, ``except Exception`` or
  ``except BaseException`` (also inside a tuple);
* its body contains no ``raise``;
* its body neither assigns to a name/attribute containing ``degraded``
  nor calls anything whose name contains ``warn``/``log``/``error``/
  ``exception``/``failure`` (the sanctioned ways of recording the
  failure -- ``failure`` covers the fault journal's
  ``journal.failure(...)``/``FailureRecord`` vocabulary from PR 8).

When the enclosing function is reachable from a worker entry point the
finding carries the witness call chain -- a swallowed failure *on the
parallel path* is exactly the case the rule exists for.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.staticcheck.analysis import ProjectAnalysis

from repro.staticcheck.engine import (
    Finding,
    LintRule,
    ModuleContext,
    ProjectContext,
    register_rule,
)
from repro.staticcheck.rules._astutil import call_name

#: Exception names that make a handler "broad".
BROAD_EXCEPTIONS = ("Exception", "BaseException")

#: Substrings of attribute/name stores that record degradation.
DEGRADED_MARKERS = ("degraded",)

#: Substrings of call names that record the failure out-of-band.
REPORTING_CALLS = ("warn", "log", "error", "exception", "print", "failure")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare handler, or one naming Exception/BaseException (even in a tuple)."""
    if handler.type is None:
        return True
    candidates: Tuple[ast.expr, ...] = (handler.type,)
    if isinstance(handler.type, ast.Tuple):
        candidates = tuple(handler.type.elts)
    for candidate in candidates:
        tail = ""
        if isinstance(candidate, ast.Name):
            tail = candidate.id
        elif isinstance(candidate, ast.Attribute):
            tail = candidate.attr
        if tail in BROAD_EXCEPTIONS:
            return True
    return False


def _handler_discards(handler: ast.ExceptHandler) -> bool:
    """True when the handler body neither re-raises nor records the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = ""
                if isinstance(target, ast.Name):
                    name = target.id
                elif isinstance(target, ast.Attribute):
                    name = target.attr
                if any(marker in name.lower() for marker in DEGRADED_MARKERS):
                    return False
        if isinstance(node, ast.Call):
            called = call_name(node.func).lower()
            if any(marker in called for marker in REPORTING_CALLS):
                return False
    return True


@register_rule
class SwallowedFailureRule(LintRule):
    """Broad except handlers that discard exceptions in engine/solvers."""

    code = "REP009"
    name = "swallowed-failure"
    description = (
        "broad/bare 'except' in engine/ or solvers/ must re-raise, set a "
        "degraded flag, or log -- silently discarding failures breaks the "
        "executor's degradation contract"
    )
    scopes = ("engine/", "solvers/")

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        analysis = context.analysis()
        reachable = analysis.worker_reachable()
        for module in context.modules:
            if not self.applies_to(module.module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not (_is_broad(node) and _handler_discards(node)):
                    continue
                chain: Tuple[str, ...] = ()
                ident = self._enclosing_function(analysis, module, node)
                if ident is not None and ident in reachable:
                    chain = reachable[ident]
                label = (
                    "bare 'except:'"
                    if node.type is None
                    else f"'except {ast.unparse(node.type)}'"
                )
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.code,
                    severity=self.severity,
                    message=(
                        f"{label} discards the exception without re-raising, "
                        "setting a degraded flag, or logging; narrow the "
                        "exception type or record the failure"
                    ),
                    chain=chain,
                )

    @staticmethod
    def _enclosing_function(
        analysis: "ProjectAnalysis", module: ModuleContext, node: ast.ExceptHandler
    ) -> Optional[str]:
        """The innermost project function containing ``node``, if any."""
        best: Optional[Tuple[int, str]] = None
        for ident, symbol in analysis.table.functions.items():
            if symbol.path != module.display_path:
                continue
            end = int(getattr(symbol.node, "end_lineno", symbol.lineno) or symbol.lineno)
            if symbol.lineno <= node.lineno <= end:
                candidate = (symbol.lineno, ident)
                if best is None or candidate > best:
                    best = candidate  # innermost = latest-starting enclosing def
        return best[1] if best is not None else None

"""REP004: fork-safety of ``FlatExecutor`` payloads and engine globals.

The flat executor (:mod:`repro.engine.executor`) keeps one persistent
``fork`` pool alive across dispatches.  Two patterns silently break that
model:

* **Unpicklable / closure-carrying task payloads.**  Lambdas, bound
  methods (``self.method``) and functions defined inside other functions
  submitted to a pool (``imap_unordered``, ``apply_async``, ...) either
  fail to pickle outright (``spawn``) or -- worse, under ``fork`` --
  capture a snapshot of enclosing mutable state that diverges from the
  parent's, so the "same" task computes different things depending on
  *when* the pool was forked.  Task payloads must be module-level
  functions taking explicit arguments.

* **Post-fork mutation of module-level mutable globals.**  A module-level
  ``dict``/``list``/``set`` mutated by parent-side code after the pool
  forked is invisible to the workers (each holds its own copy), so
  parent and worker disagree about shared state.  Worker-side caches must
  be installed by the pool initializer (``_init_worker`` /
  ``*_initializer`` functions are exempt) or travel inside the tasks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.staticcheck.engine import Finding, LintRule, ModuleContext, register_rule
from repro.staticcheck.rules._astutil import (
    call_name,
    module_level_mutable_globals,
    nested_function_names,
    walk_functions,
)

#: Pool / executor submission methods whose first argument is the payload.
SUBMISSION_METHODS = (
    "imap",
    "imap_unordered",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
)

#: Methods that mutate their receiver in place.
MUTATING_METHODS = (
    "append",
    "extend",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "insert",
    "appendleft",
)

#: Functions allowed to write module globals: pool initializers run once
#: per *worker*, which is exactly where worker-side state belongs.
INITIALIZER_NAMES = ("_init_worker",)
INITIALIZER_SUFFIXES = ("_initializer",)


def _is_initializer(name: str) -> bool:
    return name in INITIALIZER_NAMES or name.endswith(INITIALIZER_SUFFIXES)


@register_rule
class ForkSafetyRule(LintRule):
    """Closure payloads to pools; post-fork mutation of module globals."""

    code = "REP004"
    name = "fork-safety"
    description = (
        "executor task payloads must be module-level functions (no lambdas/"
        "bound methods/closures), and module-level mutable globals may only "
        "be written by worker initializers"
    )
    scopes = ("engine/",)

    def check_module(self, context: ModuleContext) -> Iterator[Finding]:
        nested = nested_function_names(context.tree)
        yield from self._check_submissions(context, nested)
        yield from self._check_global_mutation(context)

    # ------------------------------------------------------------------
    def _check_submissions(
        self, context: ModuleContext, nested: Set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node.func) not in SUBMISSION_METHODS:
                continue
            # Only method-style submissions (pool.imap_unordered(...)) are
            # executor dispatches; a bare map(...) builtin is not.
            if not isinstance(node.func, ast.Attribute):
                continue
            if not node.args:
                continue
            payload = node.args[0]
            if isinstance(payload, ast.Lambda):
                yield self.finding(
                    context,
                    payload,
                    "lambda submitted as a pool task payload; under fork it "
                    "captures parent state at dispatch time -- use a "
                    "module-level function with explicit arguments",
                )
            elif isinstance(payload, ast.Attribute) and isinstance(
                payload.value, ast.Name
            ) and payload.value.id == "self":
                yield self.finding(
                    context,
                    payload,
                    "bound method submitted as a pool task payload pickles "
                    "its whole instance; use a module-level function",
                )
            elif isinstance(payload, ast.Name) and payload.id in nested:
                yield self.finding(
                    context,
                    payload,
                    f"nested function {payload.id!r} submitted as a pool task "
                    "payload carries its closure; hoist it to module level",
                )
            elif _is_hazardous_partial(payload, nested):
                yield self.finding(
                    context,
                    payload,
                    "functools.partial over a bound method or closure "
                    "submitted as a pool task payload pickles the captured "
                    "instance/closure state; use a module-level function "
                    "with explicit arguments",
                )

    # ------------------------------------------------------------------
    def _check_global_mutation(self, context: ModuleContext) -> Iterator[Finding]:
        mutable = module_level_mutable_globals(context.tree)
        if not mutable:
            return
        for function in walk_functions(context.tree):
            if _is_initializer(function.name):
                continue
            local_names = _locally_bound_names(function)
            for node in ast.walk(function):
                target_name = _mutated_global(node, mutable, local_names)
                if target_name is not None:
                    yield self.finding(
                        context,
                        node,
                        f"module-level mutable global {target_name!r} is "
                        "mutated outside a worker initializer; forked workers "
                        "hold stale copies -- install worker state in the "
                        "pool initializer or pass it inside tasks",
                    )


def _is_hazardous_partial(payload: ast.expr, nested: Set[str]) -> bool:
    """A ``functools.partial(...)`` payload wrapping a bound method/closure.

    ``partial(self.method, ...)``, ``partial(obj.method, ...)`` and
    ``partial(nested_fn, ...)`` all smuggle instance or closure state into
    the pickled task exactly like submitting the callable directly would;
    ``partial(module_level_fn, ...)`` is fine and is not flagged.
    """
    if not isinstance(payload, ast.Call):
        return False
    if call_name(payload.func) != "partial":
        return False
    if not payload.args:
        return False
    wrapped = payload.args[0]
    if isinstance(wrapped, ast.Lambda):
        return True
    if isinstance(wrapped, ast.Attribute) and isinstance(wrapped.value, ast.Name):
        # Only self/cls receivers are provably bound methods; flagging any
        # attribute would false-positive on ``partial(math.pow, 2)``.
        return wrapped.value.id in ("self", "cls")
    if isinstance(wrapped, ast.Name) and wrapped.id in nested:
        return True
    return False


def _locally_bound_names(function: ast.AST) -> Set[str]:
    """Parameter and local-assignment names that shadow module globals."""
    names: Set[str] = set()
    args = getattr(function, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            names.add(arg.arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                names.add(arg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


def _mutated_global(
    node: ast.AST, mutable: Dict[str, int], local_names: Set[str]
) -> Optional[str]:
    """The module-global name this node mutates, if any."""
    # X[...] = value  /  del X[...]
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name in mutable and name not in local_names:
                    return name
    elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Subscript):
        if isinstance(node.target.value, ast.Name):
            name = node.target.value.id
            if name in mutable and name not in local_names:
                return name
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name in mutable and name not in local_names:
                    return name
    # X.append(...) etc.
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS and isinstance(
            node.func.value, ast.Name
        ):
            name = node.func.value.id
            if name in mutable and name not in local_names:
                return name
    return None

"""REP011: recovery handlers must journal or re-raise.

The fault-tolerant executor (PR 8) has a stronger contract than REP009's
"don't swallow": every handler on its *recovery path* -- anything that
catches a pool/timeout/broken-pipe/injected-fault class of exception in
``engine/`` -- must feed the structured fault journal (a
:class:`~repro.engine.faults.FailureRecord` via ``journal.failure(...)``,
a ``_TaskFailure``/``_RoundFailure`` reply, ...) or re-raise.  A recovery
handler that merely warns or logs free text passes REP009 but starves the
recovery ladder: the run finishes with an empty ``recovery_events`` trail
even though faults were handled, and the chaos harness can no longer
prove *how* a run recovered.

A handler is reported when all of the following hold:

* it catches a *recovery-class* exception -- the caught type's trailing
  name (any element, for tuples; every name, for bare grouping aliases
  like ``_POOL_DEATH_ERRORS``) contains one of ``pool``/``timeout``/
  ``broken``/``pipe``/``injected``/``fault`` (case-insensitive);
* its body contains no ``raise``;
* its body calls nothing whose name contains ``failure``/``journal``/
  ``record`` (the fault-journal vocabulary).

When the enclosing function is reachable from a worker entry point the
finding carries the witness call chain, exactly as REP009 does.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.staticcheck.analysis import ProjectAnalysis

from repro.staticcheck.engine import (
    Finding,
    LintRule,
    ModuleContext,
    ProjectContext,
    register_rule,
)
from repro.staticcheck.rules._astutil import call_name

#: Substrings (lowercased) of caught-type names that mark a recovery handler.
RECOVERY_EXCEPTION_MARKERS = (
    "pool",
    "timeout",
    "broken",
    "pipe",
    "injected",
    "fault",
)

#: Substrings of call names that feed the structured fault journal.
JOURNAL_CALLS = ("failure", "journal", "record")


def _caught_names(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    """Trailing identifiers of every exception type the handler names."""
    if handler.type is None:
        return ()
    candidates: Tuple[ast.expr, ...] = (handler.type,)
    if isinstance(handler.type, ast.Tuple):
        candidates = tuple(handler.type.elts)
    names = []
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            names.append(candidate.id)
        elif isinstance(candidate, ast.Attribute):
            names.append(candidate.attr)
    return tuple(names)


def _is_recovery_handler(handler: ast.ExceptHandler) -> bool:
    """True when any caught type name carries a recovery marker."""
    for name in _caught_names(handler):
        lowered = name.lower()
        if any(marker in lowered for marker in RECOVERY_EXCEPTION_MARKERS):
            return True
    return False


def _handler_journals(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or feeds the fault journal."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            called = call_name(node.func).lower()
            if any(marker in called for marker in JOURNAL_CALLS):
                return True
    return False


@register_rule
class UnjournalledRecoveryRule(LintRule):
    """Recovery-class except handlers that bypass the fault journal."""

    code = "REP011"
    name = "unjournalled-recovery"
    description = (
        "handlers catching pool/timeout/broken-pipe/fault exceptions in "
        "engine/ must record a FailureRecord (journal/failure/record call) "
        "or re-raise -- recovery the ladder cannot see breaks the chaos "
        "harness's determinism proof"
    )
    scopes = ("engine/",)

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        analysis = context.analysis()
        reachable = analysis.worker_reachable()
        for module in context.modules:
            if not self.applies_to(module.module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_recovery_handler(node):
                    continue
                if _handler_journals(node):
                    continue
                chain: Tuple[str, ...] = ()
                ident = self._enclosing_function(analysis, module, node)
                if ident is not None and ident in reachable:
                    chain = reachable[ident]
                caught = ", ".join(_caught_names(node))
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.code,
                    severity=self.severity,
                    message=(
                        f"'except {caught}' handles a recovery-class "
                        "exception without recording a FailureRecord or "
                        "re-raising; call the fault journal "
                        "(failure/journal/record) so the recovery ladder "
                        "sees it"
                    ),
                    chain=chain,
                )

    @staticmethod
    def _enclosing_function(
        analysis: "ProjectAnalysis", module: ModuleContext, node: ast.ExceptHandler
    ) -> Optional[str]:
        """The innermost project function containing ``node``, if any."""
        best: Optional[Tuple[int, str]] = None
        for ident, symbol in analysis.table.functions.items():
            if symbol.path != module.display_path:
                continue
            end = int(getattr(symbol.node, "end_lineno", symbol.lineno) or symbol.lineno)
            if symbol.lineno <= node.lineno <= end:
                candidate = (symbol.lineno, ident)
                if best is None or candidate > best:
                    best = candidate  # innermost = latest-starting enclosing def
        return best[1] if best is not None else None

"""REP001: nondeterministic iteration in modules that feed schedule output.

CPython iterates sets in hash order, and for strings the hash is salted
per process (``PYTHONHASHSEED``), so *any* observable ordering derived
from a ``set``/``frozenset`` -- a ``for`` loop, a comprehension, a
``tuple(...)``/``list(...)`` conversion -- can differ between two runs,
between the parent and a spawned worker, or between warm and cold caches.
The whole perf story of this repository rests on schedules and sweep
winners being byte-identical across ``workers`` counts, so set iteration
must be laundered through ``sorted(...)`` with a total-order key before
it can reach output.

Also flagged: ``sorted``/``.sort`` with a *partial-order* key
(``key=frozenset``/``key=set`` or a lambda returning a set) -- for
frozensets ``<`` means subset, which is not a total order, so the result
order still depends on the input order.

Suppress deliberate order-insensitive iteration with
``# repro: noqa REP001``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.staticcheck.engine import Finding, LintRule, ModuleContext, register_rule
from repro.staticcheck.rules._astutil import (
    ORDER_SAFE_CONSUMERS,
    call_name,
    is_set_expression,
    scope_bodies,
    walk_scope,
)

#: ``tuple(s)``/``list(s)`` materialise the set's hash order; ``iter``/
#: ``enumerate`` and ``str.join`` consume it element-by-element.
ORDER_SENSITIVE_CONSUMERS = ("tuple", "list", "iter", "enumerate", "join")


@register_rule
class NondeterministicIterationRule(LintRule):
    """Iterating a set/frozenset (or sorting with a partial-order key)."""

    code = "REP001"
    name = "nondeterministic-iteration"
    description = (
        "set/frozenset iteration order (hash order, salted per process) must "
        "not feed schedule output; wrap in sorted(...) with a total-order key"
    )
    scopes = (
        "core/",
        "wrapper/",
        "engine/",
        "solvers/",
        "schedule/",
        "soc/",
        "baselines/",
    )

    def check_module(self, context: ModuleContext) -> Iterator[Finding]:
        for body, set_names in scope_bodies(context.tree):
            reported: Set[Tuple[int, int]] = set()

            def report(node: ast.AST, message: str) -> Iterator[Finding]:
                key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
                if key not in reported:
                    reported.add(key)
                    yield self.finding(context, node, message)

            for node in walk_scope(body):
                if isinstance(node, ast.For) and is_set_expression(
                    node.iter, set_names
                ):
                    yield from report(
                        node.iter,
                        "iterating a set/frozenset yields hash order; "
                        "iterate sorted(...) instead",
                    )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for generator in node.generators:
                        if is_set_expression(generator.iter, set_names):
                            # A generator feeding a set/dict comprehension is
                            # order-insensitive only if the *result* is a
                            # set/dict; list/generator results leak order.
                            if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                                yield from report(
                                    generator.iter,
                                    "comprehension over a set/frozenset yields "
                                    "hash order; iterate sorted(...) instead",
                                )
                elif isinstance(node, ast.Call):
                    name = call_name(node.func)
                    if (
                        name in ORDER_SENSITIVE_CONSUMERS
                        and name not in ORDER_SAFE_CONSUMERS
                        and node.args
                        and is_set_expression(node.args[0], set_names)
                    ):
                        yield from report(
                            node.args[0],
                            f"{name}(...) over a set/frozenset materialises "
                            "hash order; wrap the set in sorted(...) first",
                        )
                    elif name in ("sorted", "sort"):
                        for keyword in node.keywords:
                            if keyword.arg == "key" and _is_partial_order_key(
                                keyword.value, set_names
                            ):
                                yield from report(
                                    keyword.value,
                                    "sort key returns a set/frozenset, whose "
                                    "'<' is subset (a partial order); use a "
                                    "total-order key such as key=sorted",
                                )


def _is_partial_order_key(node: ast.expr, set_names: Set[str]) -> bool:
    """True when a ``key=`` argument maps elements to sets."""
    if isinstance(node, ast.Name) and node.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Lambda):
        return is_set_expression(node.body, set_names)
    return False

"""REP013: service request handlers must journal the outcome or re-raise.

The scheduling service's crash-recovery proof (journal replay serving
byte-identical results) only holds if the write-ahead journal is a
*complete* account of every request's life.  A handler on the service
request path that catches an outcome-class exception -- a cancelled
solve, a solver error, a broad ``Exception``, a dead client pipe -- and
then neither settles the request (journalling its ``completed``/
``failed`` record) nor re-raises, silently drops a request: the client
never hears back, and a restarted server re-runs work the dead server
already decided.  This is REP011 lifted from the engine's fault journal
to the service's event journal.

A handler is reported when all of the following hold:

* it lives under ``service/``;
* it catches an *outcome-class* exception -- the caught type's trailing
  name (any element, for tuples) contains one of ``exception``/
  ``cancel``/``solvererror``/``oserror``/``brokenpipe``/
  ``protocolerror``/``connection`` (case-insensitive);
* its body contains no ``raise``;
* its body calls nothing whose name carries the settlement vocabulary --
  ``journal``/``record``/``fail``/``reject``/``settle``/``complete``/
  ``disconnect``/``drain`` (the supervisor's settlement helpers journal
  and deliver every member's outcome; ``disconnect`` cancels and
  re-routes a vanished client's tickets).

When the enclosing function is reachable from a service entry point --
``serve*``, ``process``, ``submit``, ``start``, ``ack``, ``cancel`` or
``disconnect`` in a ``service/`` module -- the finding carries the
witness call chain, exactly as REP007-REP011 do for worker entry points.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.staticcheck.analysis import ProjectAnalysis

from repro.staticcheck.engine import (
    Finding,
    LintRule,
    ModuleContext,
    ProjectContext,
    register_rule,
)
from repro.staticcheck.rules._astutil import call_name

#: Substrings (lowercased) of caught-type names that mark a handler as
#: deciding a request's outcome.
OUTCOME_EXCEPTION_MARKERS = (
    "exception",
    "cancel",
    "solvererror",
    "oserror",
    "brokenpipe",
    "protocolerror",
    "connection",
)

#: Substrings of call names that settle a request (journal + deliver).
SETTLEMENT_CALLS = (
    "journal",
    "record",
    "fail",
    "reject",
    "settle",
    "complete",
    "disconnect",
    "drain",
)

#: Function names that enter the service request path.
SERVICE_ENTRY_NAMES = ("process", "submit", "start", "ack", "cancel", "disconnect")


def _caught_names(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    """Trailing identifiers of every exception type the handler names."""
    if handler.type is None:
        return ()
    candidates: Tuple[ast.expr, ...] = (handler.type,)
    if isinstance(handler.type, ast.Tuple):
        candidates = tuple(handler.type.elts)
    names = []
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            names.append(candidate.id)
        elif isinstance(candidate, ast.Attribute):
            names.append(candidate.attr)
    return tuple(names)


def _is_outcome_handler(handler: ast.ExceptHandler) -> bool:
    """True when any caught type name carries an outcome-class marker."""
    for name in _caught_names(handler):
        lowered = name.lower()
        if any(marker in lowered for marker in OUTCOME_EXCEPTION_MARKERS):
            return True
    return False


def _handler_settles(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or settles the request."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            called = call_name(node.func).lower()
            if any(marker in called for marker in SETTLEMENT_CALLS):
                return True
    return False


def _is_service_entry(name: str) -> bool:
    return name.startswith("serve") or name in SERVICE_ENTRY_NAMES


@register_rule
class UnsettledServiceHandlerRule(LintRule):
    """Service request handlers that drop a request without settling it."""

    code = "REP013"
    name = "unsettled-service-handler"
    description = (
        "handlers catching outcome-class exceptions (CancelledSolve/"
        "SolverError/Exception/OSError/...) in service/ must settle the "
        "request -- journal its completed/failed record and deliver -- or "
        "re-raise; a dropped request breaks the journal-replay recovery "
        "proof"
    )
    scopes = ("service/",)

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        analysis = context.analysis()
        reachable = analysis.call_graph.reachable(
            entries=self._service_entries(analysis)
        )
        for module in context.modules:
            if not self.applies_to(module.module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_outcome_handler(node):
                    continue
                if _handler_settles(node):
                    continue
                chain: Tuple[str, ...] = ()
                ident = self._enclosing_function(analysis, module, node)
                if ident is not None and ident in reachable:
                    chain = reachable[ident]
                caught = ", ".join(_caught_names(node))
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.code,
                    severity=self.severity,
                    message=(
                        f"'except {caught}' decides a request outcome "
                        "without settling it or re-raising; journal the "
                        "completed/failed record and deliver (settle/fail/"
                        "reject/disconnect vocabulary) so journal replay "
                        "stays a complete account"
                    ),
                    chain=chain,
                )

    @staticmethod
    def _service_entries(analysis: "ProjectAnalysis") -> Tuple[str, ...]:
        """Idents of the service request-path entry functions."""
        entries = [
            ident
            for ident, symbol in analysis.table.functions.items()
            if "service" in symbol.module and _is_service_entry(symbol.name)
        ]
        return tuple(sorted(entries))

    @staticmethod
    def _enclosing_function(
        analysis: "ProjectAnalysis", module: ModuleContext, node: ast.ExceptHandler
    ) -> Optional[str]:
        """The innermost project function containing ``node``, if any."""
        best: Optional[Tuple[int, str]] = None
        for ident, symbol in analysis.table.functions.items():
            if symbol.path != module.display_path:
                continue
            end = int(getattr(symbol.node, "end_lineno", symbol.lineno) or symbol.lineno)
            if symbol.lineno <= node.lineno <= end:
                candidate = (symbol.lineno, ident)
                if best is None or candidate > best:
                    best = candidate  # innermost = latest-starting enclosing def
        return best[1] if best is not None else None

"""REP008: memoised functions reachable in forked workers must be primed.

A ``functools.lru_cache`` (or ``functools.cache``) wrapped function that
executes inside a forked worker starts with whatever cache contents the
parent had *at fork time* -- and every miss after that is invisible to
the parent and to the other workers.  For a deterministic executor that
is only acceptable when the cache is either

* **primed before the fork** -- the memo is called from the pre-fork
  priming protocol (``prime_context_caches`` / ``_prime_soc_pairs``) or
  from a pool initializer, so every worker starts from the same warm,
  complete state; or
* **declared fork-local** -- a ``# repro: fork-local`` pragma on the
  decorated definition states that per-worker divergence is deliberate
  (a pure derived-value memo whose entries never escape the worker).

This rule reports every memoised function that the project call graph
shows reachable from an executor task entry point and that satisfies
neither escape hatch.  Findings carry the witness call chain.
"""

from __future__ import annotations

from typing import Iterator, Set

from repro.staticcheck.analysis.callgraph import is_initializer_name
from repro.staticcheck.engine import Finding, LintRule, ProjectContext, register_rule
from repro.staticcheck.rules.rep007_workermutation import SANCTIONED_WRITERS


@register_rule
class WorkerCacheRule(LintRule):
    """Unprimed lru_cache/cache memos on the worker path."""

    code = "REP008"
    name = "worker-cache"
    description = (
        "lru_cache/cache memos reachable in forked workers must be primed "
        "pre-fork (reachable from prime_context_caches or a pool "
        "initializer) or declared '# repro: fork-local'"
    )

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        analysis = context.analysis()
        table = analysis.table
        reachable = analysis.worker_reachable()
        # Everything the priming protocol (and the initializers) touches
        # counts as primed: those run once per parent/worker, before or
        # at fork, so their memo contents are shared warm state.
        primers = sorted(
            ident
            for ident, symbol in table.functions.items()
            if symbol.name in SANCTIONED_WRITERS or is_initializer_name(symbol.name)
        )
        primed: Set[str] = set(analysis.call_graph.reachable(primers))
        for ident in sorted(reachable):
            symbol = table.functions.get(ident)
            effects = analysis.local_effects.get(ident)
            if symbol is None or effects is None or not effects.memoized:
                continue
            if ident in primed:
                continue
            if symbol.name in table.fork_local_names(symbol.module):
                continue
            yield Finding(
                path=symbol.path,
                line=symbol.lineno,
                column=0,
                rule=self.code,
                severity=self.severity,
                message=(
                    f"memoised function {symbol.qualname!r} is reachable in "
                    "forked workers but is never primed pre-fork; register it "
                    "with the priming protocol (call it from "
                    "prime_context_caches or the pool initializer) or declare "
                    "it '# repro: fork-local'"
                ),
                chain=reachable[ident],
            )

"""Shared AST helpers for the built-in rules.

The helpers implement a deliberately *shallow* intra-function dataflow:
a name counts as set-typed only when the nearest assignment in the same
function (or at module level) is syntactically a set expression.  That is
enough to catch the real hazard -- values that are sets *by construction*
being iterated -- without attempting type inference; anything deeper is
mypy's job.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Builtins producing sets.
SET_CONSTRUCTORS = ("set", "frozenset")

#: Builtins whose consumption of a set is order-insensitive (or ordering).
ORDER_SAFE_CONSUMERS = (
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
    "bool",
)


def walk_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_name(node: ast.expr) -> str:
    """The trailing identifier of a call target (``a.b.c(...)`` -> ``"c"``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` rendered as a dotted string, or ``""`` for other shapes."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_set_expression(node: ast.expr, set_names: Set[str]) -> bool:
    """True when ``node`` is a set *by construction*.

    Recognises set/frozenset literals, comprehensions and constructor
    calls, names whose nearest assignment was one of those, and the set
    operators ``| & - ^`` applied to any such operand.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node.func) in SET_CONSTRUCTORS:
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left, set_names) or is_set_expression(
            node.right, set_names
        )
    return False


#: Builtins producing lists.
LIST_CONSTRUCTORS = ("list",)


def is_list_expression(node: ast.expr, list_names: Set[str]) -> bool:
    """True when ``node`` is a list *by construction*.

    Recognises list literals, list comprehensions, ``list(...)`` calls,
    names whose nearest assignment was one of those, and ``+`` applied to
    any such operand (list concatenation yields a list).
    """
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node.func) in LIST_CONSTRUCTORS:
        return True
    if isinstance(node, ast.Name):
        return node.id in list_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return is_list_expression(node.left, list_names) or is_list_expression(
            node.right, list_names
        )
    return False


def collect_list_names(body: List[ast.stmt]) -> Set[str]:
    """Names whose last simple assignment in ``body`` is a list expression.

    The list-typed mirror of :func:`collect_set_names`: a statement-ordered
    single pass over one scope's direct statements, no descent into nested
    functions.
    """
    names: Set[str] = set()

    def scan(statements: List[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                is_list = is_list_expression(statement.value, names)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        (names.add if is_list else names.discard)(target.id)
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                if isinstance(target, ast.Name):
                    annotation = ast.unparse(statement.annotation)
                    is_list = annotation.split("[")[0].strip().lower() in (
                        "list",
                        "typing.list",
                    ) or (
                        statement.value is not None
                        and is_list_expression(statement.value, names)
                    )
                    (names.add if is_list else names.discard)(target.id)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes track their own names
            else:
                for field_name in ("body", "orelse", "finalbody"):
                    inner = getattr(statement, field_name, None)
                    if isinstance(inner, list):
                        scan([s for s in inner if isinstance(s, ast.stmt)])
                handlers = getattr(statement, "handlers", None)
                if handlers:
                    for handler in handlers:
                        scan([s for s in handler.body if isinstance(s, ast.stmt)])

    scan(body)
    return names


def collect_set_names(body: List[ast.stmt]) -> Set[str]:
    """Names whose last simple assignment in ``body`` is a set expression.

    Statement-ordered single pass over one scope's direct statements (no
    descent into nested functions): an assignment to a set expression adds
    the name, any other assignment to the same name removes it.
    """
    names: Set[str] = set()

    def scan(statements: List[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                is_set = is_set_expression(statement.value, names)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        (names.add if is_set else names.discard)(target.id)
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                if isinstance(target, ast.Name):
                    annotation = ast.unparse(statement.annotation)
                    is_set = annotation.split("[")[0].strip().lower() in (
                        "set",
                        "frozenset",
                        "typing.set",
                        "typing.frozenset",
                    ) or (
                        statement.value is not None
                        and is_set_expression(statement.value, names)
                    )
                    (names.add if is_set else names.discard)(target.id)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes track their own names
            else:
                # Recurse into compound statements' bodies in order.
                for field_name in ("body", "orelse", "finalbody"):
                    inner = getattr(statement, field_name, None)
                    if isinstance(inner, list):
                        scan([s for s in inner if isinstance(s, ast.stmt)])
                handlers = getattr(statement, "handlers", None)
                if handlers:
                    for handler in handlers:
                        scan([s for s in handler.body if isinstance(s, ast.stmt)])

    scan(body)
    return names


def module_set_names(tree: ast.Module) -> Set[str]:
    """Module-level names bound to set expressions."""
    return collect_set_names(tree.body)


def scope_bodies(tree: ast.Module) -> List[Tuple[List[ast.stmt], Set[str]]]:
    """Each scope's statements paired with its known set-typed names.

    Module scope first, then every function scope; function scopes inherit
    the module-level set names (shadowing by non-set assignment is handled
    by :func:`collect_set_names` processing the function body afterwards).
    """
    module_names = module_set_names(tree)
    scopes: List[Tuple[List[ast.stmt], Set[str]]] = [(tree.body, module_names)]
    for function in walk_functions(tree):
        names = set(module_names)
        names |= {
            # Parameters annotated as sets count too.
            arg.arg
            for arg in (
                function.args.posonlyargs + function.args.args + function.args.kwonlyargs
            )
            if arg.annotation is not None
            and ast.unparse(arg.annotation).split("[")[0].strip().lower()
            in ("set", "frozenset", "typing.set", "typing.frozenset")
        }
        names |= collect_set_names(function.body)
        scopes.append((function.body, names))
    return scopes


def walk_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk one scope's nodes without descending into nested functions.

    Yields every node reachable from ``body`` except the interiors of
    nested function/async-function definitions (those are separate scopes
    with their own name bindings).
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside other functions (closure carriers)."""
    nested: Set[str] = set()
    for function in walk_functions(tree):
        for node in ast.walk(function):
            if node is function:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
    return nested


def module_level_mutable_globals(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable containers, with their lines.

    A name counts when its module-level assignment is a ``dict``/``list``/
    ``set`` literal, comprehension or constructor call -- the containers a
    forked worker would silently diverge on when mutated post-fork.
    """
    mutable: Dict[str, int] = {}
    for statement in tree.body:
        targets: List[ast.expr] = []
        value: ast.expr
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        is_mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and call_name(value.func) in ("dict", "list", "set", "defaultdict", "deque")
        )
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable[target.id] = statement.lineno
    return mutable

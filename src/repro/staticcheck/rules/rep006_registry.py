"""REP006: registry hygiene for ``@register_solver`` classes.

The solver registry is the system's extension surface: ``repro solvers``
renders each entry's capabilities and docstring, the engine routes
requests by capability flags, and a solver registered without either is
invisible to both.  The rule pins that contract syntactically: every
class decorated with ``register_solver(...)`` must pass an explicit
``capabilities=`` keyword (or provide capabilities positionally) and
carry a non-empty class docstring.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.engine import Finding, LintRule, ModuleContext, register_rule
from repro.staticcheck.rules._astutil import call_name


def _register_solver_call(node: ast.ClassDef) -> Optional[ast.expr]:
    """The ``register_solver(...)`` decorator on a class, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if call_name(target) == "register_solver":
            return decorator
    return None


@register_rule
class RegistryHygieneRule(LintRule):
    """``@register_solver`` without declared capabilities or a docstring."""

    code = "REP006"
    name = "registry-hygiene"
    description = (
        "every @register_solver class must declare capabilities= and carry "
        "a docstring; the registry listing and request routing depend on both"
    )

    def check_module(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _register_solver_call(node)
            if decorator is None:
                continue
            if not _declares_capabilities(decorator):
                yield self.finding(
                    context,
                    node,
                    f"solver class {node.name!r} registers without "
                    "capabilities=; the registry cannot route requests to it",
                )
            docstring = ast.get_docstring(node)
            if not docstring or not docstring.strip():
                yield self.finding(
                    context,
                    node,
                    f"solver class {node.name!r} registers without a "
                    "docstring; 'repro solvers' would list an empty entry",
                )


def _declares_capabilities(decorator: ast.expr) -> bool:
    """True when the decorator call passes capabilities (kw or positional)."""
    if not isinstance(decorator, ast.Call):
        # Bare @register_solver cannot carry capabilities.
        return False
    if any(keyword.arg == "capabilities" for keyword in decorator.keywords):
        return True
    # register_solver(name, capabilities, ...) positional form.
    return len(decorator.args) >= 2

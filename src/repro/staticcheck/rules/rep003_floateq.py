"""REP003: float equality in makespan/width arithmetic.

Makespans, TAM widths and testing times are integers in this codebase --
on purpose, because integer arithmetic is exactly reproducible.  The
moment a float enters a comparison chain (a ``percent`` scale factor, a
power total, a division), ``==``/``!=`` becomes platform- and
evaluation-order-sensitive: ``(1.0 + p / 100.0) * t == target`` can flip
between x86 FMA and ARM, or between a warm and a cold cache path that
associates the arithmetic differently.

The rule flags ``==``/``!=`` where either side is float *by construction*:
a float literal, a true division, a ``float(...)`` call, or arithmetic
over any of those.  Fixes, in preference order: compare integers (scale to
cycles/wires first), use an explicit tolerance (``math.isclose`` or an
epsilon with a documented bound), or compare the *decision* (e.g.
``a <= b``) rather than the value.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import Finding, LintRule, ModuleContext, register_rule
from repro.staticcheck.rules._astutil import call_name


def _is_floatish(node: ast.expr) -> bool:
    """True when the expression is a float by construction."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return call_name(node.func) in ("float", "fsum")
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.IfExp):
        return _is_floatish(node.body) or _is_floatish(node.orelse)
    return False


@register_rule
class FloatEqualityRule(LintRule):
    """Float ``==``/``!=`` comparisons in makespan/width arithmetic."""

    code = "REP003"
    name = "float-equality"
    description = (
        "float ==/!= on makespan/width arithmetic is platform-sensitive; "
        "compare integers, use math.isclose, or compare the decision"
    )
    scopes = ("core/", "wrapper/")

    def check_module(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    yield self.finding(
                        context,
                        node,
                        "float ==/!= is exact-bit comparison on inexact "
                        "arithmetic; compare integer cycles/wires or use "
                        "math.isclose with a documented tolerance",
                    )
                    break

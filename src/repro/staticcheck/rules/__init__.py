"""The built-in lint rules (REP001-REP013).

Importing this package registers every rule into the process-wide
:func:`~repro.staticcheck.engine.default_rule_registry` -- the exact
bootstrap idiom of :mod:`repro.solvers.builtin`.

=========  ==============================================================
REP001     Nondeterministic iteration over a ``set``/``frozenset`` (or a
           partial-order sort key) in modules that feed schedule output.
REP002     Unseeded ``random`` / wall-clock (``time.time``,
           ``datetime.now``) use inside solver or kernel code.
REP003     Float ``==``/``!=`` comparisons in makespan/width arithmetic.
REP004     Fork-unsafe ``FlatExecutor`` payloads: lambdas/closures/bound
           methods/``functools.partial`` submitted as tasks, mutable
           module globals mutated outside worker initializers.
REP005     Wire-format freeze: dataclass shapes must match the pinned
           ``benchmarks/wire_schema.json`` snapshot.
REP006     Registry hygiene: every ``@register_solver`` declares
           capabilities and a docstring.
REP007     Worker-reachable mutation: functions reachable from executor
           task entry points must not write module-level state outside
           the priming / incumbent-board protocol (interprocedural).
REP008     Unprimed worker cache: ``lru_cache`` memos reachable in
           forked workers must be primed pre-fork or declared
           ``# repro: fork-local`` (interprocedural).
REP009     Swallowed failures on the parallel path: broad/bare
           ``except`` in ``engine/``/``solvers/`` discarding the
           exception without re-raise, degraded flag, or logging.
REP010     Hot-path complexity: O(n^2) idioms (list membership /
           concatenation / ``.index()`` in loops, ``sorted()`` in the
           event loop) in ``core/``/``wrapper/``.
REP011     Unjournalled recovery: handlers catching pool/timeout/
           broken-pipe/fault exceptions in ``engine/`` must record a
           ``FailureRecord`` (``failure``/``journal``/``record`` call)
           or re-raise, so the recovery ladder sees every fault.
REP012     Shm lifecycle: ``SharedMemory`` segments may only be
           created/attached on paths reachable from the
           ``engine/shm`` lifecycle helpers (``publish_plan``,
           ``adopt_universe``, ...) whose finalizer and
           resource-tracker guards prevent leaks (interprocedural).
REP013     Unsettled service handler: handlers catching outcome-class
           exceptions (``CancelledSolve``/``SolverError``/broad
           ``Exception``/pipe errors) in ``service/`` must settle the
           request -- journal its ``completed``/``failed`` record and
           deliver -- or re-raise, so journal replay stays a complete
           account of every request.
=========  ==============================================================

REP007--REP010 are *project* rules built on the interprocedural layer in
:mod:`repro.staticcheck.analysis`; their findings carry witness call
chains (entry point -> ... -> violation site).
"""

from repro.staticcheck.rules import (  # noqa: F401  (imported for registration)
    rep001_iteration,
    rep002_wallclock,
    rep003_floateq,
    rep004_forksafety,
    rep005_wireschema,
    rep006_registry,
    rep007_workermutation,
    rep008_workercache,
    rep009_swallowed,
    rep010_hotpath,
    rep011_recovery,
    rep012_shm,
    rep013_service,
)

"""The built-in lint rules (REP001-REP006).

Importing this package registers every rule into the process-wide
:func:`~repro.staticcheck.engine.default_rule_registry` -- the exact
bootstrap idiom of :mod:`repro.solvers.builtin`.

=========  ==============================================================
REP001     Nondeterministic iteration over a ``set``/``frozenset`` (or a
           partial-order sort key) in modules that feed schedule output.
REP002     Unseeded ``random`` / wall-clock (``time.time``,
           ``datetime.now``) use inside solver or kernel code.
REP003     Float ``==``/``!=`` comparisons in makespan/width arithmetic.
REP004     Fork-unsafe ``FlatExecutor`` payloads: lambdas/closures/bound
           methods submitted as tasks, mutable module globals mutated
           outside worker initializers.
REP005     Wire-format freeze: dataclass shapes must match the pinned
           ``benchmarks/wire_schema.json`` snapshot.
REP006     Registry hygiene: every ``@register_solver`` declares
           capabilities and a docstring.
=========  ==============================================================
"""

from repro.staticcheck.rules import (  # noqa: F401  (imported for registration)
    rep001_iteration,
    rep002_wallclock,
    rep003_floateq,
    rep004_forksafety,
    rep005_wireschema,
    rep006_registry,
)

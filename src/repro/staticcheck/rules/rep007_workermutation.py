"""REP007: module-level mutation reachable from forked workers.

The flat executor's correctness story (bit-identical schedules for
workers ∈ {0, 1, 2, 4}) rests on worker processes being *functionally
pure* after the fork: a task may read the pre-forked caches installed by
``prime_context_caches`` / the pool initializer, and it may publish
makespans through the sanctioned lock-free incumbent board, but any other
write to module-level state diverges silently between workers and parent.

This rule walks the project call graph from the executor's task entry
points (pool-submitted payloads) and worker initializers, and reports
every reachable function whose body writes a module-level name -- unless
the write is sanctioned:

* the writer is a pool initializer (``_init_worker`` / ``*_initializer``)
  or part of the pre-fork priming protocol (``prime_context_caches`` /
  ``_prime_soc_pairs``), which run exactly once per worker/parent;
* the written global (or the writer function) is declared fork-local with
  a ``# repro: fork-local`` pragma on its definition line -- the explicit
  opt-in for worker-private memos and the incumbent board.

Findings carry the witness call chain (entry point -> ... -> writer) so
the path can be reviewed by hand.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.analysis.callgraph import is_initializer_name
from repro.staticcheck.engine import Finding, LintRule, ProjectContext, register_rule

#: Functions of the pre-fork priming protocol (run before workers exist
#: or once per worker), allowed to populate module-level caches.
SANCTIONED_WRITERS = ("prime_context_caches", "_prime_soc_pairs")


def _writer_sanctioned(name: str) -> bool:
    return name in SANCTIONED_WRITERS or is_initializer_name(name)


@register_rule
class WorkerMutationRule(LintRule):
    """Worker-reachable writes to module-level state."""

    code = "REP007"
    name = "worker-mutation"
    description = (
        "functions reachable from executor task entry points must not write "
        "module-level state outside the priming/incumbent-board protocol "
        "(sanction deliberate worker-side state with '# repro: fork-local')"
    )

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        analysis = context.analysis()
        table = analysis.table
        reachable = analysis.worker_reachable()
        for ident in sorted(reachable):
            symbol = table.functions.get(ident)
            if symbol is None:
                continue
            if _writer_sanctioned(symbol.name):
                continue
            fork_local = table.fork_local_names(symbol.module)
            if symbol.name in fork_local:
                continue
            effects = analysis.local_effects.get(ident)
            if effects is None:
                continue
            for write in effects.global_writes:
                if write.name in table.fork_local_names(write.module):
                    continue
                yield Finding(
                    path=write.path,
                    line=write.line,
                    column=0,
                    rule=self.code,
                    severity=self.severity,
                    message=(
                        f"{symbol.qualname!r} is reachable from a worker entry "
                        f"point but writes module global {write.name!r}; forked "
                        "workers diverge silently -- move the write into the "
                        "priming protocol or declare the global "
                        "'# repro: fork-local'"
                    ),
                    chain=reachable[ident],
                )

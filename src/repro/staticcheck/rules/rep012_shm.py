"""REP012: shared-memory segments only through the shm lifecycle helpers.

The zero-copy payload plane (:mod:`repro.engine.shm`) owns every
``multiprocessing.shared_memory.SharedMemory`` segment the process
creates or attaches: the parent wraps creations in a finalizer-backed
:class:`~repro.engine.shm.ShmSegment` (close + unlink exactly once, even
on abandonment) and workers unregister attachments from the
``resource_tracker`` and cap their attach cache.  A ``SharedMemory(...)``
call anywhere else re-creates exactly the leak classes that lifecycle
exists to rule out: segments that survive the run in ``/dev/shm``,
double-unlinks at worker exit, and mappings pinned by forgotten views.

The rule is interprocedural: a ``SharedMemory`` constructor call is
allowed only when its enclosing function is reachable (per the project
call graph) from one of the :data:`SHM_LIFECYCLE_ENTRIES` helper
functions -- matched by *name*, so fixture trees exercise the rule
without importing the real module.  Module-level constructor calls have
no enclosing function and are always reported.  Findings carry the
witness call chain from the nearest lifecycle entry when one exists.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.staticcheck.analysis import ProjectAnalysis

from repro.staticcheck.engine import (
    Finding,
    LintRule,
    ModuleContext,
    ProjectContext,
    register_rule,
)
from repro.staticcheck.rules._astutil import call_name

#: Function names that constitute the shm lifecycle boundary.  Every
#: ``SharedMemory`` construction must be reachable from one of these
#: (``repro.engine.shm`` is their canonical home; matching by name keeps
#: the rule testable on fixture trees).
SHM_LIFECYCLE_ENTRIES = (
    "publish_universe",
    "publish_plan",
    "adopt_universe",
    "load_plan",
    "release_worker_segments",
)

#: The constructor the rule guards (trailing name; both the plain
#: ``SharedMemory(...)`` and the dotted ``shared_memory.SharedMemory(...)``
#: spellings resolve to it).
_CONSTRUCTOR = "SharedMemory"


def _is_shm_constructor(node: ast.Call) -> bool:
    """True when ``node`` calls ``SharedMemory`` (plain or dotted)."""
    return call_name(node.func).rsplit(".", 1)[-1] == _CONSTRUCTOR


@register_rule
class ShmLifecycleRule(LintRule):
    """SharedMemory constructions outside the shm lifecycle helpers."""

    code = "REP012"
    name = "shm-lifecycle"
    description = (
        "multiprocessing SharedMemory segments must be created/attached "
        "only on paths reachable from the engine/shm lifecycle helpers "
        "(publish_plan, publish_universe, adopt_universe, load_plan, "
        "release_worker_segments) -- ad-hoc segments leak past the "
        "finalizer and resource-tracker guards"
    )

    def check_project(self, context: ProjectContext) -> Iterator[Finding]:
        analysis = context.analysis()
        entries = tuple(
            sorted(
                ident
                for ident, symbol in analysis.table.functions.items()
                if symbol.name in SHM_LIFECYCLE_ENTRIES
            )
        )
        sanctioned = (
            analysis.call_graph.reachable(entries=entries) if entries else {}
        )
        for module in context.modules:
            if not self.applies_to(module.module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not _is_shm_constructor(node):
                    continue
                ident = self._enclosing_function(analysis, module, node)
                if ident is not None and ident in sanctioned:
                    continue
                chain: Tuple[str, ...] = ()
                if ident is not None:
                    # No lifecycle chain exists (that is the finding); the
                    # worker-path chain still localises the call site.
                    chain = analysis.worker_reachable().get(ident, ())
                where = (
                    f"function {ident!r}" if ident is not None else "module level"
                )
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset,
                    rule=self.code,
                    severity=self.severity,
                    message=(
                        f"SharedMemory constructed at {where}, unreachable "
                        "from the shm lifecycle helpers "
                        f"({', '.join(SHM_LIFECYCLE_ENTRIES)}); route segment "
                        "creation/attachment through repro.engine.shm so the "
                        "finalizer and resource-tracker guards apply"
                    ),
                    chain=chain,
                )

    @staticmethod
    def _enclosing_function(
        analysis: "ProjectAnalysis", module: ModuleContext, node: ast.Call
    ) -> Optional[str]:
        """The innermost project function containing ``node``, if any."""
        best: Optional[Tuple[int, str]] = None
        for ident, symbol in analysis.table.functions.items():
            if symbol.path != module.display_path:
                continue
            end = int(
                getattr(symbol.node, "end_lineno", symbol.lineno) or symbol.lineno
            )
            if symbol.lineno <= node.lineno <= end:
                candidate = (symbol.lineno, ident)
                if best is None or candidate > best:
                    best = candidate  # innermost = latest-starting enclosing def
        return best[1] if best is not None else None

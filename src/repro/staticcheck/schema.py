"""Wire-format freeze: extract dataclass shapes from the AST and diff them.

The JSON wire format of the solver layer (PR 2) is carried by a handful of
frozen dataclasses -- :class:`~repro.solvers.request.ScheduleRequest`,
:class:`~repro.solvers.request.ScheduleResult`,
:class:`~repro.solvers.base.SolverCapabilities`,
:class:`~repro.core.scheduler.SchedulerConfig` and
:class:`~repro.soc.constraints.ConstraintSet`.  Any field added, removed,
renamed, re-typed or re-defaulted silently changes what goes over the wire
(and what ``to_dict``/``from_dict`` round-trip), so their *shape* is pinned
in ``benchmarks/wire_schema.json`` and REP005 fails the lint when the AST
drifts from the snapshot.

The extraction is purely syntactic (``ast``): a class's shape is the
ordered list of its annotated assignments ``name: annotation [= default]``,
with annotation and default rendered by :func:`ast.unparse`.  No import of
the target module happens, so the check cannot be fooled by runtime
monkey-patching and runs on any tree that parses.

Regenerate the snapshot -- after review! -- with::

    repro lint --write-wire-schema
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

#: The frozen wire classes, as ``dotted.module:ClassName`` keys resolved
#: against the lint invocation's source roots.
WIRE_CLASSES: Tuple[str, ...] = (
    "repro.solvers.request:ScheduleRequest",
    "repro.solvers.request:ScheduleResult",
    "repro.solvers.base:SolverCapabilities",
    "repro.core.scheduler:SchedulerConfig",
    "repro.soc.constraints:ConstraintSet",
)

#: Default snapshot location, relative to a repository root.
DEFAULT_SCHEMA_RELPATH = Path("benchmarks") / "wire_schema.json"


class WireSchemaError(ValueError):
    """Raised when a wire class or its module cannot be found/parsed."""


def resolve_class_key(key: str, source_roots: Sequence[Path]) -> Tuple[Path, str]:
    """Resolve ``dotted.module:ClassName`` to a source file and class name."""
    module, _, class_name = key.partition(":")
    if not module or not class_name:
        raise WireSchemaError(
            f"wire class key must look like 'pkg.module:Class', got {key!r}"
        )
    relative = Path(*module.split(".")).with_suffix(".py")
    for root in source_roots:
        candidate = Path(root) / relative
        if candidate.exists():
            return candidate, class_name
    raise WireSchemaError(
        f"cannot resolve module {module!r} under source roots "
        f"{[str(r) for r in source_roots]}"
    )


def extract_class_fields(path: Path, class_name: str) -> List[Dict[str, Any]]:
    """The ordered ``name``/``annotation``/``default`` shape of one class.

    Only annotated assignments in the class body count (the dataclass
    field protocol); ``ClassVar`` annotations are excluded, as dataclasses
    exclude them from the generated ``__init__``/``asdict``.
    """
    try:
        tree = ast.parse(Path(path).read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as error:
        raise WireSchemaError(f"cannot parse {path}: {error}") from error
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: List[Dict[str, Any]] = []
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                annotation = ast.unparse(statement.annotation)
                if "ClassVar" in annotation:
                    continue
                fields.append(
                    {
                        "name": statement.target.id,
                        "annotation": annotation,
                        "default": (
                            ast.unparse(statement.value)
                            if statement.value is not None
                            else None
                        ),
                    }
                )
            return fields
    raise WireSchemaError(f"class {class_name!r} not found in {path}")


def generate_schema(
    source_roots: Sequence[Path],
    class_keys: Sequence[str] = WIRE_CLASSES,
) -> Dict[str, Any]:
    """The current tree's wire schema (the content of the pinned snapshot)."""
    classes: Dict[str, Any] = {}
    for key in class_keys:
        path, class_name = resolve_class_key(key, source_roots)
        classes[key] = {"fields": extract_class_fields(path, class_name)}
    return {"version": SCHEMA_VERSION, "classes": classes}


def write_schema(
    schema_path: Path,
    source_roots: Sequence[Path],
    class_keys: Sequence[str] = WIRE_CLASSES,
) -> Dict[str, Any]:
    """Regenerate the pinned snapshot from the current tree."""
    schema = generate_schema(source_roots, class_keys)
    with open(schema_path, "w", encoding="utf-8") as handle:
        json.dump(schema, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return schema


def load_schema(schema_path: Path) -> Dict[str, Any]:
    """Load the pinned snapshot (missing/corrupt files raise)."""
    with open(schema_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def diff_class(
    key: str,
    pinned_fields: Sequence[Dict[str, Any]],
    current_fields: Sequence[Dict[str, Any]],
) -> List[str]:
    """Human-readable drift descriptions for one class (empty = frozen)."""
    drifts: List[str] = []
    pinned_by_name = {f["name"]: f for f in pinned_fields}
    current_by_name = {f["name"]: f for f in current_fields}
    for name in pinned_by_name:
        if name not in current_by_name:
            drifts.append(f"{key}: field {name!r} was removed")
    for name, current in current_by_name.items():
        pinned = pinned_by_name.get(name)
        if pinned is None:
            drifts.append(f"{key}: field {name!r} was added")
            continue
        for aspect in ("annotation", "default"):
            if pinned.get(aspect) != current.get(aspect):
                drifts.append(
                    f"{key}: field {name!r} changed {aspect} "
                    f"{pinned.get(aspect)!r} -> {current.get(aspect)!r}"
                )
    pinned_order = [f["name"] for f in pinned_fields if f["name"] in current_by_name]
    current_order = [f["name"] for f in current_fields if f["name"] in pinned_by_name]
    if pinned_order != current_order:
        drifts.append(
            f"{key}: field order changed {pinned_order!r} -> {current_order!r} "
            "(positional construction and serialisation order depend on it)"
        )
    return drifts


def check_wire_drift(
    schema_path: Optional[Path],
    source_roots: Sequence[Path],
) -> List[str]:
    """All wire-format drifts of the tree under ``source_roots``.

    Returns human-readable drift strings; a missing snapshot is itself a
    drift (a freeze gate that silently skips is no gate).  Unresolvable
    modules/classes are reported rather than raised, so the lint engine
    can surface them as findings.
    """
    if schema_path is None or not Path(schema_path).exists():
        return [
            "wire schema snapshot "
            + (str(schema_path) if schema_path is not None else "(none)")
            + " is missing; regenerate with 'repro lint --write-wire-schema' "
            "after reviewing the wire format"
        ]
    schema = load_schema(schema_path)
    drifts: List[str] = []
    for key, pinned in sorted(schema.get("classes", {}).items()):
        try:
            path, class_name = resolve_class_key(key, source_roots)
            current = extract_class_fields(path, class_name)
        except WireSchemaError as error:
            drifts.append(str(error))
            continue
        drifts.extend(diff_class(key, pinned.get("fields", ()), current))
    return drifts


def repo_root_for(package_file: Path) -> Optional[Path]:
    """The repository root above an installed ``repro`` package, if any.

    Walks up from the package looking for the conventional checkout layout:
    either the pinned ``benchmarks/wire_schema.json`` itself or a
    ``pyproject.toml`` next to a ``benchmarks/`` directory (so a checkout
    whose snapshot has not been generated yet is still recognised -- and
    reported as drifted -- rather than silently skipped).  Returns ``None``
    for site-packages installs; the freeze gate only applies to checkouts.
    """
    for parent in Path(package_file).resolve().parents:
        if (parent / DEFAULT_SCHEMA_RELPATH).exists():
            return parent
        if (parent / "pyproject.toml").exists() and (parent / "benchmarks").is_dir():
            return parent
    return None


def default_wire_drifts() -> List[str]:
    """Wire drifts of the surrounding checkout, or ``[]`` outside one.

    The convenience entry point for the perf harness: ``repro bench``
    refuses to write ``BENCH_*.json`` artifacts while the wire format has
    unreviewed drift, and this function encapsulates the "am I in a
    checkout with a pinned schema?" discovery.
    """
    import repro

    root = repo_root_for(Path(repro.__file__))
    if root is None:
        return []
    return check_wire_drift(
        root / DEFAULT_SCHEMA_RELPATH,
        source_roots=(root / "src", root),
    )

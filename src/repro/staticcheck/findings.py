"""The lint suite's result type: one :class:`Finding` per rule violation.

A finding pins a rule violation to a file and line with a severity and a
human-readable message.  Findings are frozen, totally ordered (by path,
line, column, rule) and JSON-round-trippable -- the same contract the
solver layer's :class:`~repro.solvers.request.ScheduleResult` follows, so
``repro lint --json`` output is stable enough to diff in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: The two severities the suite distinguishes.  Every shipped rule reports
#: ``error`` (the CI gate is binary); ``warning`` exists for downstream
#: rules that want advisory output without failing the build.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Parameters
    ----------
    path:
        Path of the offending file, as given to the engine (repo-relative
        when linting a checkout).
    line:
        1-based line number of the violation.
    column:
        0-based column offset (AST convention).
    rule:
        Rule code, e.g. ``"REP001"``.
    severity:
        ``"error"`` or ``"warning"``.
    message:
        Human-readable description of the violation and the expected fix.
    chain:
        Witness call chain for interprocedural findings: the function
        identifiers from a worker entry point to the function containing
        the violation (``()`` for per-module findings).  Reviewers can
        follow the chain by hand instead of re-running the analysis.
    """

    path: str
    line: int
    column: int = field(default=0)
    rule: str = field(default="")
    severity: str = field(default="error")
    message: str = field(default="")
    chain: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.line < 1:
            raise ValueError(f"line must be 1-based, got {self.line}")

    def render(self) -> str:
        """The human-readable single-line form (``path:line: CODE message``).

        Interprocedural findings append their witness chain on a second,
        indented line (``via: entry -> ... -> site``).
        """
        text = f"{self.path}:{self.line}:{self.column + 1}: {self.rule} {self.message}"
        if self.chain:
            text += f"\n    via: {' -> '.join(self.chain)}"
        return text

    def render_github(self) -> str:
        """The GitHub Actions workflow-command form (``::error file=...``).

        Emitted by ``repro lint --output-format github`` so findings
        surface as inline PR annotations; the message (with the witness
        chain appended) is escaped per the workflow-command rules.
        """
        command = "error" if self.severity == "error" else "warning"
        message = self.message
        if self.chain:
            message += f" [via: {' -> '.join(self.chain)}]"
        escaped = (
            message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        return (
            f"::{command} file={self.path},line={self.line},"
            f"col={self.column + 1},title={self.rule}::{escaped}"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict form (round-trips through :meth:`from_dict`)."""
        data: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.chain:
            data["chain"] = list(self.chain)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data.get("column", 0)),
            rule=str(data.get("rule", "")),
            severity=str(data.get("severity", "error")),
            message=str(data.get("message", "")),
            chain=tuple(str(link) for link in data.get("chain", ())),
        )


def findings_to_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """Serialise a finding list to the ``repro lint --json`` payload."""
    return json.dumps(
        {
            "version": 1,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=indent,
        sort_keys=True,
    )


def findings_from_json(text: str) -> List[Finding]:
    """Rebuild a finding list from :func:`findings_to_json` output."""
    payload = json.loads(text)
    return [Finding.from_dict(entry) for entry in payload.get("findings", ())]

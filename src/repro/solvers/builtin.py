"""The built-in solvers: every algorithm of the paper's evaluation, registered.

=============  ==============================================================
``paper``      The ``TAM_schedule_optimizer`` heuristic (Figures 4-8):
               flexible-width rectangle packing with constraint-driven,
               selectively preemptive scheduling.
``best``       The paper's experimental protocol: the ``paper`` solver over
               a (``percent``, ``delta``, ``slack``) grid, keeping the best.
``fixed-width``  Fixed-width TAM buses (the architecture style of [12, 13]).
``shelf``      Level-oriented next-fit-decreasing shelf packing [8].
``exhaustive`` Exact left-justified permutation search for tiny SOCs.
``lower-bound``  The Table 1 lower bound (max of area and bottleneck
               bounds); produces no schedule, only the bound.
=============  ==============================================================

Each solver draws its Pareto rectangle sets from the owning session's
shared cache with exactly the ``max_width`` its legacy free function used,
so registry results are identical to the historical entry points.
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.exact import run_exhaustive
from repro.baselines.fixed_width import run_fixed_width
from repro.baselines.shelf import run_shelf
from repro.core.grid_sweep import (
    DEFAULT_DELTAS,
    DEFAULT_PERCENTS,
    DEFAULT_SLACKS,
    run_grid_sweep,
)
from repro.core.lower_bounds import (
    area_lower_bound,
    bottleneck_lower_bound,
)
from repro.core.scheduler import run_paper_scheduler
from repro.solvers.base import Solver, SolverCapabilities
from repro.solvers.registry import register_solver
from repro.solvers.request import ScheduleRequest, ScheduleResult
from repro.wrapper.pareto import DEFAULT_MAX_WIDTH

# The default heuristic grid of the "best" solver (the paper's protocol).
BEST_PERCENTS: Tuple[float, ...] = DEFAULT_PERCENTS
BEST_DELTAS: Tuple[int, ...] = DEFAULT_DELTAS
BEST_SLACKS: Tuple[int, ...] = DEFAULT_SLACKS


@register_solver(
    "paper",
    capabilities=SolverCapabilities(
        description=(
            "The paper's TAM_schedule_optimizer: flexible-width rectangle "
            "packing with constraint-driven, selectively preemptive scheduling"
        ),
        supports_constraints=True,
        supports_preemption=True,
        supports_power=True,
    ),
)
class PaperSolver(Solver):
    """One run of ``TAM_schedule_optimizer`` at the request's config."""

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        self.options(request)  # the paper solver takes no extra options
        sets = self.rectangle_sets(request.soc, request.config.max_core_width)
        schedule = run_paper_scheduler(
            request.soc,
            request.total_width,
            constraints=request.constraints,
            config=request.config,
            rectangle_sets=sets,
        )
        return self.schedule_result(request, schedule)


@register_solver(
    "best",
    capabilities=SolverCapabilities(
        description=(
            "The paper's experimental protocol: the paper solver over a "
            "(percent, delta, slack) grid, keeping the best schedule"
        ),
        supports_constraints=True,
        supports_preemption=True,
        supports_power=True,
    ),
)
class BestSolver(Solver):
    """Best paper-solver schedule over a heuristic-parameter grid.

    Runs the deduplicated, pruned, optionally parallel grid sweep of
    :mod:`repro.core.grid_sweep` and records the winning grid point, the
    dedup statistics and the Table 1 lower bound in the result metadata.
    With ``workers > 1`` the deduplicated runs dispatch as individual
    tasks on the process-wide flat executor
    (:mod:`repro.engine.executor`), sharing one persistent worker pool
    with the sweep engine -- and when this solver runs *as* a sweep-engine
    job, the engine decomposes the grid in the parent instead, so the
    fan-out parallelises there too rather than nesting pools.

    Options: ``percents``, ``deltas``, ``slacks`` (sequences overriding the
    default grid) and ``workers`` (process count for the internal fan-out;
    ``None`` falls back to the owning session's default, results are
    bit-identical for every value).
    """

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        options = self.options(
            request,
            percents=BEST_PERCENTS,
            deltas=BEST_DELTAS,
            slacks=BEST_SLACKS,
            workers=None,
        )
        workers = options["workers"]
        if workers is None:
            workers = self.session.workers
        sets = self.rectangle_sets(request.soc, request.config.max_core_width)
        outcome = run_grid_sweep(
            request.soc,
            request.total_width,
            constraints=request.constraints,
            percents=tuple(options["percents"]),
            deltas=tuple(options["deltas"]),
            slacks=tuple(options["slacks"]),
            config=request.config,
            rectangle_sets=sets,
            workers=int(workers),
        )
        return self.schedule_result(request, outcome.schedule, metadata=outcome.metadata())


@register_solver(
    "fixed-width",
    capabilities=SolverCapabilities(
        description=(
            "Fixed-width TAM baseline: partition the TAM into buses, test "
            "the cores on each bus sequentially (architecture of [12, 13])"
        ),
    ),
)
class FixedWidthSolver(Solver):
    """Best fixed-width bus architecture.

    Options: ``max_buses`` (default 3) and ``max_core_width`` (default 64,
    independent of the request config, matching the legacy function).
    """

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        options = self.options(
            request, max_buses=3, max_core_width=DEFAULT_MAX_WIDTH
        )
        max_core_width = int(options["max_core_width"])
        sets = self.rectangle_sets(request.soc, max_core_width)
        result = run_fixed_width(
            request.soc,
            request.total_width,
            max_buses=int(options["max_buses"]),
            max_core_width=max_core_width,
            rectangle_sets=sets,
        )
        return self.schedule_result(
            request,
            result.schedule,
            metadata={
                "bus_widths": list(result.bus_widths),
                "assignment": dict(result.assignment),
            },
        )


@register_solver(
    "shelf",
    capabilities=SolverCapabilities(
        description=(
            "Level-oriented (shelf) packing baseline: next-fit-decreasing "
            "over one preferred-width rectangle per core [8]"
        ),
    ),
)
class ShelfSolver(Solver):
    """Next-fit-decreasing shelf packing at the request's preferred widths."""

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        self.options(request)  # the shelf packer takes no extra options
        sets = self.rectangle_sets(request.soc, request.config.max_core_width)
        schedule = run_shelf(
            request.soc,
            request.total_width,
            config=request.config,
            rectangle_sets=sets,
        )
        return self.schedule_result(request, schedule)


@register_solver(
    "exhaustive",
    capabilities=SolverCapabilities(
        description=(
            "Exhaustive reference packer: best left-justified permutation "
            "schedule over all Pareto width choices (tiny SOCs only)"
        ),
        exact=True,
    ),
)
class ExhaustiveSolver(Solver):
    """Exact search for tiny SOCs (raises on more than ``max_cores`` cores).

    Options: ``max_cores`` (default 6) and ``max_widths_per_core``
    (default 8).
    """

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        options = self.options(request, max_cores=6, max_widths_per_core=8)
        # Build (and cache) the rectangle sets only for SOCs the packer will
        # accept; on refusal run_exhaustive raises its canonical error
        # before any wrapper-design work happens.
        sets = None
        if len(request.soc.cores) <= int(options["max_cores"]):
            sets = self.rectangle_sets(
                request.soc, min(request.config.max_core_width, request.total_width)
            )
        schedule = run_exhaustive(
            request.soc,
            request.total_width,
            constraints=request.constraints,
            config=request.config,
            max_cores=int(options["max_cores"]),
            max_widths_per_core=int(options["max_widths_per_core"]),
            rectangle_sets=sets,
        )
        return self.schedule_result(request, schedule)


@register_solver(
    "lower-bound",
    capabilities=SolverCapabilities(
        description=(
            "The Table 1 lower bound: max of the TAM wire-cycle area bound "
            "and the bottleneck-core bound (no schedule produced)"
        ),
        produces_schedule=False,
    ),
)
class LowerBoundSolver(Solver):
    """Lower bound on the SOC testing time; ``result.schedule`` is ``None``."""

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        self.options(request)  # the bound takes no extra options
        max_core_width = request.config.max_core_width
        sets = self.rectangle_sets(request.soc, max_core_width)
        area = area_lower_bound(
            request.soc, request.total_width, max_core_width, rectangle_sets=sets
        )
        bottleneck = bottleneck_lower_bound(
            request.soc, request.total_width, max_core_width, rectangle_sets=sets
        )
        return self.bound_result(
            request,
            max(area, bottleneck),
            metadata={"area_bound": area, "bottleneck_bound": bottleneck},
        )

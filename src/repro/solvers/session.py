"""The :class:`Session` facade: one front door for every solver.

A session owns

* a :class:`~repro.solvers.registry.SolverRegistry` (the process-wide
  default unless one is injected),
* per-session solver instances, and
* a shared **Pareto rectangle cache**: the per-core wrapper-design
  staircases (the dominant per-schedule cost) are computed once per
  ``(SOC, max width)`` and reused by every solver, width and repeat solve.

``Session.solve`` validates the request, dispatches to the named solver,
structurally validates any schedule the solver returns (TAM capacity, no
per-core overlap, every core tested -- plus the full constraint checks for
solvers whose capabilities claim constraint support) and stamps the wall
time.  The module-level :func:`solve` convenience uses a process-wide
default session, which is also what the sweep engine's workers use so their
caches stay warm across jobs.

Solvers that parallelise one solve (the ``best`` solver's grid fan-out)
dispatch through the process-wide *flat executor*
(:mod:`repro.engine.executor`): one persistent worker pool shared with the
sweep engine, kept warm across repeated ``solve`` calls.  ``Session.close``
(or using the session as a context manager) tears that pool down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.rectangles import RectangleSet, build_rectangle_sets
from repro.core.scheduler import SchedulerError
from repro.soc.soc import Soc
from repro.solvers.base import BaseSolver
from repro.solvers.registry import (
    SolverRegistry,
    default_registry,
    normalize_solver_name,
)
from repro.solvers.request import ScheduleRequest, ScheduleResult, SolverError


@dataclass(frozen=True)
class SessionCacheInfo:
    """Hit/miss statistics of one session's Pareto rectangle cache."""

    hits: int
    misses: int
    entries: int


class Session:
    """A solve context sharing Pareto rectangle sets across solvers and widths.

    Parameters
    ----------
    registry:
        Solver registry to resolve names against; defaults to the
        process-wide registry holding the built-in solvers.
    validate:
        Structurally validate every schedule a solver returns (cheap; on by
        default).  Constraint checks are additionally applied for solvers
        whose capabilities declare constraint support.
    workers:
        Default internal fan-out for solvers that can parallelise one solve
        (currently the ``best`` solver's grid sweep).  ``0`` (the default)
        keeps every solve serial; a request's ``workers`` option overrides
        it per solve.  Results are bit-identical for every value.
    """

    def __init__(
        self,
        registry: Optional[SolverRegistry] = None,
        validate: bool = True,
        workers: int = 0,
    ) -> None:
        if workers < 0:
            raise SolverError(f"workers must be non-negative, got {workers}")
        self._registry = registry if registry is not None else default_registry()
        self._validate = validate
        self._workers = int(workers)
        self._solvers: Dict[str, BaseSolver] = {}
        self._rectangle_cache: Dict[Tuple[Soc, int], Dict[str, RectangleSet]] = {}
        self._hits = 0
        self._misses = 0

    @property
    def registry(self) -> SolverRegistry:
        """The registry this session resolves solver names against."""
        return self._registry

    @property
    def workers(self) -> int:
        """Default internal fan-out for solvers that support one (0 = serial)."""
        return self._workers

    # ------------------------------------------------------------------
    # Shared Pareto rectangle cache
    # ------------------------------------------------------------------
    def rectangle_sets(self, soc: Soc, max_width: int) -> Dict[str, RectangleSet]:
        """Pareto rectangle sets for ``soc``, memoised per (SOC, max width)."""
        if max_width <= 0:
            raise SolverError("max_width must be positive")
        key = (soc, int(max_width))
        sets = self._rectangle_cache.get(key)
        if sets is None:
            self._misses += 1
            sets = build_rectangle_sets(soc, max_width=int(max_width))
            self._rectangle_cache[key] = sets
        else:
            self._hits += 1
        return sets

    def cache_info(self) -> SessionCacheInfo:
        """Hit/miss statistics of the shared rectangle cache."""
        return SessionCacheInfo(
            hits=self._hits, misses=self._misses, entries=len(self._rectangle_cache)
        )

    def clear_cache(self) -> None:
        """Drop all cached rectangle sets (statistics reset too)."""
        self._rectangle_cache.clear()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Shared-executor lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the *process-wide* flat executor's worker pool.

        Parallel solves (``workers > 1``) dispatch through one shared,
        process-wide executor whose pool persists across calls to keep
        caches warm; that pool is not owned by any single session, so
        closing it here also affects other components using it (their
        next parallel dispatch transparently recreates it).  The session
        itself stays usable.  A session that never solved in parallel
        closes nothing of its own -- this is a convenience hook for
        "I am done with parallel work in this process".
        """
        from repro.engine.executor import close_default_executor

        close_default_executor()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solver(self, name: str) -> BaseSolver:
        """The session's instance of the named solver (created on first use)."""
        key = normalize_solver_name(name)
        instance = self._solvers.get(key)
        if instance is None:
            instance = self._registry.create(key, self)
            self._solvers[key] = instance
        return instance

    def solvers(self) -> List[str]:
        """Names of all solvers this session can dispatch to."""
        return self._registry.names()

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        """Run the request's solver and return its (validated) result."""
        solver = self.solver(request.solver)
        if request.constraints is not None:
            request.constraints.validate_for(request.soc)
        started = time.perf_counter()
        try:
            result = solver.solve(request)
        except SolverError:
            raise
        except (ValueError, SchedulerError) as error:
            # Normalise solver refusals (the exhaustive packer's core limit,
            # the scheduler's infeasible-constraint errors) so callers can
            # handle one exception type.  SolverError subclasses ValueError,
            # so legacy except-clauses keep working.
            raise SolverError(f"solver {solver.name!r}: {error}") from error
        wall_time = time.perf_counter() - started
        if result.schedule is not None and self._validate:
            constraints = (
                request.constraints
                if solver.capabilities.supports_constraints
                else None
            )
            result.schedule.validate(request.soc, constraints=constraints)
        return replace(result, wall_time=wall_time)


# ----------------------------------------------------------------------
# Process-wide default session
# ----------------------------------------------------------------------
# Fork-local by design: each pool worker lazily builds its own default
# session, whose rectangle-set memos are pure derived values (the warm
# shared state ships via the priming protocol instead).
_DEFAULT_SESSION: Optional[Session] = None  # repro: fork-local


def get_default_session() -> Session:
    """The process-wide session (created on first use).

    The sweep engine's serial loop and pool workers solve through this
    session so Pareto rectangle sets stay warm across jobs; user code can
    use it too when managing a session explicitly is overkill.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def solve(request: ScheduleRequest) -> ScheduleResult:
    """Solve one request on the process-wide default session."""
    return get_default_session().solve(request)

"""The solver registry: name -> (factory, capabilities).

New comparison points plug in with a decorator instead of a cross-cutting
edit::

    @register_solver("my-solver", capabilities=SolverCapabilities(
        description="my custom packer"))
    class MySolver(Solver):
        name = "my-solver"

        def solve(self, request):
            ...
            return self.schedule_result(request, schedule)

Solver names are case-insensitive and ``_``/``-`` agnostic (``fixed_width``
resolves to ``fixed-width``).  The default registry is a process-wide
singleton shared by every :class:`~repro.solvers.session.Session` unless a
session is given its own registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.solvers.base import BaseSolver, Solver, SolverCapabilities
from repro.solvers.request import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.solvers.session import Session

SolverFactory = Callable[["Session"], BaseSolver]


def normalize_solver_name(name: str) -> str:
    """Canonical registry key for a solver name (lower-case, hyphenated)."""
    return name.strip().lower().replace("_", "-")


@dataclass(frozen=True)
class SolverInfo:
    """One registry entry: the canonical name, factory and capabilities."""

    name: str
    factory: SolverFactory
    capabilities: SolverCapabilities


class SolverRegistry:
    """A mutable mapping of solver names to factories with capability metadata."""

    def __init__(self) -> None:
        self._entries: Dict[str, SolverInfo] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: SolverFactory,
        capabilities: SolverCapabilities,
        replace: bool = False,
    ) -> SolverInfo:
        """Register a solver factory under ``name``.

        ``factory`` is called with the owning session and must return an
        object satisfying :class:`~repro.solvers.base.BaseSolver`; a
        :class:`~repro.solvers.base.Solver` subclass works as-is.
        Re-registering an existing name raises unless ``replace=True``.
        """
        key = normalize_solver_name(name)
        if not key:
            raise SolverError("solver name must be non-empty")
        if key in self._entries and not replace:
            raise SolverError(
                f"solver {key!r} is already registered; pass replace=True to override"
            )
        info = SolverInfo(name=key, factory=factory, capabilities=capabilities)
        self._entries[key] = info
        return info

    def unregister(self, name: str) -> None:
        """Remove a solver from the registry (missing names raise)."""
        key = normalize_solver_name(name)
        if key not in self._entries:
            raise SolverError(f"unknown solver {name!r}; known: {self.names()}")
        del self._entries[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered solver names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and normalize_solver_name(name) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def info(self, name: str) -> SolverInfo:
        """The registry entry for one solver (unknown names raise)."""
        key = normalize_solver_name(name)
        try:
            return self._entries[key]
        except KeyError:
            raise SolverError(
                f"unknown solver {name!r}; known: {self.names()}"
            ) from None

    def capabilities_of(self, name: str) -> SolverCapabilities:
        """The capability metadata of one solver."""
        return self.info(name).capabilities

    def create(self, name: str, session: "Session") -> BaseSolver:
        """Instantiate a solver for one session."""
        return self.info(name).factory(session)

    def describe(self) -> str:
        """Multi-line listing of every solver and its capabilities."""
        if not self._entries:
            return "(no solvers registered)"
        width = max(len(name) for name in self._entries)
        lines = []
        for name in self.names():
            info = self._entries[name]
            lines.append(f"{name:<{width}}  {info.capabilities.summary()}")
            lines.append(f"{'':<{width}}  {info.capabilities.description}")
        return "\n".join(lines)


# The process-wide registry the built-in solvers register into.
_DEFAULT_REGISTRY = SolverRegistry()


def default_registry() -> SolverRegistry:
    """The process-wide default registry (with all built-in solvers)."""
    # Importing the built-ins lazily avoids a cycle at package import time
    # while guaranteeing the default registry is always populated.
    import repro.solvers.builtin  # noqa: F401

    return _DEFAULT_REGISTRY


def register_solver(
    name: str,
    capabilities: SolverCapabilities,
    registry: Optional[SolverRegistry] = None,
    replace: bool = False,
) -> Callable[[Type[Solver]], Type[Solver]]:
    """Class decorator registering a :class:`Solver` subclass.

    Registers into the default registry unless ``registry`` is given, sets
    the class's ``name``/``capabilities`` attributes to match the registry
    entry, and returns the class unchanged otherwise.
    """

    def decorate(cls: Type[Solver]) -> Type[Solver]:
        target = registry if registry is not None else _DEFAULT_REGISTRY
        info = target.register(name, cls, capabilities, replace=replace)
        cls.name = info.name
        cls.capabilities = info.capabilities
        return cls

    return decorate

"""The solver API's wire format: :class:`ScheduleRequest` / :class:`ScheduleResult`.

Every solver in the registry -- the paper scheduler, the rectangle-packing
baselines, the lower bound -- is driven through the same pair of frozen,
JSON-round-trippable dataclasses:

* a :class:`ScheduleRequest` names the solver and carries everything the
  solve needs (the SOC, the total TAM width, a
  :class:`~repro.core.scheduler.SchedulerConfig`, an optional
  :class:`~repro.soc.constraints.ConstraintSet` and a free-form
  solver-specific ``options`` mapping);
* a :class:`ScheduleResult` carries the makespan, the tester data volume,
  the packed :class:`~repro.schedule.schedule.TestSchedule` (``None`` for
  bound-only solvers) and solver-specific ``metadata``.

Both round-trip through ``to_dict``/``from_dict`` (and ``to_json``/
``from_json``): the SOC travels as its ITC'02-style text form, the config
and constraints as flat dicts.  This is the serialization a future service
layer can put on the wire unchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.core.scheduler import SchedulerConfig
from repro.schedule.schedule import TestSchedule
from repro.soc.constraints import ConstraintSet
from repro.soc.itc02 import format_soc, parse_soc
from repro.soc.soc import Soc

DEFAULT_SOLVER = "paper"


class SolverError(ValueError):
    """Raised for ill-formed requests, unknown solvers or bad solver options."""


@dataclass(frozen=True)
class ScheduleRequest:
    """One self-contained scheduling problem, addressed to one solver.

    Parameters
    ----------
    soc:
        The SOC to schedule.
    total_width:
        Total SOC TAM width ``W`` (bin height).
    solver:
        Registry name of the solver to run (``repro solvers`` lists them).
    config:
        Heuristic parameters shared by all solvers that use preferred
        widths; see :class:`~repro.core.scheduler.SchedulerConfig`.
    constraints:
        Precedence/concurrency/power/preemption constraints, or ``None``
        for unconstrained scheduling.  Solvers that do not support
        constraints ignore them (their capability metadata says so).
    options:
        Solver-specific options (e.g. ``max_buses`` for ``fixed-width``,
        ``percents``/``deltas``/``slacks`` for ``best``).  Unknown option
        names raise :class:`SolverError` at solve time.
    """

    soc: Soc
    total_width: int
    solver: str = DEFAULT_SOLVER
    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    constraints: Optional[ConstraintSet] = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_width <= 0:
            raise SolverError("total TAM width must be positive")
        if not self.solver:
            raise SolverError("a request must name a solver")
        object.__setattr__(self, "options", dict(self.options))

    # ------------------------------------------------------------------
    # Convenience transforms
    # ------------------------------------------------------------------
    def with_solver(self, solver: str) -> "ScheduleRequest":
        """The same problem addressed to a different solver."""
        return replace(self, solver=solver)

    def with_options(self, **options: Any) -> "ScheduleRequest":
        """A copy with extra/overridden solver options."""
        merged = dict(self.options)
        merged.update(options)
        return replace(self, options=merged)

    def fingerprint(self) -> str:
        """A stable content hash identifying this exact problem + solver.

        SHA-256 over the canonical (sorted-keys, compact-separator) JSON
        form of :meth:`to_dict`: two requests share a fingerprint iff
        they serialise identically.  The service layer keys its dedup
        cache, in-flight coalescing and write-ahead journal on this.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict form (round-trips through :meth:`from_dict`)."""
        return {
            "soc": format_soc(self.soc),
            "total_width": self.total_width,
            "solver": self.solver,
            "config": self.config.to_dict(),
            "constraints": (
                self.constraints.to_dict() if self.constraints is not None else None
            ),
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        constraints = data.get("constraints")
        return cls(
            soc=parse_soc(data["soc"]),
            total_width=int(data["total_width"]),
            solver=str(data.get("solver", DEFAULT_SOLVER)),
            config=SchedulerConfig.from_dict(data.get("config") or {}),
            constraints=(
                ConstraintSet.from_dict(constraints) if constraints is not None else None
            ),
            options=dict(data.get("options") or {}),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the request to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRequest":
        """Rebuild a request from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ScheduleResult:
    """The outcome of one :meth:`Session.solve <repro.solvers.Session.solve>`.

    ``wall_time`` describes how long the solve took and is excluded from
    equality, so results of repeated identical solves compare equal.
    """

    solver: str
    soc_name: str
    total_width: int
    makespan: int
    data_volume: int
    schedule: Optional[TestSchedule] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)
    wall_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def is_bound(self) -> bool:
        """True for bound-only results (no schedule was produced)."""
        return self.schedule is None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict form (round-trips through :meth:`from_dict`)."""
        return {
            "solver": self.solver,
            "soc_name": self.soc_name,
            "total_width": self.total_width,
            "makespan": self.makespan,
            "data_volume": self.data_volume,
            "schedule": self.schedule.to_dict() if self.schedule is not None else None,
            "metadata": dict(self.metadata),
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleResult":
        """Rebuild a result from :meth:`to_dict` output."""
        schedule = data.get("schedule")
        return cls(
            solver=str(data["solver"]),
            soc_name=str(data["soc_name"]),
            total_width=int(data["total_width"]),
            makespan=int(data["makespan"]),
            data_volume=int(data["data_volume"]),
            schedule=TestSchedule.from_dict(schedule) if schedule is not None else None,
            metadata=dict(data.get("metadata") or {}),
            wall_time=float(data.get("wall_time") or 0.0),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the result to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

"""Unified solver API: one ``solve(ScheduleRequest)`` front door.

Every scheduling algorithm in the repository -- the paper's
``TAM_schedule_optimizer``, its best-over-grid protocol, the fixed-width
and shelf baselines, the exhaustive reference packer and the testing-time
lower bound -- is a *solver* behind a single API:

>>> from repro.solvers import ScheduleRequest, Session
>>> from repro.soc.benchmarks import d695
>>> session = Session()
>>> result = session.solve(ScheduleRequest(soc=d695(), total_width=32))
>>> shelf = session.solve(
...     ScheduleRequest(soc=d695(), total_width=32, solver="shelf"))
>>> result.makespan <= shelf.makespan
True

The :class:`Session` shares one Pareto rectangle cache across all solvers
and widths, so comparing many algorithms on one SOC recomputes no wrapper
designs.  New solvers plug in with :func:`register_solver`; requests and
results are frozen dataclasses that round-trip through JSON (the wire
format a future service layer uses unchanged).

Layering: ``request`` (wire format) -> ``base`` (solver contract) ->
``registry`` (name -> factory + capabilities) -> ``builtin`` (the six
built-in solvers) -> ``session`` (cache-sharing facade).
"""

from repro.solvers.base import BaseSolver, Solver, SolverCapabilities
from repro.solvers.registry import (
    SolverInfo,
    SolverRegistry,
    default_registry,
    normalize_solver_name,
    register_solver,
)
from repro.solvers.request import (
    DEFAULT_SOLVER,
    ScheduleRequest,
    ScheduleResult,
    SolverError,
)
from repro.solvers.session import (
    Session,
    SessionCacheInfo,
    get_default_session,
    solve,
)
import repro.solvers.builtin  # noqa: F401  (registers the built-in solvers)

__all__ = [
    "BaseSolver",
    "Solver",
    "SolverCapabilities",
    "SolverInfo",
    "SolverRegistry",
    "default_registry",
    "normalize_solver_name",
    "register_solver",
    "DEFAULT_SOLVER",
    "ScheduleRequest",
    "ScheduleResult",
    "SolverError",
    "Session",
    "SessionCacheInfo",
    "get_default_session",
    "solve",
]

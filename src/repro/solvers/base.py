"""The solver contract: capability metadata and the :class:`Solver` base class.

A solver is any object with a ``name``, a :class:`SolverCapabilities`
record and a single method ``solve(request) -> ScheduleResult``
(:class:`BaseSolver` spells out the protocol).  Concrete solvers usually
subclass :class:`Solver`, which stores the owning
:class:`~repro.solvers.session.Session` (for the shared Pareto rectangle
cache), validates solver options and assembles results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Protocol

from repro.core.data_volume import tester_data_volume
from repro.core.rectangles import RectangleSet
from repro.schedule.schedule import TestSchedule
from repro.soc.soc import Soc
from repro.solvers.request import ScheduleRequest, ScheduleResult, SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.solvers.session import Session


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver can (and cannot) do.

    Parameters
    ----------
    description:
        One-line human-readable summary (shown by ``repro solvers``).
    supports_constraints:
        Honors precedence/concurrency constraints in the request.  Solvers
        without this flag silently ignore the request's constraint set
        (matching their historical free-function behaviour).
    supports_preemption:
        Honors per-core preemption budgets (may split tests).
    supports_power:
        Honors the request's power budget.
    exact:
        Produces a provably optimal answer on the instances it accepts.
    produces_schedule:
        Returns a packed :class:`~repro.schedule.schedule.TestSchedule`;
        bound-only solvers (e.g. ``lower-bound``) return just a makespan.
    """

    description: str
    supports_constraints: bool = False
    supports_preemption: bool = False
    supports_power: bool = False
    exact: bool = False
    produces_schedule: bool = True

    def summary(self) -> str:
        """Compact ``flag=yes/no`` rendering used by the CLI listing."""

        def yn(flag: bool) -> str:
            return "yes" if flag else "no"

        return (
            f"schedule={yn(self.produces_schedule)} "
            f"constraints={yn(self.supports_constraints)} "
            f"preemption={yn(self.supports_preemption)} "
            f"power={yn(self.supports_power)} "
            f"exact={yn(self.exact)}"
        )


class BaseSolver(Protocol):
    """The protocol every registered solver satisfies."""

    name: str
    capabilities: SolverCapabilities

    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        """Solve one request and return the result."""
        ...  # pragma: no cover - protocol stub


class Solver:
    """Convenience base class for registry solvers.

    Subclasses set the ``name`` and ``capabilities`` class attributes and
    implement :meth:`solve`.  The base class provides access to the owning
    session's shared Pareto rectangle cache, option validation and result
    assembly.
    """

    name: str = ""
    capabilities: SolverCapabilities = SolverCapabilities(description="")

    def __init__(self, session: "Session") -> None:
        self._session = session

    @property
    def session(self) -> "Session":
        """The session this solver instance belongs to."""
        return self._session

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def rectangle_sets(self, soc: Soc, max_width: int) -> Dict[str, RectangleSet]:
        """Pareto rectangle sets from the session's shared cache."""
        return self._session.rectangle_sets(soc, max_width)

    def options(self, request: ScheduleRequest, **defaults: Any) -> Dict[str, Any]:
        """Merge request options over ``defaults``; unknown names raise."""
        unknown = sorted(set(request.options) - set(defaults))
        if unknown:
            raise SolverError(
                f"solver {self.name!r} does not understand options {unknown}; "
                f"known options: {sorted(defaults)}"
            )
        merged = dict(defaults)
        merged.update(request.options)
        return merged

    def schedule_result(
        self,
        request: ScheduleRequest,
        schedule: TestSchedule,
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> ScheduleResult:
        """Wrap a packed schedule into a :class:`ScheduleResult`."""
        return ScheduleResult(
            solver=self.name,
            soc_name=request.soc.name,
            total_width=request.total_width,
            makespan=schedule.makespan,
            data_volume=tester_data_volume(schedule),
            schedule=schedule,
            metadata=dict(metadata or {}),
        )

    def bound_result(
        self,
        request: ScheduleRequest,
        makespan: int,
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> ScheduleResult:
        """Wrap a bound-only answer (no schedule) into a :class:`ScheduleResult`.

        With no schedule to measure, ``data_volume`` is the same bound
        applied to ``D(W) = W * T``.
        """
        return ScheduleResult(
            solver=self.name,
            soc_name=request.soc.name,
            total_width=request.total_width,
            makespan=makespan,
            data_volume=request.total_width * makespan,
            schedule=None,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    def solve(self, request: ScheduleRequest) -> ScheduleResult:
        """Solve one request; subclasses must override."""
        raise NotImplementedError

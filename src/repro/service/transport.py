"""Transports of the scheduling service: stdin-JSONL first, TCP behind it.

Both transports are thin shells over one :class:`~repro.service.supervisor
.Supervisor`; every admission, deadline, dedup and journalling decision
lives in the supervisor, so the two transports cannot diverge in
behaviour.  A transport's whole job is:

* read client JSONL lines and hand parsed messages to
  :meth:`Supervisor.process`;
* give the supervisor a thread-safe ``reply`` callable for its worker
  threads to deliver events through;
* map transport lifecycle onto supervisor lifecycle -- and the mapping
  is deliberately asymmetric:

  - **stdin EOF means drain, not disconnect.**  A pipe client writes all
    its lines and closes stdin; the results are still wanted, so the
    server stops accepting, finishes the queue and says ``bye``.
  - **a broken write pipe means disconnect.**  Nobody is reading, so the
    client's in-flight work is cancelled via its tokens.
  - **a closed TCP connection means disconnect** (the peer is gone), and
    a slow TCP consumer whose write buffer exceeds the bound is treated
    the same way -- backpressure is not allowed to turn into unbounded
    server-side buffering.

``SIGTERM`` asks the stream server for the same graceful drain an EOF
does (finish in-flight work, journal everything, ``bye``, exit).
"""

from __future__ import annotations

import asyncio
import signal
import threading
from typing import Any, Dict, IO, Optional

from repro.service import protocol
from repro.service.supervisor import Supervisor

#: Per-connection TCP write-buffer bound (bytes) before a consumer is
#: declared too slow and disconnected.
TCP_WRITE_BUFFER_LIMIT = 4 * 1024 * 1024


class _DrainRequested(Exception):
    """Raised by the SIGTERM handler to interrupt a blocking readline."""


class _StreamWriter:
    """Serialises server messages onto one text stream (thread-safe).

    Supervisor worker threads and the transport's read loop both write
    through this; the lock keeps JSONL lines whole.  A write failure
    marks the stream broken so the caller can translate it into a
    disconnect exactly once.
    """

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._lock = threading.Lock()
        self.broken = False

    def send(self, message: Dict[str, Any]) -> None:
        with self._lock:
            if self.broken:
                raise BrokenPipeError("service output stream already broken")
            try:
                self._stream.write(protocol.encode_message(message) + "\n")
                self._stream.flush()
            except (BrokenPipeError, OSError):
                self.broken = True
                raise


def serve_stream(
    supervisor: Supervisor,
    input_stream: IO[str],
    output_stream: IO[str],
    client: str = "stdin",
    drain_timeout: float = 30.0,
    install_signal_handlers: bool = False,
) -> int:
    """Serve one JSONL client over a pair of text streams; returns served count.

    The loop ends on EOF, an explicit ``shutdown`` op, or SIGTERM (when
    ``install_signal_handlers`` is set and we are the main thread); all
    three drain the queue and emit ``bye``.  A broken output pipe instead
    disconnects the client (cancelling its in-flight work) and exits
    without draining on its behalf.
    """
    writer = _StreamWriter(output_stream)

    def reply(message: Dict[str, Any]) -> None:
        writer.send(message)

    previous_handler: Any = None
    handling_signals = (
        install_signal_handlers
        and threading.current_thread() is threading.main_thread()
    )
    if handling_signals:

        def _on_sigterm(signum: int, frame: Any) -> None:
            raise _DrainRequested()

        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        try:
            reply(
                protocol.hello_message(
                    supervisor.config.max_inflight, supervisor.config.queue_limit
                )
            )
            if not supervisor.started:
                # Starting after the hello routes journal-replay traffic
                # (re-served results, re-run requests) to this client.
                supervisor.start(replay_reply=reply)
            while True:
                line = input_stream.readline()
                if not line:
                    break  # EOF: the client said everything; drain and bye
                if not line.strip():
                    continue
                try:
                    message = protocol.parse_client_line(line)
                except protocol.ProtocolError as error:
                    reply(
                        protocol.rejected_message(
                            "", protocol.REJECT_BAD_REQUEST, error=str(error)
                        )
                    )
                    continue
                if not supervisor.process(message, reply, client=client):
                    break  # shutdown op: drain and bye
        except _DrainRequested:
            pass  # SIGTERM: fall through to the drain
        supervisor.drain(timeout=drain_timeout)
        reply(protocol.bye_message(supervisor.served))
    except (BrokenPipeError, OSError):
        # Nobody is reading: cancel this client's work instead of
        # finishing it into a dead pipe.
        supervisor.disconnect(client)
    finally:
        if handling_signals:
            signal.signal(signal.SIGTERM, previous_handler)
    return supervisor.served


# ----------------------------------------------------------------------
# TCP
# ----------------------------------------------------------------------
async def _serve_connection(
    supervisor: Supervisor,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    client: str,
    shutdown: asyncio.Event,
) -> None:
    loop = asyncio.get_running_loop()
    send_lock = threading.Lock()
    closed = False

    def _write_now(message: Dict[str, Any]) -> None:
        nonlocal closed
        if closed or writer.is_closing():
            return
        transport = writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > TCP_WRITE_BUFFER_LIMIT
        ):
            # Slow consumer: close rather than buffer without bound.
            closed = True
            supervisor.disconnect(client)
            writer.close()
            return
        writer.write((protocol.encode_message(message) + "\n").encode("utf-8"))

    def reply(message: Dict[str, Any]) -> None:
        # Worker threads marshal their deliveries onto the event loop.
        with send_lock:
            loop.call_soon_threadsafe(_write_now, message)

    _write_now(
        protocol.hello_message(
            supervisor.config.max_inflight, supervisor.config.queue_limit
        )
    )
    try:
        while not shutdown.is_set():
            raw = await reader.readline()
            if not raw:
                break  # peer closed the connection
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            try:
                message = protocol.parse_client_line(line)
            except protocol.ProtocolError as error:
                reply(
                    protocol.rejected_message(
                        "", protocol.REJECT_BAD_REQUEST, error=str(error)
                    )
                )
                continue
            if not supervisor.process(message, reply, client=client):
                shutdown.set()
                break
    finally:
        # A vanished TCP peer is a disconnect: cancel its in-flight work.
        supervisor.disconnect(client)
        closed = True
        if not writer.is_closing():
            writer.close()


async def _serve_tcp(
    supervisor: Supervisor, host: str, port: int, drain_timeout: float
) -> int:
    shutdown = asyncio.Event()
    connection_count = 0

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        nonlocal connection_count
        connection_count += 1
        await _serve_connection(
            supervisor, reader, writer, f"tcp:{connection_count}", shutdown
        )

    server = await asyncio.start_server(handler, host, port)
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, shutdown.set)
    except (NotImplementedError, RuntimeError):
        pass  # not the main thread / platform without signal support
    async with server:
        await shutdown.wait()
    await asyncio.to_thread(supervisor.drain, drain_timeout)
    return supervisor.served


def serve_tcp(
    supervisor: Supervisor,
    host: str = "127.0.0.1",
    port: int = 7533,
    drain_timeout: float = 30.0,
) -> int:
    """Serve JSONL clients over TCP until a ``shutdown`` op or SIGTERM."""
    return asyncio.run(_serve_tcp(supervisor, host, port, drain_timeout))


__all__ = [
    "TCP_WRITE_BUFFER_LIMIT",
    "serve_stream",
    "serve_tcp",
]

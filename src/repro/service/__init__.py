"""The supervised scheduling service (``repro serve``).

Layers, bottom up:

* :mod:`repro.service.protocol` -- the JSONL wire vocabulary (client ops,
  server events, admission/failure reasons, dedup provenance) and the
  canonical result-identity helpers.
* :mod:`repro.service.journal` -- the write-ahead event journal and the
  pure :func:`~repro.service.journal.replay` fold that turns a journal
  file into a restart plan.
* :mod:`repro.service.supervisor` -- the transport-agnostic core:
  admission control, backpressure, deadlines/cancellation, dedup +
  coalescing, journalling and crash recovery over
  ``solve(ScheduleRequest)``.
* :mod:`repro.service.transport` -- thin stdin-JSONL and asyncio TCP
  shells over one supervisor.
* :mod:`repro.service.chaos` -- service-level fault scenarios (worker
  kill, client disconnect, server kill + restart, queue flood) asserting
  byte-identity against batch ``Session.solve``.
"""

from repro.service.chaos import (
    SERVE_FAULT_KINDS,
    ServeChaosOutcome,
    ServeChaosReport,
    run_serve_chaos,
)
from repro.service.journal import EventJournal, JournalRecord, ReplayPlan, replay
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_result_dict,
    parse_client_line,
    result_fingerprint,
)
from repro.service.supervisor import Reply, ServiceConfig, Supervisor, SupervisorError
from repro.service.transport import serve_stream, serve_tcp

__all__ = [
    "EventJournal",
    "JournalRecord",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Reply",
    "ReplayPlan",
    "SERVE_FAULT_KINDS",
    "ServeChaosOutcome",
    "ServeChaosReport",
    "ServiceConfig",
    "Supervisor",
    "SupervisorError",
    "canonical_result_dict",
    "parse_client_line",
    "replay",
    "result_fingerprint",
    "run_serve_chaos",
    "serve_stream",
    "serve_tcp",
]

"""Service-level chaos: prove the supervisor under process-shaped faults.

The engine chaos harness (PR 8, ``repro chaos``) proves that one solve
survives worker kills, injected exceptions, hangs and pool-creation
failures byte-identically.  This module lifts the same discipline one
layer up, to the *service*: each scenario drives a real
:class:`~repro.service.supervisor.Supervisor` through a fault that only
exists once there is a server --

``worker-kill``
    a pool worker is killed mid-request (engine fault plan on the grid
    tasks); the recovery ladder restores the fan-out and the served
    result must match the fault-free batch ``Session.solve``.
``disconnect``
    client A disconnects while its solve is in flight and an identical
    request from client B has coalesced onto it; A's run is abandoned
    via its cancel token, B is re-dispatched and must still get the
    batch-identical result.
``server-kill``
    the server "SIGKILLs" (journalling and delivery stop dead) between
    two requests; a fresh supervisor on the same journal re-serves the
    completed-but-unacked result **verbatim** and re-runs the unsettled
    request to the batch-identical result.
``flood``
    more requests than ``queue_limit`` arrive while the single worker is
    held; exactly ``queue_limit`` are accepted, the rest are rejected
    ``overloaded``, and every accepted request still settles correctly.

Determinism: scenarios gate the supervisor's worker threads on events
(via ``started_hook``) instead of sleeping, so the interleavings are
forced, not raced.  Every identity check compares canonical result dicts
(:func:`~repro.service.protocol.canonical_result_dict` -- ``wall_time``
zeroed) against a fault-free batch solve of the same request.
"""

from __future__ import annotations

import tempfile
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.executor import FlatExecutor
from repro.engine.faults import FaultAction, FaultPlan
from repro.service import protocol
from repro.service.supervisor import ServiceConfig, Supervisor
from repro.solvers import ScheduleRequest, Session
from repro.soc.soc import Soc

SERVE_FAULT_KINDS: Tuple[str, ...] = (
    "worker-kill",
    "disconnect",
    "server-kill",
    "flood",
)

#: Trimmed ``best`` grid: enough grid fan-out to be worth killing workers
#: over, small enough for smoke runs (mirrors the perf-suite trim).
SERVE_SOLVE_OPTIONS: Dict[str, Any] = {
    "percents": (1, 25),
    "deltas": (0,),
    "slacks": (3, 6),
}

_GATE_TIMEOUT = 60.0


@dataclass(frozen=True)
class ServeChaosOutcome:
    """One scenario's verdict."""

    kind: str
    passed: bool
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form."""
        return {"kind": self.kind, "passed": self.passed, "detail": self.detail}


@dataclass(frozen=True)
class ServeChaosReport:
    """The whole serve-chaos run: one outcome per requested fault kind."""

    soc_name: str
    width: int
    outcomes: Tuple[ServeChaosOutcome, ...]

    @property
    def ok(self) -> bool:
        """True when every scenario held its byte-identity contract."""
        return all(outcome.passed for outcome in self.outcomes)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (the ``--journal`` export)."""
        return {
            "soc": self.soc_name,
            "width": self.width,
            "ok": self.ok,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


class _Collector:
    """Thread-safe reply sink recording every delivered server message."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._messages: List[Dict[str, Any]] = []

    def __call__(self, message: Dict[str, Any]) -> None:
        with self._lock:
            self._messages.append(dict(message))

    def messages(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            snapshot = list(self._messages)
        if event is None:
            return snapshot
        return [message for message in snapshot if message.get("event") == event]

    def results(self) -> Dict[str, Dict[str, Any]]:
        return {
            message["id"]: dict(message["result"])
            for message in self.messages(protocol.EVENT_RESULT)
        }


class _Gate:
    """Holds the first solve at its ``started`` hook until released."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, request_id: str) -> None:
        with self._lock:
            self._calls += 1
            first = self._calls == 1
        if first:
            self.entered.set()
            self.release.wait(timeout=_GATE_TIMEOUT)


def _base_request(soc: Soc, width: int) -> ScheduleRequest:
    return ScheduleRequest(
        soc=soc, total_width=width, solver="best", options=dict(SERVE_SOLVE_OPTIONS)
    )


def _batch_canonical(request: ScheduleRequest) -> Dict[str, Any]:
    """The fault-free batch reference, in canonical (wall-time-free) form."""
    session = Session(workers=0)
    try:
        return protocol.canonical_result_dict(session.solve(request).to_dict())
    finally:
        session.close()


def _identical(result: Dict[str, Any], reference: Dict[str, Any]) -> bool:
    return protocol.canonical_result_dict(result) == reference


def _failed_outcome(kind: str, detail: str) -> ServeChaosOutcome:
    return ServeChaosOutcome(kind=kind, passed=False, detail=detail)


def _passed_outcome(kind: str, detail: str) -> ServeChaosOutcome:
    return ServeChaosOutcome(kind=kind, passed=True, detail=detail)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _scenario_worker_kill(
    soc: Soc, width: int, reference: Dict[str, Any]
) -> ServeChaosOutcome:
    """Kill a pool worker mid-request; the serve result must not drift."""
    kind = "worker-kill"
    plan = FaultPlan(actions=(FaultAction(kind="kill", match="grid:"),))
    supervisor = Supervisor(
        config=ServiceConfig(max_inflight=1, workers=2),
        # A tight watchdog keeps the kill-detect-recover cycle smoke-fast.
        executor=FlatExecutor(fault_plan=plan, task_deadline=5.0),
    )
    collector = _Collector()
    try:
        with warnings.catch_warnings():
            # The pool-degrade RuntimeWarning is the recovery ladder
            # doing its job; the journal records it.
            warnings.simplefilter("ignore", RuntimeWarning)
            supervisor.start()
            supervisor.submit("wk-1", _base_request(soc, width), collector)
            if not supervisor.drain(timeout=_GATE_TIMEOUT):
                return _failed_outcome(kind, "drain timed out")
    finally:
        supervisor.close()
    results = collector.results()
    if "wk-1" not in results:
        failures = collector.messages(protocol.EVENT_FAILED)
        return _failed_outcome(kind, f"no result delivered; failed events: {failures}")
    if not _identical(results["wk-1"], reference):
        return _failed_outcome(kind, "served result drifted from batch reference")
    return _passed_outcome(
        kind, "killed pool worker recovered; result byte-identical to batch solve"
    )


def _scenario_disconnect(
    soc: Soc, width: int, reference: Dict[str, Any]
) -> ServeChaosOutcome:
    """Client A vanishes mid-solve; coalesced client B must still be served."""
    kind = "disconnect"
    supervisor = Supervisor(config=ServiceConfig(max_inflight=2, workers=0))
    collector = _Collector()
    gate = _Gate()
    supervisor.started_hook = gate
    request = _base_request(soc, width)
    try:
        supervisor.start()
        supervisor.submit("dc-a", request, collector, client="alice")
        if not gate.entered.wait(timeout=_GATE_TIMEOUT):
            return _failed_outcome(kind, "primary solve never started")
        supervisor.submit("dc-b", request, collector, client="bob")
        # Let B coalesce onto A's (gated) in-flight solve before pulling
        # the plug on A.
        deadline = time.perf_counter() + _GATE_TIMEOUT
        while supervisor.stats().get("dedup_coalesced", 0) < 1:
            if time.perf_counter() >= deadline:
                return _failed_outcome(
                    kind, "follower never coalesced onto the primary"
                )
            time.sleep(0.005)
        supervisor.disconnect("alice")
        gate.release.set()
        if not supervisor.drain(timeout=_GATE_TIMEOUT):
            return _failed_outcome(kind, "drain timed out")
    finally:
        gate.release.set()
        supervisor.close()
    results = collector.results()
    if "dc-a" in results:
        return _failed_outcome(kind, "disconnected client still received a result")
    if "dc-b" not in results:
        return _failed_outcome(kind, "surviving client was never served")
    if not _identical(results["dc-b"], reference):
        return _failed_outcome(kind, "re-dispatched result drifted from batch")
    stats = supervisor.stats()
    return _passed_outcome(
        kind,
        "primary abandoned on disconnect; follower re-dispatched "
        f"(redispatched={stats.get('redispatched', 0)}) and served identically",
    )


def _scenario_server_kill(
    soc: Soc, width: int, reference: Dict[str, Any], journal_dir: Path
) -> ServeChaosOutcome:
    """SIGKILL between requests; the journal must make restart lossless."""
    kind = "server-kill"
    journal_path = journal_dir / "serve_chaos_journal.jsonl"
    if journal_path.exists():
        journal_path.unlink()
    request_one = _base_request(soc, width)
    request_two = request_one.with_options(slacks=(3,))
    reference_two = _batch_canonical(request_two)

    first = Supervisor(
        config=ServiceConfig(max_inflight=1, workers=0, journal_path=journal_path)
    )
    collector = _Collector()

    def crash_on_second(request_id: str) -> None:
        if request_id == "sk-2":
            first.crash_for_test()

    first.started_hook = crash_on_second
    try:
        first.start()
        first.submit("sk-1", request_one, collector)
        first.submit("sk-2", request_two, collector)
        first.drain(timeout=_GATE_TIMEOUT)
    finally:
        first.close()
    results = collector.results()
    if "sk-1" not in results:
        return _failed_outcome(kind, "first request was not served before the kill")
    if "sk-2" in results:
        return _failed_outcome(kind, "killed server somehow delivered a result")
    pre_kill_result = results["sk-1"]

    replay_collector = _Collector()
    second = Supervisor(
        config=ServiceConfig(max_inflight=1, workers=0, journal_path=journal_path)
    )
    try:
        second.start(replay_reply=replay_collector)
        if not second.drain(timeout=_GATE_TIMEOUT):
            return _failed_outcome(kind, "recovery drain timed out")
    finally:
        second.close()
    replayed = {
        message["id"]: message
        for message in replay_collector.messages(protocol.EVENT_RESULT)
    }
    if "sk-1" not in replayed:
        return _failed_outcome(kind, "completed-unacked request was not replayed")
    if replayed["sk-1"].get("dedup") != protocol.DEDUP_REPLAYED:
        return _failed_outcome(kind, "replayed result not marked as replayed")
    if dict(replayed["sk-1"]["result"]) != pre_kill_result:
        # Verbatim means verbatim: wall_time included, byte for byte.
        return _failed_outcome(kind, "replayed result differs from the original")
    if "sk-2" not in replayed:
        return _failed_outcome(kind, "unsettled request was not re-run after restart")
    if not _identical(dict(replayed["sk-2"]["result"]), reference_two):
        return _failed_outcome(kind, "re-run result drifted from batch reference")
    return _passed_outcome(
        kind,
        "journal replay re-served the unacked result verbatim and re-ran "
        "the unsettled request byte-identically",
    )


def _scenario_flood(
    soc: Soc, width: int, reference: Dict[str, Any]
) -> ServeChaosOutcome:
    """Overfill the queue: exact admission accounting, no lost work."""
    kind = "flood"
    config = ServiceConfig(max_inflight=1, queue_limit=2, workers=0)
    supervisor = Supervisor(config=config)
    collector = _Collector()
    gate = _Gate()
    supervisor.started_hook = gate
    request = _base_request(soc, width)
    try:
        supervisor.start()
        supervisor.submit("fl-0", request, collector)
        if not gate.entered.wait(timeout=_GATE_TIMEOUT):
            return _failed_outcome(kind, "gated solve never started")
        for index in range(1, 7):
            supervisor.submit(f"fl-{index}", request, collector)
        gate.release.set()
        if not supervisor.drain(timeout=_GATE_TIMEOUT):
            return _failed_outcome(kind, "drain timed out")
    finally:
        gate.release.set()
        supervisor.close()
    accepted = collector.messages(protocol.EVENT_ACCEPTED)
    rejected = [
        message
        for message in collector.messages(protocol.EVENT_REJECTED)
        if message.get("reason") == protocol.REJECT_OVERLOADED
    ]
    if len(accepted) != 1 + config.queue_limit:
        return _failed_outcome(
            kind, f"expected {1 + config.queue_limit} accepts, got {len(accepted)}"
        )
    if len(rejected) != 6 - config.queue_limit:
        return _failed_outcome(
            kind, f"expected {6 - config.queue_limit} overload rejects, got {len(rejected)}"
        )
    if any(message.get("queue_depth") != config.queue_limit for message in rejected):
        return _failed_outcome(kind, "overload rejections misreported queue depth")
    results = collector.results()
    accepted_ids = {message["id"] for message in accepted}
    if set(results) != accepted_ids:
        return _failed_outcome(
            kind, f"accepted {sorted(accepted_ids)} but served {sorted(results)}"
        )
    if not all(_identical(result, reference) for result in results.values()):
        return _failed_outcome(kind, "a flooded result drifted from batch reference")
    return _passed_outcome(
        kind,
        f"{len(accepted)} accepted / {len(rejected)} rejected overloaded; "
        "every accepted request served batch-identically",
    )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_serve_chaos(
    soc: Soc,
    width: int,
    kinds: Sequence[str] = SERVE_FAULT_KINDS,
    journal_dir: Optional[Path] = None,
) -> ServeChaosReport:
    """Run the requested service-level fault scenarios against one SOC.

    Every scenario asserts that each completed request's result is
    canonically identical to a fault-free batch ``Session.solve`` of the
    same request (and the replay scenario additionally asserts verbatim
    journal re-serving).
    """
    unknown = sorted(set(kinds) - set(SERVE_FAULT_KINDS))
    if unknown:
        raise ValueError(
            f"unknown serve fault kind(s) {', '.join(unknown)}; "
            f"expected a subset of {SERVE_FAULT_KINDS}"
        )
    reference = _batch_canonical(_base_request(soc, width))
    outcomes: List[ServeChaosOutcome] = []
    for kind in kinds:
        if kind == "worker-kill":
            outcomes.append(_scenario_worker_kill(soc, width, reference))
        elif kind == "disconnect":
            outcomes.append(_scenario_disconnect(soc, width, reference))
        elif kind == "server-kill":
            if journal_dir is None:
                with tempfile.TemporaryDirectory() as tmp:
                    outcomes.append(
                        _scenario_server_kill(soc, width, reference, Path(tmp))
                    )
            else:
                outcomes.append(
                    _scenario_server_kill(soc, width, reference, journal_dir)
                )
        elif kind == "flood":
            outcomes.append(_scenario_flood(soc, width, reference))
    return ServeChaosReport(soc_name=soc.name, width=width, outcomes=tuple(outcomes))


__all__ = [
    "SERVE_FAULT_KINDS",
    "SERVE_SOLVE_OPTIONS",
    "ServeChaosOutcome",
    "ServeChaosReport",
    "run_serve_chaos",
]

"""The service supervisor: admission, backpressure, deadlines, recovery.

A :class:`Supervisor` is the long-lived core behind ``repro serve``.  It
owns one session-scoped solve path (a :class:`~repro.solvers.Session`,
optionally backed by a dedicated
:class:`~repro.engine.executor.FlatExecutor` for fault injection) and a
small pool of worker *threads* that drain a bounded accept queue:

* **admission control** -- at most ``queue_limit`` requests wait at any
  time; beyond that, ``solve`` ops are rejected ``overloaded`` instead
  of buffering without bound.  Every accepted/rejected reply carries the
  current queue depth so clients see backpressure explicitly.
* **deadlines and cancellation** -- each request gets a
  :class:`~repro.engine.faults.CancelToken` (deadline-armed when the
  client asked for one).  The token is installed as the ambient cancel
  scope around the solve, so the scheduler's event loop and the
  executor's dispatch loop abandon the run mid-flight -- the PR 9
  incumbent-board abort cadence -- instead of finishing doomed work.
  Client disconnects cancel all of that client's tickets the same way.
* **dedup + coalescing** -- requests are keyed by
  :meth:`ScheduleRequest.fingerprint`; an identical request arriving
  while one is in flight attaches as a *follower* of the running
  *primary* (one executor fan-out serves all of them), and settled
  results are served from a bounded LRU cache afterwards.
* **write-ahead journal** -- every transition is journalled *before* it
  is acted on (:mod:`repro.service.journal`), which is what makes a
  killed-and-restarted supervisor recover: completed-but-unacked results
  re-serve verbatim, unsettled requests re-run deterministically.

Threading model: ``submit``/``cancel``/``ack``/``disconnect`` may be
called from any thread; all mutable state is guarded by one lock, and
solves happen outside it.  Solves that fan out into the process pool are
additionally serialised by a solve lock (the flat executor is not
re-entrant); in-thread serial solves run concurrently under the GIL.
"""

from __future__ import annotations

import contextlib
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

from repro.engine.executor import FlatExecutor, use_executor
from repro.engine.faults import (
    CancelledSolve,
    CancelToken,
    cancel_scope,
    format_error,
)
from repro.service import protocol
from repro.service.journal import (
    KIND_ACCEPTED,
    KIND_ACKED,
    KIND_COMPLETED,
    KIND_FAILED,
    KIND_STARTED,
    EventJournal,
    ReplayPlan,
    replay,
)
from repro.solvers import ScheduleRequest, ScheduleResult, Session, SolverError

#: A transport-provided delivery callable: takes one server message dict.
#: Must be safe to call from supervisor worker threads.
Reply = Callable[[Dict[str, Any]], None]


def _null_reply(message: Dict[str, Any]) -> None:
    """Delivery sink of disconnected clients: drop the message."""


class SupervisorError(RuntimeError):
    """Raised for supervisor lifecycle misuse (e.g. submit after close)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one supervisor.

    ``max_inflight`` is the worker-thread count (requests being solved at
    once); ``queue_limit`` bounds the accept queue (admission control);
    ``default_deadline`` applies to requests that name none (``None`` =
    unbounded); ``dedup_cache_size`` bounds the fingerprint->result LRU;
    ``workers`` is the per-solve process fan-out handed to the session
    (0 = in-thread serial solves, fully cancellable); ``journal_path``
    enables the write-ahead journal (``None`` = in-memory only);
    ``fsync`` syncs every journal record to disk.
    """

    max_inflight: int = 2
    queue_limit: int = 8
    default_deadline: Optional[float] = None
    dedup_cache_size: int = 128
    workers: int = 0
    journal_path: Optional[Path] = None
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise SupervisorError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.queue_limit < 1:
            raise SupervisorError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise SupervisorError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )
        if self.dedup_cache_size < 0:
            raise SupervisorError(
                f"dedup_cache_size must be >= 0, got {self.dedup_cache_size}"
            )
        if self.workers < 0:
            raise SupervisorError(f"workers must be >= 0, got {self.workers}")


class _Ticket:
    """One admitted request travelling through the supervisor."""

    __slots__ = (
        "request_id",
        "client",
        "request",
        "fingerprint",
        "reply",
        "token",
        "followers",
        "dedup",
    )

    def __init__(
        self,
        request_id: str,
        client: str,
        request: ScheduleRequest,
        fingerprint: str,
        reply: Reply,
        token: CancelToken,
        dedup: str = protocol.DEDUP_FRESH,
    ) -> None:
        self.request_id = request_id
        self.client = client
        self.request = request
        self.fingerprint = fingerprint
        self.reply = reply
        self.token = token
        self.followers: List["_Ticket"] = []
        self.dedup = dedup


class Supervisor:
    """Supervised scheduling service core (transport-agnostic)."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        session: Optional[Session] = None,
        executor: Optional[FlatExecutor] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._session = (
            session if session is not None else Session(workers=self.config.workers)
        )
        self._executor = executor
        self._stack = contextlib.ExitStack()
        self._lock = threading.RLock()
        self._solve_lock = threading.Lock()  # the flat executor is not re-entrant
        self._queue: "queue.Queue[Optional[_Ticket]]" = queue.Queue()
        self._tickets: Dict[str, _Ticket] = {}
        self._primaries: Dict[str, _Ticket] = {}
        self._cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._seen_ids: Set[str] = set()
        self._completed_ids: Set[str] = set()
        self._queued = 0
        self._inflight = 0
        self._max_queue_depth = 0
        self._counters: Dict[str, int] = {}
        self._accepting = False
        self._crashed = False
        self._closed = False
        self._started = False
        self._threads: List[threading.Thread] = []
        self._replay_plan: Optional[ReplayPlan] = None
        self._journal = self._open_journal()
        #: Test/chaos hook: called (with the ticket) after the ``started``
        #: record is journalled, immediately before the solve.
        self.started_hook: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _open_journal(self) -> EventJournal:
        """Open the write-ahead journal, replaying any existing file."""
        path = self.config.journal_path
        self._replay_plan = None
        if path is None:
            return EventJournal(None, fsync=self.config.fsync)
        if Path(path).exists():
            plan = replay(EventJournal.load(Path(path)))
            self._replay_plan = plan
            self._seen_ids.update(plan.seen_ids)
            self._completed_ids.update(plan.completed_ids)
            for fingerprint, result in plan.cache.items():
                self._cache_store(fingerprint, dict(result))
            return EventJournal(
                Path(path), fsync=self.config.fsync, start_seq=plan.next_seq
            )
        return EventJournal(Path(path), fsync=self.config.fsync)

    def start(self, replay_reply: Optional[Reply] = None) -> "Supervisor":
        """Spawn workers; re-serve and re-enqueue journalled work first.

        ``replay_reply`` receives the recovery traffic of a pre-existing
        journal: every completed-but-unacked result (verbatim, marked
        ``dedup=replayed``) and, later, the results of re-run unsettled
        requests as they settle.
        """
        if self._started:
            raise SupervisorError("supervisor already started")
        self._started = True
        self._accepting = True
        if self._executor is not None:
            self._stack.enter_context(use_executor(self._executor))
        sink = replay_reply if replay_reply is not None else _null_reply
        plan = self._replay_plan
        if plan is not None:
            for record in plan.completed_unacked:
                result = record.payload.get("result")
                if isinstance(result, dict):
                    self._record("replayed")
                    self._record("served")
                    sink(
                        protocol.result_message(
                            record.request_id,
                            record.fingerprint,
                            result,
                            dedup=protocol.DEDUP_REPLAYED,
                        )
                    )
            for record in plan.pending:
                request_payload = record.payload.get("request")
                if not isinstance(request_payload, dict):
                    continue
                deadline = record.payload.get("deadline")
                ticket = _Ticket(
                    request_id=record.request_id,
                    client=str(record.payload.get("client", "")),
                    request=ScheduleRequest.from_dict(request_payload),
                    fingerprint=record.fingerprint,
                    reply=sink,
                    token=CancelToken.after(
                        float(deadline) if deadline is not None else None
                    ),
                )
                with self._lock:
                    self._tickets[ticket.request_id] = ticket
                    self._queued += 1
                    self._record("recovered")
                self._queue.put(ticket)
        for index in range(self.config.max_inflight):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting, wait for in-flight + queued work to settle."""
        with self._lock:
            self._accepting = False
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                idle = self._queued == 0 and self._inflight == 0
            if idle:
                return True
            time.sleep(0.005)
        return False

    def close(self) -> None:
        """Drain-free teardown: stop workers, close journal, release pools.

        Idempotent.  After close the process holds zero supervisor-owned
        pool processes or shared-memory segments: the dedicated executor
        (if any) is closed by unwinding its ``use_executor`` scope, and
        ``Session.close`` tears down the process-default pool.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._accepting = False
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._journal.close()
        self._stack.close()
        self._session.close()

    def crash_for_test(self) -> None:
        """Simulate a SIGKILL: stop journalling and delivering instantly.

        From this call on the supervisor behaves like a dead process:
        no further journal records are written (whatever the write-ahead
        discipline already persisted is all a restarted supervisor gets),
        no further replies reach clients, and in-flight solves are
        abandoned via their cancel tokens.  Follow with :meth:`close` to
        reap the threads, then build a fresh supervisor on the same
        journal path to exercise recovery.
        """
        with self._lock:
            self._crashed = True
            self._accepting = False
            for ticket in self._tickets.values():
                ticket.token.cancel(protocol.FAIL_INTERNAL)

    # ------------------------------------------------------------------
    # Client operations (transport entry points; thread-safe)
    # ------------------------------------------------------------------
    def process(
        self, message: Mapping[str, Any], reply: Reply, client: str = ""
    ) -> bool:
        """Dispatch one parsed client message; False ends the connection."""
        op = message.get("op")
        if op == protocol.OP_SOLVE:
            try:
                request = ScheduleRequest.from_dict(message["request"])
            except Exception as error:  # ill-formed payloads are client bugs
                self._reject(
                    str(message.get("id", "")),
                    protocol.REJECT_BAD_REQUEST,
                    reply,
                    error=format_error(error),
                )
                return True
            deadline = message.get("deadline")
            self.submit(
                str(message["id"]),
                request,
                reply,
                client=client,
                deadline=float(deadline) if deadline is not None else None,
            )
            return True
        if op == protocol.OP_ACK:
            self.ack(str(message["id"]))
            return True
        if op == protocol.OP_CANCEL:
            self.cancel(str(message["id"]))
            return True
        if op == protocol.OP_STATS:
            reply(protocol.stats_message(self.stats()))
            return True
        return False  # OP_SHUTDOWN: the transport drains and says bye

    def submit(
        self,
        request_id: str,
        request: ScheduleRequest,
        reply: Reply,
        client: str = "",
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Admission control: accept into the bounded queue or reject.

        Returns (and delivers through ``reply``) the accepted/rejected
        message.  Acceptance journals the full request payload *before*
        the ticket enters the queue -- the write-ahead contract.
        """
        with self._lock:
            if not self._accepting:
                return self._reject(
                    request_id, protocol.REJECT_SHUTTING_DOWN, reply
                )
            if request_id in self._seen_ids:
                return self._reject(request_id, protocol.REJECT_DUPLICATE_ID, reply)
            if self._queued >= self.config.queue_limit:
                self._record("rejected_overloaded")
                return self._reject(request_id, protocol.REJECT_OVERLOADED, reply)
            fingerprint = request.fingerprint()
            budget = deadline if deadline is not None else self.config.default_deadline
            ticket = _Ticket(
                request_id=request_id,
                client=client,
                request=request,
                fingerprint=fingerprint,
                reply=reply,
                token=CancelToken.after(budget),
            )
            self._seen_ids.add(request_id)
            self._tickets[request_id] = ticket
            self._queued += 1
            self._max_queue_depth = max(self._max_queue_depth, self._queued)
            self._record("accepted")
            self._journal.append(
                KIND_ACCEPTED,
                request_id,
                fingerprint=fingerprint,
                payload={
                    "request": request.to_dict(),
                    "deadline": budget,
                    "client": client,
                },
            )
            message = protocol.accepted_message(request_id, fingerprint, self._queued)
        self._queue.put(ticket)
        self._deliver(ticket, message)
        return message

    def ack(self, request_id: str) -> None:
        """Client acknowledgement: retire the result from the replay set."""
        with self._lock:
            if request_id in self._completed_ids and not self._crashed:
                self._record("acked")
                self._journal.append(KIND_ACKED, request_id)

    def cancel(self, request_id: str, reason: str = protocol.FAIL_CANCELLED) -> bool:
        """Cancel a queued or in-flight request (False when unknown)."""
        with self._lock:
            ticket = self._tickets.get(request_id)
            if ticket is None:
                return False
            self._record("cancel_requests")
            ticket.token.cancel(reason)
            return True

    def disconnect(self, client: str) -> int:
        """A client vanished: cancel its tickets, drop its deliveries."""
        with self._lock:
            affected = 0
            for ticket in self._tickets.values():
                if ticket.client == client:
                    ticket.reply = _null_reply
                    ticket.token.cancel(protocol.FAIL_DISCONNECT)
                    affected += 1
            if affected:
                self._record("disconnects")
            return affected

    def stats(self) -> Dict[str, Any]:
        """Statistics snapshot; ``queue_depth`` is the backpressure signal."""
        with self._lock:
            snapshot: Dict[str, Any] = dict(sorted(self._counters.items()))
            snapshot.update(
                {
                    "queue_depth": self._queued,
                    "inflight": self._inflight,
                    "max_queue_depth": self._max_queue_depth,
                    "queue_limit": self.config.queue_limit,
                    "max_inflight": self.config.max_inflight,
                    "dedup_cache_entries": len(self._cache),
                    "journal_records": len(self._journal.records()),
                }
            )
            return snapshot

    @property
    def served(self) -> int:
        """Results delivered so far (fresh, coalesced, cached and replayed)."""
        with self._lock:
            return self._counters.get("served", 0)

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (workers spawned, replay done)."""
        return self._started

    @property
    def session(self) -> Session:
        """The session this supervisor solves through."""
        return self._session

    # ------------------------------------------------------------------
    # Worker path
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:
                return
            self._handle(ticket)

    def _handle(self, ticket: _Ticket) -> None:
        """Drive one dequeued ticket to settlement."""
        with self._lock:
            self._queued -= 1
            if self._crashed:
                self._tickets.pop(ticket.request_id, None)
                return
            if ticket.token.cancelled():
                # Expired or cancelled while queued: settle without solving.
                self._finish_failed(ticket, ticket.token.reason())
                return
            cached = self._cache_load(ticket.fingerprint)
            if cached is not None:
                self._record("dedup_cached")
                self._finish_completed(ticket, cached, protocol.DEDUP_CACHED)
                return
            primary = self._primaries.get(ticket.fingerprint)
            if primary is not None:
                # Coalesce: ride the in-flight solve of an identical
                # request instead of fanning out a second time.
                ticket.dedup = protocol.DEDUP_COALESCED
                primary.followers.append(ticket)
                self._record("dedup_coalesced")
                return
            self._primaries[ticket.fingerprint] = ticket
            self._inflight += 1
            self._journal.append(KIND_STARTED, ticket.request_id)
        hook = self.started_hook
        if hook is not None:
            hook(ticket.request_id)
        self._solve_ticket(ticket)

    def _solve_ticket(self, ticket: _Ticket) -> None:
        """Solve a primary ticket under its ambient cancel scope."""
        effective_workers = int(
            ticket.request.options.get("workers", self.config.workers)
        )
        try:
            with cancel_scope(ticket.token):
                if effective_workers > 0:
                    with self._solve_lock:
                        result = self._session.solve(ticket.request)
                else:
                    result = self._session.solve(ticket.request)
        except CancelledSolve as error:
            self._settle_cancelled(ticket, error.reason)
            return
        except SolverError as error:
            self._settle_failed(
                ticket, protocol.FAIL_SOLVER_ERROR, format_error(error)
            )
            return
        except Exception as error:  # keep the server alive; the journal tells
            self._settle_failed(ticket, protocol.FAIL_INTERNAL, format_error(error))
            return
        self._settle_completed(ticket, result)

    # ------------------------------------------------------------------
    # Settlement (journal + deliver for a primary and its followers)
    # ------------------------------------------------------------------
    def _settle_completed(self, primary: _Ticket, result: ScheduleResult) -> None:
        result_dict = result.to_dict()
        with self._lock:
            self._primaries.pop(primary.fingerprint, None)
            self._inflight -= 1
            if self._crashed:
                return
            self._cache_store(primary.fingerprint, result_dict)
            for member in [primary] + primary.followers:
                if member.token.cancelled():
                    # The result exists but this member's contract (its
                    # deadline, its cancel, its connection) already died.
                    self._finish_failed(member, member.token.reason())
                else:
                    self._finish_completed(member, result_dict, member.dedup)

    def _settle_cancelled(self, primary: _Ticket, reason: str) -> None:
        """The solve was abandoned mid-flight via the primary's token."""
        with self._lock:
            self._primaries.pop(primary.fingerprint, None)
            self._inflight -= 1
            if self._crashed:
                return
            self._finish_failed(primary, reason)
            for follower in primary.followers:
                if follower.token.cancelled():
                    self._finish_failed(follower, follower.token.reason())
                else:
                    # The follower's own contract is still live: it only
                    # lost its ride.  Re-dispatch it as a fresh primary.
                    follower.dedup = protocol.DEDUP_FRESH
                    self._queued += 1
                    self._record("redispatched")
                    self._queue.put(follower)

    def _settle_failed(self, primary: _Ticket, reason: str, error: str) -> None:
        """The solve raised: fail the primary and every follower."""
        with self._lock:
            self._primaries.pop(primary.fingerprint, None)
            self._inflight -= 1
            if self._crashed:
                return
            for member in [primary] + primary.followers:
                self._finish_failed(member, reason, error)

    def _finish_completed(
        self, ticket: _Ticket, result_dict: Dict[str, Any], dedup: str
    ) -> None:
        """Journal + deliver one member's result (caller holds the lock)."""
        self._tickets.pop(ticket.request_id, None)
        self._completed_ids.add(ticket.request_id)
        self._record("completed")
        self._record("served")
        self._journal.append(
            KIND_COMPLETED,
            ticket.request_id,
            fingerprint=ticket.fingerprint,
            payload={"result": result_dict, "dedup": dedup},
        )
        self._deliver(
            ticket,
            protocol.result_message(
                ticket.request_id, ticket.fingerprint, result_dict, dedup=dedup
            ),
        )

    def _finish_failed(self, ticket: _Ticket, reason: str, error: str = "") -> None:
        """Journal + deliver one member's failure (caller holds the lock)."""
        self._tickets.pop(ticket.request_id, None)
        self._record("failed")
        if reason == protocol.FAIL_DEADLINE:
            self._record("deadline_expired")
        self._journal.append(
            KIND_FAILED,
            ticket.request_id,
            fingerprint=ticket.fingerprint,
            payload={"reason": reason, "error": error},
        )
        self._deliver(
            ticket, protocol.failed_message(ticket.request_id, reason, error=error)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reject(
        self, request_id: str, reason: str, reply: Reply, error: str = ""
    ) -> Dict[str, Any]:
        with self._lock:
            self._record("rejected")
            message = protocol.rejected_message(
                request_id, reason, queue_depth=self._queued, error=error
            )
        try:
            reply(message)
        except Exception:  # a dead reply sink cannot reject any harder
            self._record("delivery_failures")
        return message

    def _deliver(self, ticket: _Ticket, message: Dict[str, Any]) -> None:
        """Push one message to a ticket's client, absorbing sink failures."""
        if self._crashed:
            return
        try:
            ticket.reply(message)
        except Exception:
            # A broken reply sink is a disconnect observed late: record
            # it and cancel whatever else that client has in flight.
            self._record("delivery_failures")
            if ticket.client:
                self.disconnect(ticket.client)

    def _record(self, counter: str) -> None:
        self._counters[counter] = self._counters.get(counter, 0) + 1

    def _cache_store(self, fingerprint: str, result_dict: Dict[str, Any]) -> None:
        if self.config.dedup_cache_size <= 0:
            return
        self._cache[fingerprint] = result_dict
        self._cache.move_to_end(fingerprint)
        while len(self._cache) > self.config.dedup_cache_size:
            self._cache.popitem(last=False)

    def _cache_load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        cached = self._cache.get(fingerprint)
        if cached is not None:
            self._cache.move_to_end(fingerprint)
        return cached

    def __enter__(self) -> "Supervisor":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "Reply",
    "ServiceConfig",
    "Supervisor",
    "SupervisorError",
]

"""Write-ahead event journal of the scheduling service.

The supervisor appends one JSONL record per request state transition --
``accepted`` (with the full request payload) before the request enters
the queue, ``started`` when a worker picks it up, ``completed`` (with the
full result payload) or ``failed`` when it settles, and ``acked`` when
the client acknowledges delivery.  Records carry a monotone ``seq`` and
**no wall-clock timestamps** (the ``faults.py`` discipline: deterministic
artifacts only), so two runs over the same traffic journal identically.

Because the request and result payloads are journalled in full, a
killed-and-restarted server needs nothing but this file to recover:

* ``completed``-but-not-``acked`` requests are re-served **verbatim**
  from the journal (provably byte-identical to what the dead server
  computed);
* ``accepted``-but-unsettled requests are deterministically re-run (the
  solvers are pure functions of the request);
* every ``completed`` record seeds the fingerprint->result dedup cache,
  so the restarted server also keeps its dedup behaviour.

:func:`EventJournal.load` tolerates a truncated final line -- the one
write a SIGKILL can tear -- but refuses corruption anywhere else.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

KIND_ACCEPTED = "accepted"
KIND_STARTED = "started"
KIND_COMPLETED = "completed"
KIND_FAILED = "failed"
KIND_ACKED = "acked"
RECORD_KINDS: Tuple[str, ...] = (
    KIND_ACCEPTED,
    KIND_STARTED,
    KIND_COMPLETED,
    KIND_FAILED,
    KIND_ACKED,
)


class JournalError(ValueError):
    """Raised when a journal file cannot be parsed."""


@dataclass(frozen=True)
class JournalRecord:
    """One write-ahead record: a request's state transition.

    ``payload`` carries the transition's data: the request dict (and
    optional deadline seconds) for ``accepted``, the result dict plus
    dedup provenance for ``completed``, the failure reason for
    ``failed``; ``started``/``acked`` need none.
    """

    seq: int
    kind: str
    request_id: str
    fingerprint: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise JournalError(
                f"unknown journal record kind {self.kind!r}; "
                f"expected one of {RECORD_KINDS}"
            )
        object.__setattr__(self, "payload", dict(self.payload))

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (one journal line)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "id": self.request_id,
            "fingerprint": self.fingerprint,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JournalRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            seq=int(data.get("seq", 0)),
            kind=str(data.get("kind", "")),
            request_id=str(data.get("id", "")),
            fingerprint=str(data.get("fingerprint", "")),
            payload=dict(data.get("payload") or {}),
        )


class EventJournal:
    """Append-only JSONL write-ahead journal (thread-safe).

    ``path=None`` keeps records in memory only -- tests and the bench
    suite use that.  Each append writes one line and flushes it before
    returning, so the record survives anything short of the kernel losing
    buffered file data; ``fsync=True`` pays a sync per record to survive
    that too.
    """

    def __init__(
        self,
        path: Optional[Path] = None,
        fsync: bool = False,
        start_seq: int = 0,
    ) -> None:
        self._path = Path(path) if path is not None else None
        self._fsync = fsync
        self._lock = threading.Lock()
        self._records: List[JournalRecord] = []
        self._seq = int(start_seq)
        self._handle = (
            open(self._path, "a", encoding="utf-8") if self._path is not None else None
        )

    @property
    def path(self) -> Optional[Path]:
        """The backing file, or ``None`` for an in-memory journal."""
        return self._path

    def append(
        self,
        kind: str,
        request_id: str,
        fingerprint: str = "",
        payload: Optional[Mapping[str, Any]] = None,
    ) -> JournalRecord:
        """Write one record ahead of acting on it; returns the record."""
        with self._lock:
            self._seq += 1
            record = JournalRecord(
                seq=self._seq,
                kind=kind,
                request_id=request_id,
                fingerprint=fingerprint,
                payload=dict(payload or {}),
            )
            self._records.append(record)
            if self._handle is not None:
                line = json.dumps(
                    record.to_dict(), sort_keys=True, separators=(",", ":")
                )
                self._handle.write(line + "\n")
                self._handle.flush()
                if self._fsync:
                    os.fsync(self._handle.fileno())
            return record

    def records(self) -> Tuple[JournalRecord, ...]:
        """Every record appended through this journal instance."""
        with self._lock:
            return tuple(self._records)

    def close(self) -> None:
        """Close the backing file (idempotent; in-memory records remain)."""
        with self._lock:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.close()

    @staticmethod
    def load(path: Path) -> List[JournalRecord]:
        """Read a journal file back into records.

        A malformed *final* line is dropped (a crash can tear the last
        write); a malformed line anywhere else raises
        :class:`JournalError`.
        """
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        records: List[JournalRecord] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(JournalRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, JournalError) as error:
                if index == len(lines) - 1:
                    break  # torn final write: recover everything before it
                raise JournalError(
                    f"{path}: corrupt journal line {index + 1}: {error}"
                ) from error
        return records


@dataclass(frozen=True)
class ReplayPlan:
    """What a restarted server must do, derived from the journal.

    ``pending`` are the ``accepted`` records of requests that never
    settled (re-run them); ``completed_unacked`` are the ``completed``
    records never acknowledged (re-serve them verbatim); ``cache`` seeds
    the fingerprint->result dedup cache from every completed request;
    ``seen_ids`` restores duplicate-id rejection across the restart.
    """

    pending: Tuple[JournalRecord, ...]
    completed_unacked: Tuple[JournalRecord, ...]
    cache: Mapping[str, Mapping[str, Any]]
    seen_ids: Tuple[str, ...]
    completed_ids: Tuple[str, ...]
    next_seq: int


def replay(records: Sequence[JournalRecord]) -> ReplayPlan:
    """Fold journal records into a :class:`ReplayPlan` (pure function)."""
    accepted: Dict[str, JournalRecord] = {}
    completed: Dict[str, JournalRecord] = {}
    settled: Dict[str, str] = {}  # id -> terminal kind
    acked: Dict[str, bool] = {}
    cache: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    next_seq = 0
    for record in records:
        next_seq = max(next_seq, record.seq)
        request_id = record.request_id
        if record.kind == KIND_ACCEPTED:
            if request_id not in accepted:
                order.append(request_id)
            accepted[request_id] = record
        elif record.kind == KIND_COMPLETED:
            completed[request_id] = record
            settled[request_id] = KIND_COMPLETED
            result = record.payload.get("result")
            if record.fingerprint and isinstance(result, dict):
                cache[record.fingerprint] = dict(result)
        elif record.kind == KIND_FAILED:
            settled[request_id] = KIND_FAILED
        elif record.kind == KIND_ACKED:
            acked[request_id] = True
    pending = tuple(
        accepted[request_id]
        for request_id in order
        if request_id not in settled
    )
    completed_unacked = tuple(
        completed[request_id]
        for request_id in order
        if settled.get(request_id) == KIND_COMPLETED and not acked.get(request_id)
    )
    return ReplayPlan(
        pending=pending,
        completed_unacked=completed_unacked,
        cache=cache,
        seen_ids=tuple(order),
        completed_ids=tuple(
            request_id
            for request_id in order
            if settled.get(request_id) == KIND_COMPLETED
        ),
        next_seq=next_seq,
    )


__all__ = [
    "EventJournal",
    "JournalError",
    "JournalRecord",
    "KIND_ACCEPTED",
    "KIND_ACKED",
    "KIND_COMPLETED",
    "KIND_FAILED",
    "KIND_STARTED",
    "RECORD_KINDS",
    "ReplayPlan",
    "replay",
]

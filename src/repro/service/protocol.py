"""Wire protocol of the scheduling service: JSONL request/reply messages.

One message per line, JSON objects both ways.  Client messages carry an
``op``; server messages carry an ``event``.  The vocabulary follows the
commitment-style request/ack shape: a ``solve`` is *accepted* (admitted
to the bounded queue) or *rejected* (admission control), later settles as
a *result* or a *failed* event, and the client may *ack* a result to let
the server retire it from the replay set of the write-ahead journal.

Client ops
----------
``{"op": "solve", "id": "r1", "request": {...}, "deadline": 5.0}``
    Submit one :class:`~repro.solvers.request.ScheduleRequest` (its
    ``to_dict`` form) under a client-chosen unique id.  ``deadline`` is
    an optional per-request budget in seconds; a request that cannot
    settle inside it fails with ``deadline-exceeded`` and its grid runs
    are abandoned mid-flight.
``{"op": "ack", "id": "r1"}``
    Acknowledge a received result; a journal replay after a crash will
    not re-serve acked requests.
``{"op": "cancel", "id": "r1"}``
    Cancel a queued or in-flight request.
``{"op": "stats"}``
    Ask for a supervisor statistics snapshot (queue depth included --
    this is the backpressure signal).
``{"op": "shutdown"}``
    Drain and stop the server.

Server events
-------------
``hello``      protocol version + admission limits, sent on connect.
``accepted``   the request was admitted; carries the request fingerprint
               and the post-admission queue depth (backpressure signal).
``rejected``   admission refused: ``overloaded`` (queue full),
               ``bad-request``, ``duplicate-id`` or ``shutting-down``.
``result``     the solved :class:`~repro.solvers.request.ScheduleResult`
               (its ``to_dict`` form) plus the dedup provenance
               (``fresh``/``coalesced``/``cached``/``replayed``).
``failed``     the request settled without a result: ``deadline-exceeded``,
               ``cancelled``, ``disconnect``, ``solver-error`` or
               ``internal-error``.
``stats``      the statistics snapshot.
``bye``        the server finished draining; carries the served count.

Messages are plain dicts (validated by :func:`parse_client_line`), not
dataclasses: the protocol is the JSON itself, and the frozen wire shapes
(REP005) stay those of ``ScheduleRequest``/``ScheduleResult``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

PROTOCOL_VERSION = 1

# -- client ops --------------------------------------------------------
OP_SOLVE = "solve"
OP_ACK = "ack"
OP_CANCEL = "cancel"
OP_STATS = "stats"
OP_SHUTDOWN = "shutdown"
CLIENT_OPS = (OP_SOLVE, OP_ACK, OP_CANCEL, OP_STATS, OP_SHUTDOWN)

# -- server events -----------------------------------------------------
EVENT_HELLO = "hello"
EVENT_ACCEPTED = "accepted"
EVENT_REJECTED = "rejected"
EVENT_RESULT = "result"
EVENT_FAILED = "failed"
EVENT_STATS = "stats"
EVENT_BYE = "bye"

# -- admission rejection reasons ---------------------------------------
REJECT_OVERLOADED = "overloaded"
REJECT_BAD_REQUEST = "bad-request"
REJECT_DUPLICATE_ID = "duplicate-id"
REJECT_SHUTTING_DOWN = "shutting-down"

# -- post-admission failure reasons ------------------------------------
FAIL_DEADLINE = "deadline-exceeded"  # == repro.engine.faults.REASON_DEADLINE
FAIL_CANCELLED = "cancelled"
FAIL_DISCONNECT = "disconnect"
FAIL_SOLVER_ERROR = "solver-error"
FAIL_INTERNAL = "internal-error"

# -- dedup provenance on result events ---------------------------------
DEDUP_FRESH = "fresh"
DEDUP_COALESCED = "coalesced"
DEDUP_CACHED = "cached"
DEDUP_REPLAYED = "replayed"


class ProtocolError(ValueError):
    """Raised when a client line cannot be parsed into a valid message."""


def _require_id(data: Mapping[str, Any]) -> str:
    request_id = data.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError(f"op {data.get('op')!r} requires a non-empty string 'id'")
    return request_id


def parse_client_line(line: str) -> Dict[str, Any]:
    """Parse and validate one client JSONL line into a message dict.

    Raises :class:`ProtocolError` for anything malformed; the transport
    answers those with a ``bad-request`` rejection rather than dying.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ProtocolError("a client message must be a JSON object")
    op = data.get("op")
    if op not in CLIENT_OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {CLIENT_OPS}")
    if op == OP_SOLVE:
        _require_id(data)
        if not isinstance(data.get("request"), dict):
            raise ProtocolError("op 'solve' requires a 'request' object")
        deadline = data.get("deadline")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
                raise ProtocolError("'deadline' must be a number of seconds")
            if deadline <= 0:
                raise ProtocolError(f"'deadline' must be positive, got {deadline}")
    elif op in (OP_ACK, OP_CANCEL):
        _require_id(data)
    return dict(data)


def encode_message(message: Mapping[str, Any]) -> str:
    """One compact JSONL line (no trailing newline) for a server message."""
    return json.dumps(dict(message), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Server message builders
# ----------------------------------------------------------------------
def hello_message(max_inflight: int, queue_limit: int) -> Dict[str, Any]:
    """The connect-time banner carrying the admission limits."""
    return {
        "event": EVENT_HELLO,
        "protocol": PROTOCOL_VERSION,
        "max_inflight": max_inflight,
        "queue_limit": queue_limit,
    }


def accepted_message(
    request_id: str, fingerprint: str, queue_depth: int
) -> Dict[str, Any]:
    """Admission granted; ``queue_depth`` is the backpressure signal."""
    return {
        "event": EVENT_ACCEPTED,
        "id": request_id,
        "fingerprint": fingerprint,
        "queue_depth": queue_depth,
    }


def rejected_message(
    request_id: str, reason: str, queue_depth: int = 0, error: str = ""
) -> Dict[str, Any]:
    """Admission refused (overloaded / bad-request / duplicate-id / ...)."""
    message: Dict[str, Any] = {
        "event": EVENT_REJECTED,
        "id": request_id,
        "reason": reason,
        "queue_depth": queue_depth,
    }
    if error:
        message["error"] = error
    return message


def result_message(
    request_id: str,
    fingerprint: str,
    result: Mapping[str, Any],
    dedup: str = DEDUP_FRESH,
) -> Dict[str, Any]:
    """A settled solve: the result's ``to_dict`` form plus dedup provenance."""
    return {
        "event": EVENT_RESULT,
        "id": request_id,
        "fingerprint": fingerprint,
        "dedup": dedup,
        "result": dict(result),
    }


def failed_message(request_id: str, reason: str, error: str = "") -> Dict[str, Any]:
    """A request that settled without a result."""
    message: Dict[str, Any] = {
        "event": EVENT_FAILED,
        "id": request_id,
        "reason": reason,
    }
    if error:
        message["error"] = error
    return message


def stats_message(stats: Mapping[str, Any]) -> Dict[str, Any]:
    """A supervisor statistics snapshot."""
    return {"event": EVENT_STATS, "stats": dict(stats)}


def bye_message(served: int) -> Dict[str, Any]:
    """The drain-complete farewell."""
    return {"event": EVENT_BYE, "served": served}


# ----------------------------------------------------------------------
# Result identity
# ----------------------------------------------------------------------
def canonical_result_dict(result: Mapping[str, Any]) -> Dict[str, Any]:
    """A result dict with the operational provenance stripped.

    ``wall_time`` (excluded from :class:`ScheduleResult` equality) and the
    ``recovery_events`` metadata note (written by the engine's recovery
    ladder when a run survived injected faults) are the only fields that
    legitimately vary between identical solves -- they describe *how* the
    solve went, not *what* it answered.  The byte-identity contract
    (chaos harness, journal replay proofs) compares this canonical form.
    """
    canonical = dict(result)
    canonical["wall_time"] = 0.0
    metadata = dict(canonical.get("metadata") or {})
    metadata.pop("recovery_events", None)
    canonical["metadata"] = metadata
    return canonical


def result_fingerprint(result: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical (wall-time-free) result JSON."""
    payload = json.dumps(
        canonical_result_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


__all__ = [
    "CLIENT_OPS",
    "DEDUP_CACHED",
    "DEDUP_COALESCED",
    "DEDUP_FRESH",
    "DEDUP_REPLAYED",
    "EVENT_ACCEPTED",
    "EVENT_BYE",
    "EVENT_FAILED",
    "EVENT_HELLO",
    "EVENT_REJECTED",
    "EVENT_RESULT",
    "EVENT_STATS",
    "FAIL_CANCELLED",
    "FAIL_DEADLINE",
    "FAIL_DISCONNECT",
    "FAIL_INTERNAL",
    "FAIL_SOLVER_ERROR",
    "OP_ACK",
    "OP_CANCEL",
    "OP_SHUTDOWN",
    "OP_SOLVE",
    "OP_STATS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REJECT_BAD_REQUEST",
    "REJECT_DUPLICATE_ID",
    "REJECT_OVERLOADED",
    "REJECT_SHUTTING_DOWN",
    "accepted_message",
    "bye_message",
    "canonical_result_dict",
    "encode_message",
    "failed_message",
    "hello_message",
    "parse_client_line",
    "rejected_message",
    "result_fingerprint",
    "result_message",
    "stats_message",
]

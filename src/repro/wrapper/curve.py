"""Single-pass wrapper-curve kernel: a core's whole staircase in one sweep.

:func:`wrapper_curve` computes everything the schedulers ever ask about a
core's wrapper in one incremental Best-Fit-Decreasing sweep over the TAM
widths ``1..max_width``:

* the testing-time staircase ``T(1), ..., T(max_width)`` (Figure 1),
* the wrapper scan-in/scan-out lengths behind each point,
* the Pareto-optimal widths (where the staircase actually steps down).

The legacy path (:func:`repro.wrapper.design_wrapper.design_wrapper`) runs
the full BFD heuristic from scratch at every width -- re-sorting scan
chains, distributing every wrapper I/O cell one heap operation at a time
and allocating a tuple of ``WrapperChain`` objects per width.  The kernel
produces bit-identical lengths while doing none of that per-width work:

* internal scan chains are sorted **once**; the per-width LPT fill operates
  on a flat integer heap, and once the width exceeds the number of internal
  chains the partition saturates (each chain alone in a bin) and the fill
  is reused instead of recomputed;
* wrapper input/output/bidir cells are distributed **analytically**: the
  one-cell-at-a-time best-fit loop of
  :func:`repro.wrapper.partition._distribute` is a water-filling process
  whose final per-chain lengths can be computed in closed form (fill every
  eligible chain to a common level ``L``, then hand the remainder to the
  chains that the heap's tie-break -- secondary key, then index -- would
  have picked);
* results are stored in flat integer arrays, not object tuples.

``design_wrapper`` remains the executable reference implementation; the
property tests in ``tests/test_wrapper_curve.py`` pin the kernel to it on
randomized cores.

Curves are memoised per process in a *growing* per-core cache: asking for a
wider curve extends the stored arrays instead of recomputing the prefix,
and narrower requests are served as views.  The cache is unbounded (curve
data is a few hundred integers per core) -- :func:`clear_curve_cache` drops
it for benchmarks that need a cold start.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.soc.core import Core

DEFAULT_MAX_WIDTH = 64


@dataclass(frozen=True)
class ParetoPoint:
    """A Pareto-optimal (TAM width, testing time) pair for one core."""

    width: int
    time: int

    @property
    def area(self) -> int:
        """TAM-wire-cycles occupied by the core test at this point."""
        return self.width * self.time


# ----------------------------------------------------------------------
# Analytic (water-filling) emulation of the one-cell-at-a-time distributor
# ----------------------------------------------------------------------
def _water_level(values: Sequence[int], count: int) -> Tuple[int, int, int]:
    """Water-fill ``count`` unit cells over ``values``.

    Returns ``(level, pool_size, remainder)``: every chain whose value is at
    most ``level`` ends up *at* ``level``, ``remainder`` of them get one
    extra cell, and ``pool_size`` is the number of such chains counted in
    ascending-value order.  This is exactly the multiset the sequential
    "add each cell to the current minimum" heap loop produces.
    """
    ordered = sorted(values)
    level = ordered[0]
    pool = 1
    budget = count
    total = len(ordered)
    while pool < total:
        gap = ordered[pool] - level
        need = gap * pool
        if need > budget:
            break
        budget -= need
        level = ordered[pool]
        pool += 1
    level += budget // pool
    return level, pool, budget % pool


def _fill_cells(
    values: List[int], secondary: Sequence[int], count: int
) -> List[int]:
    """Distribute ``count`` cells, one at a time, onto the minimum chain.

    Emulates ``_distribute`` for input/output cells: each cell goes to the
    chain with the smallest ``(values[i], secondary[i], i)`` key and
    increments ``values[i]`` only (``secondary`` stays constant during the
    phase).  The final per-chain values are reproduced analytically: the
    eligible pool fills to a common level and the heap's tie-break hands
    the remainder to the pool chains with the smallest ``(secondary, index)``.
    """
    if count == 0:
        return values
    level, pool_size, extra = _water_level(values, count)
    pool = sorted(range(len(values)), key=values.__getitem__)[:pool_size]
    result = list(values)
    for index in pool:
        result[index] = level
    if extra:
        for index in sorted(pool, key=lambda i: (secondary[i], i))[:extra]:
            result[index] = level + 1
    return result


def _fill_bidir_cells(
    scan_in: List[int], scan_out: List[int], count: int
) -> Tuple[List[int], List[int]]:
    """Distribute ``count`` bidirectional cells (they lengthen both paths).

    Emulates ``_distribute`` for bidir cells: key ``(max(si, so), si + so,
    i)``, each cell incrementing both lengths.  Water-fill the per-chain
    maxima; a pool chain raised from ``m`` to level ``L`` received ``L - m``
    cells, so its sum key at the tie-break moment is ``si + so + 2*(L - m)``.
    """
    if count == 0:
        return scan_in, scan_out
    width = len(scan_in)
    maxima = [max(scan_in[i], scan_out[i]) for i in range(width)]
    level, pool_size, extra = _water_level(maxima, count)
    pool = sorted(range(width), key=maxima.__getitem__)[:pool_size]
    added = [0] * width
    for index in pool:
        added[index] = level - maxima[index]
    if extra:
        tie_break = sorted(
            pool,
            key=lambda i: (scan_in[i] + scan_out[i] + 2 * added[i], i),
        )
        for index in tie_break[:extra]:
            added[index] += 1
    new_in = [scan_in[i] + added[i] for i in range(width)]
    new_out = [scan_out[i] + added[i] for i in range(width)]
    return new_in, new_out


def _raw_scan_lengths(
    internal: List[int], inputs: int, outputs: int, bidirs: int
) -> Tuple[int, int]:
    """Longest scan-in/scan-out over chains with the given internal fills."""
    if len(internal) == 1:
        base = internal[0]
        return base + inputs + bidirs, base + outputs + bidirs
    scan_in = _fill_cells(list(internal), internal, inputs)
    scan_out = _fill_cells(list(internal), scan_in, outputs)
    scan_in, scan_out = _fill_bidir_cells(scan_in, scan_out, bidirs)
    return max(scan_in), max(scan_out)


# ----------------------------------------------------------------------
# The growing per-core curve store
# ----------------------------------------------------------------------
class _CurveData:
    """Arrays for one core, grown monotonically to the widest request seen.

    Index ``w - 1`` holds the value at TAM width ``w``.  ``raw_*`` arrays
    describe the BFD design with *exactly* ``w`` wrapper chains; ``times``
    / ``scan_in`` / ``scan_out`` describe the best design with *at most*
    ``w`` chains (what the non-increasing staircase is made of), and
    ``best_widths[w-1]`` records which chain count achieves it.
    """

    __slots__ = (
        "lengths",
        "patterns",
        "inputs",
        "outputs",
        "bidirs",
        "raw_times",
        "raw_scan_in",
        "raw_scan_out",
        "best_widths",
        "times",
        "scan_in",
        "scan_out",
        "pareto_widths",
        "_saturated_fill",
    )

    def __init__(self, core: Core) -> None:
        self.lengths: Tuple[int, ...] = tuple(sorted(core.scan_chains, reverse=True))
        self.patterns = core.patterns
        self.inputs = core.inputs
        self.outputs = core.outputs
        self.bidirs = core.bidirs
        self.raw_times = array("q")
        self.raw_scan_in = array("q")
        self.raw_scan_out = array("q")
        self.best_widths = array("q")
        self.times = array("q")
        self.scan_in = array("q")
        self.scan_out = array("q")
        self.pareto_widths = array("q")
        self._saturated_fill: Optional[List[int]] = None

    def _internal_fill(self, width: int) -> List[int]:
        """Per-chain internal scan lengths of the LPT partition at ``width``."""
        lengths = self.lengths
        if width >= len(lengths):
            # Saturated: every internal chain sits alone in a bin; reuse the
            # fill and pad with empty bins instead of re-running LPT.
            if self._saturated_fill is None:
                self._saturated_fill = list(lengths)
            fill = self._saturated_fill
            return fill + [0] * (width - len(fill)) if width > len(fill) else list(fill)
        bins = [0] * width
        heap: List[Tuple[int, int]] = [(0, index) for index in range(width)]
        for length in lengths:
            load, index = heapq.heappop(heap)
            load += length
            bins[index] = load
            heapq.heappush(heap, (load, index))
        return bins

    def extend(self, max_width: int) -> None:
        """Grow the arrays so widths ``1..max_width`` are all computed."""
        start = len(self.raw_times) + 1
        if max_width < start:
            return
        patterns = self.patterns
        for width in range(start, max_width + 1):
            fill = self._internal_fill(width)
            si, so = _raw_scan_lengths(fill, self.inputs, self.outputs, self.bidirs)
            raw_time = (1 + (si if si > so else so)) * patterns + (
                so if si > so else si
            )
            self.raw_times.append(raw_time)
            self.raw_scan_in.append(si)
            self.raw_scan_out.append(so)
            if width == 1 or raw_time < self.times[-1]:
                # A strict improvement: this width starts a new staircase step
                # (and is therefore Pareto-optimal).
                self.best_widths.append(width)
                self.times.append(raw_time)
                self.scan_in.append(si)
                self.scan_out.append(so)
                self.pareto_widths.append(width)
            else:
                self.best_widths.append(self.best_widths[-1])
                self.times.append(self.times[-1])
                self.scan_in.append(self.scan_in[-1])
                self.scan_out.append(self.scan_out[-1])


class WrapperCurve:
    """A core's complete wrapper staircase over TAM widths ``1..max_width``.

    Array-backed view over the per-core curve store: width-indexed testing
    times, scan-in/scan-out lengths (of the best design using at most that
    many wrapper chains) and the Pareto-optimal widths.  All lookups are
    O(1) or a binary search over the Pareto widths.
    """

    __slots__ = (
        "_core",
        "_max_width",
        "_data",
        "_pareto_count",
        "_times",
        "_pareto_points",
    )

    def __init__(self, core: Core, max_width: int, data: _CurveData) -> None:
        self._core = core
        self._max_width = max_width
        self._data = data
        self._pareto_count = bisect_right(data.pareto_widths, max_width)
        self._times: Optional[Tuple[int, ...]] = None
        self._pareto_points: Optional[Tuple[ParetoPoint, ...]] = None

    # -- identity ------------------------------------------------------
    @property
    def core(self) -> Core:
        """The core this curve describes."""
        return self._core

    @property
    def max_width(self) -> int:
        """The largest TAM width the curve covers."""
        return self._max_width

    # -- the staircase -------------------------------------------------
    @property
    def times(self) -> Tuple[int, ...]:
        """``(T(1), ..., T(max_width))`` -- the Figure 1 staircase."""
        if self._times is None:
            self._times = tuple(self._data.times[: self._max_width])
        return self._times

    def time(self, width: int) -> int:
        """Testing time with at most ``width`` wrapper chains (O(1))."""
        self._check_width(width)
        return self._data.times[width - 1]

    def raw_time(self, width: int) -> int:
        """Testing time of the BFD design with *exactly* ``width`` chains."""
        self._check_width(width)
        return self._data.raw_times[width - 1]

    def scan_lengths(self, width: int) -> Tuple[int, int]:
        """``(si, so)`` of the best design with at most ``width`` chains."""
        self._check_width(width)
        data = self._data
        return data.scan_in[width - 1], data.scan_out[width - 1]

    def raw_scan_lengths(self, width: int) -> Tuple[int, int]:
        """``(si, so)`` of the BFD design with *exactly* ``width`` chains."""
        self._check_width(width)
        data = self._data
        return data.raw_scan_in[width - 1], data.raw_scan_out[width - 1]

    def best_width(self, width: int) -> int:
        """The chain count ``w' <= width`` whose BFD design tests fastest."""
        self._check_width(width)
        return self._data.best_widths[width - 1]

    def preemption_overhead(self, width: int) -> int:
        """``si + so`` -- cycles added per preemption at ``width``."""
        scan_in, scan_out = self.scan_lengths(width)
        return scan_in + scan_out

    def _check_width(self, width: int) -> None:
        if not 1 <= width <= self._max_width:
            raise ValueError(
                f"width must be in 1..{self._max_width}, got {width}"
            )

    # -- Pareto structure ----------------------------------------------
    @property
    def pareto_widths(self) -> Sequence[int]:
        """The Pareto-optimal widths, ascending (width 1 always included)."""
        return self._data.pareto_widths[: self._pareto_count]

    def pareto_points(self) -> Tuple[ParetoPoint, ...]:
        """Pareto-optimal (width, time) points, in increasing width order.

        Materialised once per curve view and reused by every caller.
        """
        if self._pareto_points is None:
            times = self._data.times
            self._pareto_points = tuple(
                ParetoPoint(width=width, time=times[width - 1])
                for width in self.pareto_widths
            )
        return self._pareto_points

    @property
    def max_pareto_width(self) -> int:
        """The largest Pareto-optimal width (more wires buy nothing)."""
        return self._data.pareto_widths[self._pareto_count - 1]

    @property
    def min_time(self) -> int:
        """The smallest achievable testing time (at the max Pareto width)."""
        return self._data.times[self.max_pareto_width - 1]

    @property
    def min_area(self) -> int:
        """``min_w w * T(w)`` -- smallest TAM-wire-cycle footprint."""
        times = self._data.times
        return min(width * times[width - 1] for width in self.pareto_widths)

    def effective_width(self, width: int) -> int:
        """Largest Pareto-optimal width <= ``width`` (binary search)."""
        if width < 1:
            raise ValueError("width must be at least 1")
        widths = self._data.pareto_widths
        index = bisect_right(widths, width, 0, self._pareto_count)
        return widths[index - 1] if index else widths[0]

    def first_width_within(self, target: float) -> int:
        """Smallest width whose testing time is at most ``target``.

        Binary search over the non-increasing staircase; returns
        ``max_width`` when even the widest design misses the target.
        """
        times = self._data.times
        low, high = 1, self._max_width
        if times[high - 1] > target:
            return high
        while low < high:
            mid = (low + high) // 2
            if times[mid - 1] <= target:
                high = mid
            else:
                low = mid + 1
        return low


# ----------------------------------------------------------------------
# The per-process curve cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CurveCacheInfo:
    """Statistics of the per-process wrapper-curve cache."""

    hits: int
    misses: int
    cores: int
    widths_computed: int

    @property
    def currsize(self) -> int:
        """Number of cached (core, max_width) views (lru_cache-compatible)."""
        return self.cores


# Fork-local by design: the per-process curve memo caches pure derived
# values (T(1..W) staircases are a function of the core alone), so each
# worker's private copy can only diverge in *coverage*, never in content;
# the executor pre-warms the hot pairs before forking.
_DATA: Dict[Core, _CurveData] = {}  # repro: fork-local
_VIEWS: Dict[Tuple[Core, int], WrapperCurve] = {}  # repro: fork-local
_HITS = 0  # repro: fork-local
_MISSES = 0  # repro: fork-local


def wrapper_curve(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> WrapperCurve:
    """The :class:`WrapperCurve` of ``core`` over widths ``1..max_width``.

    Memoised per process: per-core arrays grow to the widest request seen
    and narrower requests are served as views of the same arrays.
    """
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    global _HITS, _MISSES
    key = (core, max_width)
    view = _VIEWS.get(key)
    if view is not None:
        _HITS += 1
        return view
    _MISSES += 1
    data = _DATA.get(core)
    if data is None:
        data = _CurveData(core)
        _DATA[core] = data
    data.extend(max_width)
    view = WrapperCurve(core, max_width, data)
    _VIEWS[key] = view
    return view


def curve_cache_info() -> CurveCacheInfo:
    """Hit/miss statistics of the per-process wrapper-curve cache."""
    return CurveCacheInfo(
        hits=_HITS,
        misses=_MISSES,
        cores=len(_DATA),
        widths_computed=sum(len(data.raw_times) for data in _DATA.values()),
    )


def clear_curve_cache() -> None:
    """Drop every memoised wrapper curve in this process (stats reset too)."""
    global _HITS, _MISSES
    _DATA.clear()
    _VIEWS.clear()
    _HITS = 0
    _MISSES = 0


# ----------------------------------------------------------------------
# Shared-memory export/import of the per-core tables
# ----------------------------------------------------------------------
#: The array fields of one per-core table, in export order.  The first
#: four are width-indexed over ``1..W`` (one entry per computed width);
#: the middle three share that indexing; ``pareto_widths`` is the
#: ascending subset of widths where the staircase steps down.
CURVE_TABLE_FIELDS: Tuple[str, ...] = (
    "raw_times",
    "raw_scan_in",
    "raw_scan_out",
    "best_widths",
    "times",
    "scan_in",
    "scan_out",
    "pareto_widths",
)


def export_curve_tables() -> List[Tuple[Core, Tuple["array[int]", ...]]]:
    """Snapshot every memoised per-core table, for shm publication.

    Each entry pairs a core with its arrays in :data:`CURVE_TABLE_FIELDS`
    order.  The arrays are the live cache arrays -- callers must copy
    (e.g. ``tobytes``) rather than retain them.
    """
    return [
        (core, tuple(getattr(data, name) for name in CURVE_TABLE_FIELDS))
        for core, data in _DATA.items()
    ]


def seed_curve_table(
    core: Core, fields: Sequence[Union[bytes, bytearray, memoryview]]
) -> bool:
    """Install one exported per-core table into this process's cache.

    ``fields`` holds one ``int64`` buffer per :data:`CURVE_TABLE_FIELDS`
    entry (any bytes-like object).  The buffers are *copied* into fresh
    growable arrays, so later wider requests extend them normally.
    Returns ``False`` without touching the cache when the core is already
    present (the local table may be wider) or the export is empty.
    """
    if len(fields) != len(CURVE_TABLE_FIELDS):
        raise ValueError(
            f"expected {len(CURVE_TABLE_FIELDS)} field buffers, got {len(fields)}"
        )
    if core in _DATA:
        return False
    data = _CurveData(core)
    for name, buffer in zip(CURVE_TABLE_FIELDS, fields):
        getattr(data, name).frombytes(buffer)
    widths = len(data.raw_times)
    if widths == 0:
        return False
    staircase = (data.best_widths, data.times, data.scan_in, data.scan_out)
    if any(len(field) != widths for field in (data.raw_scan_in, data.raw_scan_out, *staircase)):
        raise ValueError(f"inconsistent curve table for core {core!r}")
    _DATA[core] = data
    return True

"""Test wrapper design (the ``Design_wrapper`` algorithm) and Pareto analysis.

This subpackage implements the per-core half of wrapper/TAM co-optimization:

* :mod:`~repro.wrapper.partition` -- Best-Fit-Decreasing partitioning of
  internal scan chains and wrapper I/O cells over a given number of wrapper
  scan chains.
* :mod:`~repro.wrapper.design_wrapper` -- the ``Design_wrapper`` algorithm
  from the authors' earlier work [12], producing a
  :class:`~repro.wrapper.design_wrapper.WrapperDesign` and the resulting
  core testing time ``T(w) = (1 + max(si, so)) * p + min(si, so)``.
* :mod:`~repro.wrapper.curve` -- the single-pass wrapper-curve kernel: a
  core's whole staircase ``T(1..W_max)``, scan lengths and Pareto points in
  one incremental BFD sweep (:func:`~repro.wrapper.curve.wrapper_curve`).
* :mod:`~repro.wrapper.pareto` -- testing-time staircases, Pareto-optimal
  TAM widths, and the paper's *preferred TAM width* heuristic (a facade
  over the kernel).
"""

from repro.wrapper.partition import WrapperChain, partition_scan_chains
from repro.wrapper.curve import (
    WrapperCurve,
    clear_curve_cache,
    curve_cache_info,
    wrapper_curve,
)
from repro.wrapper.design_wrapper import (
    WrapperDesign,
    design_wrapper,
    scan_lengths,
    testing_time,
)
from repro.wrapper.pareto import (
    ParetoPoint,
    highest_pareto_width,
    pareto_cache_info,
    pareto_points,
    preferred_width,
    prime_pareto_cache,
    testing_time_curve,
)
from repro.wrapper.report import (
    CoreWrapperPlan,
    WrapperChainPlan,
    core_wrapper_plan,
    format_soc_wrapper_plans,
    format_wrapper_plan,
    wrapper_plans_for_schedule,
)

__all__ = [
    "WrapperChain",
    "partition_scan_chains",
    "WrapperCurve",
    "wrapper_curve",
    "curve_cache_info",
    "clear_curve_cache",
    "WrapperDesign",
    "design_wrapper",
    "scan_lengths",
    "testing_time",
    "ParetoPoint",
    "pareto_points",
    "testing_time_curve",
    "highest_pareto_width",
    "preferred_width",
    "prime_pareto_cache",
    "pareto_cache_info",
    "CoreWrapperPlan",
    "WrapperChainPlan",
    "core_wrapper_plan",
    "wrapper_plans_for_schedule",
    "format_wrapper_plan",
    "format_soc_wrapper_plans",
]

"""Pareto-optimal TAM widths and preferred widths (paper Sections 3 and 4).

For a given core the testing time ``T(w)`` decreases only at *Pareto-optimal*
TAM widths; between them it is flat (Figure 1 of the paper).  A Pareto-optimal
width is the smallest width achieving a particular testing time, so the TAM
width assigned to a core is always the minimal value required to achieve a
specific testing time -- extra wires would be wasted.

The scheduler additionally uses a *preferred TAM width*: the smallest width
whose testing time is within ``percent`` % of the time at the maximum
allowable width ``max_width`` (64 in the paper), optionally bumped up to the
highest Pareto width if the difference is at most ``delta`` wires (the
"bottleneck core" heuristic of subroutine ``Initialize``, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, List, Tuple

from repro.soc.core import Core
from repro.wrapper.design_wrapper import testing_time

DEFAULT_MAX_WIDTH = 64


@dataclass(frozen=True)
class ParetoPoint:
    """A Pareto-optimal (TAM width, testing time) pair for one core."""

    width: int
    time: int

    @property
    def area(self) -> int:
        """TAM-wire-cycles occupied by the core test at this point."""
        return self.width * self.time


@lru_cache(maxsize=16384)
def _time_curve_cached(core: Core, max_width: int) -> Tuple[int, ...]:
    return tuple(testing_time(core, width) for width in range(1, max_width + 1))


def testing_time_curve(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> List[int]:
    """``[T(1), T(2), ..., T(max_width)]`` for the core (the Figure 1 staircase)."""
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    return list(_time_curve_cached(core, max_width))


def prime_pareto_cache(cores: Iterable[Core], max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """Warm this process's testing-time curve cache for the given cores.

    Computing a core's wrapper-design staircase is the scheduler's dominant
    cost; the curves are memoised per process in :func:`_time_curve_cached`.
    Sweep-engine workers call this once at start-up (and the serial path
    calls it before its loop) so every subsequent schedule of the same SOC
    hits a warm cache.  Returns the number of curves now cached.

    Accepts any iterable of cores; pass ``soc.cores`` to prime a whole SOC.
    """
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    count = 0
    for core in cores:
        _time_curve_cached(core, max_width)
        count += 1
    return count


def pareto_cache_info():
    """Cache statistics of the per-process testing-time curve memo."""
    return _time_curve_cached.cache_info()


def clear_pareto_cache() -> None:
    """Drop every memoised testing-time curve in this process.

    Used by benchmarks that need a deterministic cold start to measure the
    cache's effect; normal code never needs to call this.
    """
    _time_curve_cached.cache_clear()


def pareto_points(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> List[ParetoPoint]:
    """Pareto-optimal (width, time) points, in increasing width order.

    Width 1 is always included; a width ``w > 1`` is included only when
    ``T(w) < T(w - 1)``.
    """
    curve = testing_time_curve(core, max_width)
    points = [ParetoPoint(width=1, time=curve[0])]
    for width in range(2, max_width + 1):
        time = curve[width - 1]
        if time < points[-1].time:
            points.append(ParetoPoint(width=width, time=time))
    return points


def highest_pareto_width(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """The largest Pareto-optimal width (beyond it, extra wires buy nothing)."""
    return pareto_points(core, max_width)[-1].width


def minimum_testing_time(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """The core's testing time at its highest Pareto-optimal width."""
    return pareto_points(core, max_width)[-1].time


def largest_pareto_width_not_exceeding(
    core: Core, width: int, max_width: int = DEFAULT_MAX_WIDTH
) -> int:
    """The largest Pareto-optimal width that is <= ``width`` (at least 1)."""
    if width < 1:
        raise ValueError("width must be at least 1")
    best = 1
    for point in pareto_points(core, max_width):
        if point.width <= width:
            best = point.width
        else:
            break
    return best


def minimum_area(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """``min_w  w * T(w)`` -- the smallest TAM-wire-cycle footprint of the test.

    Used by the lower bound of Table 1.
    """
    return min(point.area for point in pareto_points(core, max_width))


def preferred_width(
    core: Core,
    max_width: int = DEFAULT_MAX_WIDTH,
    percent: float = 5.0,
    delta: int = 0,
) -> int:
    """The paper's *preferred TAM width* for a core.

    The smallest width whose testing time is within ``percent`` % of the
    testing time at ``max_width``; if the highest Pareto-optimal width is at
    most ``delta`` wires larger, use that instead (helps bottleneck cores,
    Figure 5 lines 5-6).
    """
    if percent < 0:
        raise ValueError("percent must be non-negative")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    curve = testing_time_curve(core, max_width)
    target = (1.0 + percent / 100.0) * curve[max_width - 1]
    width = next(
        (w for w in range(1, max_width + 1) if curve[w - 1] <= target), max_width
    )
    pareto_max = highest_pareto_width(core, max_width)
    if 0 < pareto_max - width <= delta:
        width = pareto_max
    return width

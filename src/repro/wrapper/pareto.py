"""Pareto-optimal TAM widths and preferred widths (paper Sections 3 and 4).

For a given core the testing time ``T(w)`` decreases only at *Pareto-optimal*
TAM widths; between them it is flat (Figure 1 of the paper).  A Pareto-optimal
width is the smallest width achieving a particular testing time, so the TAM
width assigned to a core is always the minimal value required to achieve a
specific testing time -- extra wires would be wasted.

The scheduler additionally uses a *preferred TAM width*: the smallest width
whose testing time is within ``percent`` % of the time at the maximum
allowable width ``max_width`` (64 in the paper), optionally bumped up to the
highest Pareto width if the difference is at most ``delta`` wires (the
"bottleneck core" heuristic of subroutine ``Initialize``, Figure 5).

Everything here is a thin facade over the single-pass wrapper-curve kernel
(:mod:`repro.wrapper.curve`): one :func:`~repro.wrapper.curve.wrapper_curve`
call computes the whole staircase, its scan lengths and its Pareto points in
one BFD sweep, and the lookups below are O(1) or a binary search over the
non-increasing curve -- no linear scans, no per-width wrapper designs.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.soc.core import Core
from repro.wrapper.curve import (
    DEFAULT_MAX_WIDTH,
    CurveCacheInfo,
    ParetoPoint,
    clear_curve_cache,
    curve_cache_info,
    wrapper_curve,
)

__all__ = [
    "DEFAULT_MAX_WIDTH",
    "ParetoPoint",
    "testing_time_curve",
    "pareto_points",
    "highest_pareto_width",
    "minimum_testing_time",
    "largest_pareto_width_not_exceeding",
    "minimum_area",
    "preferred_width",
    "prime_pareto_cache",
    "pareto_cache_info",
    "clear_pareto_cache",
]


def testing_time_curve(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> List[int]:
    """``[T(1), T(2), ..., T(max_width)]`` for the core (the Figure 1 staircase)."""
    return list(wrapper_curve(core, max_width).times)


def prime_pareto_cache(cores: Iterable[Core], max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """Warm this process's wrapper-curve cache for the given cores.

    Computing a core's wrapper-design staircase is the scheduler's dominant
    cost; the curves are memoised per process by the kernel
    (:func:`repro.wrapper.curve.wrapper_curve`).  Sweep-engine workers call
    this once at start-up (and the serial path calls it before its loop) so
    every subsequent schedule of the same SOC hits a warm cache.  Returns
    the number of curves now cached.

    Accepts any iterable of cores; pass ``soc.cores`` to prime a whole SOC.
    """
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    count = 0
    for core in cores:
        wrapper_curve(core, max_width)
        count += 1
    return count


def pareto_cache_info() -> CurveCacheInfo:
    """Cache statistics of the per-process wrapper-curve memo."""
    return curve_cache_info()


def clear_pareto_cache() -> None:
    """Drop every memoised wrapper curve in this process.

    Used by benchmarks that need a deterministic cold start to measure the
    cache's effect; normal code never needs to call this.
    """
    clear_curve_cache()


def pareto_points(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> List[ParetoPoint]:
    """Pareto-optimal (width, time) points, in increasing width order.

    Width 1 is always included; a width ``w > 1`` is included only when
    ``T(w) < T(w - 1)``.  Memoised: the points are materialised once per
    cached curve, so repeated calls (``minimum_area``,
    ``highest_pareto_width``, rectangle-set construction) stop recomputing
    them.
    """
    return list(wrapper_curve(core, max_width).pareto_points())


def highest_pareto_width(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """The largest Pareto-optimal width (beyond it, extra wires buy nothing)."""
    return wrapper_curve(core, max_width).max_pareto_width


def minimum_testing_time(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """The core's testing time at its highest Pareto-optimal width."""
    return wrapper_curve(core, max_width).min_time


def largest_pareto_width_not_exceeding(
    core: Core, width: int, max_width: int = DEFAULT_MAX_WIDTH
) -> int:
    """The largest Pareto-optimal width that is <= ``width`` (at least 1).

    A binary search over the curve's Pareto widths, not a scan of
    ``range(1, max_width + 1)``.
    """
    return wrapper_curve(core, max_width).effective_width(width)


def minimum_area(core: Core, max_width: int = DEFAULT_MAX_WIDTH) -> int:
    """``min_w  w * T(w)`` -- the smallest TAM-wire-cycle footprint of the test.

    Used by the lower bound of Table 1.  Only Pareto points can minimise the
    area, so the minimum is taken over them rather than every width.
    """
    return wrapper_curve(core, max_width).min_area


def preferred_width(
    core: Core,
    max_width: int = DEFAULT_MAX_WIDTH,
    percent: float = 5.0,
    delta: int = 0,
) -> int:
    """The paper's *preferred TAM width* for a core.

    The smallest width whose testing time is within ``percent`` % of the
    testing time at ``max_width``; if the highest Pareto-optimal width is at
    most ``delta`` wires larger, use that instead (helps bottleneck cores,
    Figure 5 lines 5-6).  The smallest-width search is a binary search over
    the non-increasing staircase.
    """
    if percent < 0:
        raise ValueError("percent must be non-negative")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    curve = wrapper_curve(core, max_width)
    target = (1.0 + percent / 100.0) * curve.time(max_width)
    width = curve.first_width_within(target)
    pareto_max = curve.max_pareto_width
    if 0 < pareto_max - width <= delta:
        width = pareto_max
    return width

"""Best-Fit-Decreasing partitioning of scan elements over wrapper chains.

A core's wrapper contains ``w`` wrapper scan chains (one per TAM wire).  Each
wrapper chain is a concatenation of wrapper input cells, zero or more internal
scan chains, and wrapper output cells.  The *scan-in length* of a wrapper
chain is the number of cells that must be shifted to load it (input cells +
internal scan cells); the *scan-out length* is the number shifted to unload
it (internal scan cells + output cells).  Bidirectional cells appear on both
paths.

``Design_wrapper`` [12] minimises the longest wrapper scan-in/scan-out chain
using a Best-Fit-Decreasing (BFD) heuristic:

1. sort internal scan chains by decreasing length and assign each to the
   wrapper chain that is currently shortest (classic multiprocessor-
   scheduling LPT, which is what BFD reduces to when every bin has unbounded
   capacity);
2. distribute wrapper input cells over the wrapper chains with the shortest
   scan-in length;
3. distribute wrapper output cells over the wrapper chains with the shortest
   scan-out length;
4. bidirectional cells are distributed last and count on both paths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class WrapperChain:
    """One wrapper scan chain: internal chains plus wrapper I/O cells."""

    internal_chains: List[int] = field(default_factory=list)
    input_cells: int = 0
    output_cells: int = 0
    bidir_cells: int = 0

    @property
    def internal_length(self) -> int:
        """Total internal scan cells on this wrapper chain."""
        return sum(self.internal_chains)

    @property
    def scan_in_length(self) -> int:
        """Cells shifted in when loading this wrapper chain."""
        return self.internal_length + self.input_cells + self.bidir_cells

    @property
    def scan_out_length(self) -> int:
        """Cells shifted out when unloading this wrapper chain."""
        return self.internal_length + self.output_cells + self.bidir_cells

    @property
    def is_empty(self) -> bool:
        """True if no cell of any kind is placed on this wrapper chain."""
        return (
            not self.internal_chains
            and self.input_cells == 0
            and self.output_cells == 0
            and self.bidir_cells == 0
        )


def partition_scan_chains(lengths: Sequence[int], num_chains: int) -> List[WrapperChain]:
    """Partition internal scan chains over ``num_chains`` wrapper chains (BFD).

    Returns the wrapper chains with only their internal chains populated.
    """
    if num_chains <= 0:
        raise ValueError("number of wrapper chains must be positive")
    if any(length <= 0 for length in lengths):
        raise ValueError("scan chain lengths must be positive")
    chains = [WrapperChain() for _ in range(num_chains)]
    # Min-heap keyed on (current internal length, index) so that ties are
    # broken deterministically.
    heap: List[Tuple[int, int]] = [(0, index) for index in range(num_chains)]
    heapq.heapify(heap)
    for length in sorted(lengths, reverse=True):
        current, index = heapq.heappop(heap)
        chains[index].internal_chains.append(length)
        heapq.heappush(heap, (current + length, index))
    return chains


def distribute_input_cells(chains: List[WrapperChain], count: int) -> None:
    """Place ``count`` wrapper input cells on the chains with shortest scan-in."""
    _distribute(chains, count, kind="input")


def distribute_output_cells(chains: List[WrapperChain], count: int) -> None:
    """Place ``count`` wrapper output cells on the chains with shortest scan-out."""
    _distribute(chains, count, kind="output")


def distribute_bidir_cells(chains: List[WrapperChain], count: int) -> None:
    """Place ``count`` bidirectional wrapper cells, balancing both paths."""
    _distribute(chains, count, kind="bidir")


def _chain_key(chain: WrapperChain, kind: str) -> Tuple[int, int]:
    if kind == "input":
        return (chain.scan_in_length, chain.scan_out_length)
    if kind == "output":
        return (chain.scan_out_length, chain.scan_in_length)
    # bidir cells lengthen both paths, so balance on the max of the two
    return (
        max(chain.scan_in_length, chain.scan_out_length),
        chain.scan_in_length + chain.scan_out_length,
    )


def _add_cell(chain: WrapperChain, kind: str) -> None:
    if kind == "input":
        chain.input_cells += 1
    elif kind == "output":
        chain.output_cells += 1
    else:
        chain.bidir_cells += 1


def _distribute(chains: List[WrapperChain], count: int, kind: str) -> None:
    if count < 0:
        raise ValueError("cell count must be non-negative")
    if count == 0:
        return
    # One cell at a time onto the currently-best chain.  A heap keyed on the
    # chain's (primary, secondary, index) keeps this O(count log w); the key
    # only changes through our own insertions, so re-pushing the updated key
    # is sufficient.
    heap = [(_chain_key(chain, kind) + (index,)) for index, chain in enumerate(chains)]
    heapq.heapify(heap)
    for _ in range(count):
        entry = heapq.heappop(heap)
        index = entry[-1]
        chain = chains[index]
        _add_cell(chain, kind)
        heapq.heappush(heap, _chain_key(chain, kind) + (index,))

"""Wrapper implementation plans: turning a schedule into DFT-insertion data.

The scheduler decides *how many* TAM wires each core gets; a DFT engineer
then needs the corresponding wrapper design -- which internal scan chains and
which wrapper I/O cells are concatenated onto each wrapper chain.  This
module produces that plan for a whole SOC from a finished schedule (or for a
single core at a chosen width), in a plain data structure plus a
human-readable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.schedule.schedule import TestSchedule
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.design_wrapper import WrapperDesign, design_wrapper


@dataclass(frozen=True)
class WrapperChainPlan:
    """One wrapper scan chain of one core: its contents and its lengths."""

    index: int
    internal_chains: Tuple[int, ...]
    input_cells: int
    output_cells: int
    bidir_cells: int
    scan_in_length: int
    scan_out_length: int


@dataclass(frozen=True)
class CoreWrapperPlan:
    """The complete wrapper plan for one core at its assigned TAM width."""

    core: str
    tam_width: int
    testing_time: int
    scan_in_length: int
    scan_out_length: int
    chains: Tuple[WrapperChainPlan, ...]

    @property
    def used_chains(self) -> int:
        """Wrapper chains that actually carry cells."""
        return sum(
            1
            for chain in self.chains
            if chain.internal_chains or chain.input_cells or chain.output_cells or chain.bidir_cells
        )


def core_wrapper_plan(core: Core, width: int) -> CoreWrapperPlan:
    """Design the wrapper for ``core`` at ``width`` and return its plan."""
    design: WrapperDesign = design_wrapper(core, width)
    chains = tuple(
        WrapperChainPlan(
            index=index,
            internal_chains=tuple(chain.internal_chains),
            input_cells=chain.input_cells,
            output_cells=chain.output_cells,
            bidir_cells=chain.bidir_cells,
            scan_in_length=chain.scan_in_length,
            scan_out_length=chain.scan_out_length,
        )
        for index, chain in enumerate(design.chains)
    )
    return CoreWrapperPlan(
        core=core.name,
        tam_width=width,
        testing_time=design.testing_time,
        scan_in_length=design.scan_in_length,
        scan_out_length=design.scan_out_length,
        chains=chains,
    )


def wrapper_plans_for_schedule(soc: Soc, schedule: TestSchedule) -> Dict[str, CoreWrapperPlan]:
    """Wrapper plans for every core, at the width the schedule assigned it."""
    plans: Dict[str, CoreWrapperPlan] = {}
    for name in schedule.scheduled_cores:
        summary = schedule.core_summary(name)
        plans[name] = core_wrapper_plan(soc.core(name), summary.widths[0])
    return plans


def format_wrapper_plan(plan: CoreWrapperPlan) -> str:
    """Human-readable report of one core's wrapper plan."""
    lines = [
        f"Wrapper plan for {plan.core}: {plan.tam_width} TAM wires "
        f"({plan.used_chains} used), si={plan.scan_in_length}, "
        f"so={plan.scan_out_length}, T={plan.testing_time} cycles",
    ]
    for chain in plan.chains:
        populated = (
            chain.internal_chains
            or chain.input_cells
            or chain.output_cells
            or chain.bidir_cells
        )
        if not populated:
            lines.append(f"  chain {chain.index}: (unused)")
            continue
        internal = (
            "+".join(str(length) for length in chain.internal_chains) or "-"
        )
        lines.append(
            f"  chain {chain.index}: scan cells [{internal}], "
            f"{chain.input_cells} in / {chain.output_cells} out / {chain.bidir_cells} bidir cells, "
            f"si={chain.scan_in_length}, so={chain.scan_out_length}"
        )
    return "\n".join(lines)


def format_soc_wrapper_plans(soc: Soc, schedule: TestSchedule) -> str:
    """Human-readable wrapper report for the whole SOC."""
    plans = wrapper_plans_for_schedule(soc, schedule)
    sections: List[str] = [
        f"Wrapper implementation plan for {soc.name} "
        f"(total TAM width {schedule.total_width}, testing time {schedule.makespan} cycles)",
        "",
    ]
    for name in schedule.scheduled_cores:
        sections.append(format_wrapper_plan(plans[name]))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"

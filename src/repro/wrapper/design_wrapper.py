"""The ``Design_wrapper`` algorithm: per-core wrapper design at a TAM width.

Given a core and a TAM width ``w``, :func:`design_wrapper` builds ``w``
wrapper scan chains using the Best-Fit-Decreasing heuristic of [12]
(see :mod:`repro.wrapper.partition`).  The resulting testing time is

    ``T(w) = (1 + max(si, so)) * p + min(si, so)``

where ``p`` is the number of test patterns and ``si`` / ``so`` are the
longest wrapper scan-in and scan-out lengths.  Each pattern requires
``max(si, so)`` shift cycles (scan-in of the next pattern overlaps scan-out
of the previous response) plus one launch/capture cycle, and the final
response needs an extra ``min(si, so)`` cycles to flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.soc.core import Core
from repro.wrapper.partition import (
    WrapperChain,
    distribute_bidir_cells,
    distribute_input_cells,
    distribute_output_cells,
    partition_scan_chains,
)


@dataclass(frozen=True)
class WrapperDesign:
    """A completed wrapper design for one core at one TAM width."""

    core_name: str
    tam_width: int
    chains: Tuple[WrapperChain, ...]
    patterns: int

    @property
    def scan_in_length(self) -> int:
        """Longest wrapper scan-in chain (``si`` in the paper)."""
        return max(chain.scan_in_length for chain in self.chains)

    @property
    def scan_out_length(self) -> int:
        """Longest wrapper scan-out chain (``so`` in the paper)."""
        return max(chain.scan_out_length for chain in self.chains)

    @property
    def used_width(self) -> int:
        """Number of wrapper chains that actually carry cells.

        Assigning more TAM wires than this brings no benefit; this is what
        makes the testing-time curve a staircase.
        """
        return sum(1 for chain in self.chains if not chain.is_empty)

    @property
    def testing_time(self) -> int:
        """Core test application time in cycles at this wrapper design."""
        longest = max(self.scan_in_length, self.scan_out_length)
        shortest = min(self.scan_in_length, self.scan_out_length)
        return (1 + longest) * self.patterns + shortest

    @property
    def preemption_overhead(self) -> int:
        """Extra cycles incurred each time this core's test is resumed.

        A preemption forces an extra scan-out of the current state and an
        extra scan-in when the test resumes: ``si + so`` cycles (Section 4).
        """
        return self.scan_in_length + self.scan_out_length


def design_wrapper(core: Core, width: int) -> WrapperDesign:
    """Design a wrapper for ``core`` with ``width`` wrapper scan chains (BFD)."""
    if width <= 0:
        raise ValueError(f"TAM width must be positive, got {width}")
    chains = partition_scan_chains(core.scan_chains, width)
    distribute_input_cells(chains, core.inputs)
    distribute_output_cells(chains, core.outputs)
    distribute_bidir_cells(chains, core.bidirs)
    return WrapperDesign(
        core_name=core.name,
        tam_width=width,
        chains=tuple(chains),
        patterns=core.patterns,
    )


def scan_lengths(core: Core, width: int) -> Tuple[int, int]:
    """Longest wrapper scan-in and scan-out lengths for ``core`` at ``width``.

    Uses the best BFD design over *at most* ``width`` wrapper chains (a
    wrapper given ``width`` TAM wires may leave some unconnected, and the BFD
    heuristic occasionally produces a slightly better partition with fewer
    chains).  This guarantees the testing time is non-increasing in the TAM
    width, which is what the Pareto analysis of the paper assumes.

    Served by the single-pass wrapper-curve kernel
    (:mod:`repro.wrapper.curve`); :func:`design_wrapper` above remains the
    executable reference the kernel is pinned against.
    """
    from repro.wrapper.curve import wrapper_curve

    return wrapper_curve(core, width).scan_lengths(width)


def testing_time(core: Core, width: int) -> int:
    """Core test application time (cycles) when given ``width`` TAM wires.

    This is the time of the best wrapper design using at most ``width``
    wrapper chains, so it is non-increasing in ``width``.  Served by the
    wrapper-curve kernel.
    """
    from repro.wrapper.curve import wrapper_curve

    return wrapper_curve(core, width).time(width)


def preemption_overhead(core: Core, width: int) -> int:
    """Cycles added to the core's test each time it is preempted and resumed."""
    from repro.wrapper.curve import wrapper_curve

    return wrapper_curve(core, width).preemption_overhead(width)


# ----------------------------------------------------------------------
# Reference implementations (kernel equality is pinned against these)
# ----------------------------------------------------------------------
@lru_cache(maxsize=65536)
def _scan_lengths_cached(core: Core, width: int) -> Tuple[int, int]:
    design = design_wrapper(core, width)
    return design.scan_in_length, design.scan_out_length


def _raw_testing_time(core: Core, width: int) -> int:
    scan_in, scan_out = _scan_lengths_cached(core, width)
    return (1 + max(scan_in, scan_out)) * core.patterns + min(scan_in, scan_out)


@lru_cache(maxsize=65536)
def _best_width_upto(core: Core, width: int) -> int:
    """The chain count ``w' <= width`` whose BFD design tests fastest.

    Reference counterpart of :meth:`repro.wrapper.curve.WrapperCurve.best_width`,
    retained (with its per-width memo) for the kernel equality tests.
    """
    if width <= 0:
        raise ValueError(f"TAM width must be positive, got {width}")
    if width == 1:
        return 1
    previous = _best_width_upto(core, width - 1)
    if _raw_testing_time(core, width) < _raw_testing_time(core, previous):
        return width
    return previous

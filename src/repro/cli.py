"""Command-line interface: ``repro-soc-test`` (or ``python -m repro``).

Subcommands
-----------
``benchmarks``
    List the built-in benchmark SOCs and their headline statistics.
``solvers``
    List every registered solver with its capability metadata.
``solve``
    Solve one SOC at one TAM width with any registered solver (the
    ``solve(ScheduleRequest)`` front door of :mod:`repro.solvers`);
    ``--json`` prints the full result as JSON.
``pareto``
    Print the testing-time staircase and Pareto-optimal widths of one core
    (Figure 1 of the paper).
``schedule``
    Schedule one SOC at one TAM width and print the resulting Gantt chart;
    ``--solver`` picks any schedule-producing registry solver.
``table1``
    Regenerate Table 1 (lower bound / non-preemptive / preemptive /
    power-constrained testing times).
``table2``
    Regenerate Table 2 (effective TAM widths for tester data volume
    reduction).
``sweep``
    Run a parameter sweep on the parallel sweep engine: the ``T(W)`` /
    ``D(W)`` curves of Figure 9 (default), or the full Table 1 / Table 2
    experiments, optionally across ``--workers`` processes and exported to
    CSV/JSON.
``bench``
    Run one perf-trajectory suite (``curves``, ``solve``, ``sweep`` or
    ``scale``) and emit a machine-readable ``BENCH_<suite>.json`` report:
    per-phase wall times, cache statistics and schedule makespans for
    integrity.
    ``--check-golden FILE`` fails (exit 1) when makespans or schedule
    fingerprints drift from the checked-in golden values.  Refuses to
    write the report while the wire format has unreviewed drift (REP005).
``chaos``
    Prove fault tolerance deterministically: solve one SOC serially
    (fault-free reference), re-solve it on a dedicated parallel executor
    armed with a :class:`~repro.engine.faults.FaultPlan` (worker kills,
    injected exceptions, hangs, pool-creation failures), and fail
    (exit 1) unless the faulted run's schedule is byte-identical to the
    reference.  ``--journal`` exports the structured fault journal
    (failures + recovery-ladder events) as JSON; ``--check-golden``
    additionally pins the makespan/fingerprint against the checked-in
    golden file.  ``--serve`` runs the service-level scenarios instead
    (worker kill mid-request, client disconnect, server kill + journal
    replay, queue flood) against an in-process supervisor, asserting
    byte-identity against batch ``Session.solve``.
``serve``
    Run the supervised scheduling service: JSONL requests over stdio
    (default) or a TCP listener, with admission control (bounded queue,
    explicit ``overloaded`` rejections), queue-depth backpressure
    reporting, per-request deadlines with mid-solve cancellation,
    fingerprint dedup/coalescing and a write-ahead ``--journal`` that
    makes a killed-and-restarted server replay losslessly.
``lint``
    Run the determinism & fork-safety static-analysis suite
    (:mod:`repro.staticcheck`) over the source tree; ``--json`` emits the
    findings as JSON, ``--list-rules`` documents the rule set, and
    ``--write-wire-schema`` regenerates the pinned wire-format snapshot
    after a reviewed change.
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import io
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import figure1_staircase, run_table1, run_table2
from repro.analysis.export import save_csv, sweep_to_csv, table1_to_csv, table2_to_csv
from repro.analysis.reporting import (
    ascii_plot,
    format_figure_series,
    table1_to_text,
    table2_to_text,
)
from repro.core.lower_bounds import lower_bound
from repro.core.scheduler import SchedulerConfig
from repro.engine.api import parallel_tam_sweep_results
from repro.schedule.gantt import render_gantt
from repro.soc.benchmarks import get_benchmark, list_benchmarks
from repro.soc.constraints import ConstraintSet
from repro.soc.itc02 import load_soc
from repro.soc.soc import Soc
from repro.solvers import (
    ScheduleRequest,
    SolverError,
    default_registry,
    get_default_session,
)


def _load(args: argparse.Namespace) -> Tuple[Soc, Optional[ConstraintSet]]:
    """Resolve the SOC named on the command line (benchmark name or file path)."""
    name = args.soc
    if name in list_benchmarks():
        return get_benchmark(name), None
    soc, constraints = load_soc(name)
    return soc, constraints


def _add_soc_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "soc",
        help="benchmark name (%s) or path to an SOC description file"
        % ", ".join(list_benchmarks()),
    )


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _add_solver_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solver",
        default="paper",
        help="registry solver to run (see 'repro solvers'; default: paper)",
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes for the sweep engine (0 = serial; results "
        "are identical for every value)",
    )


def _cmd_benchmarks(_: argparse.Namespace) -> int:
    for name in list_benchmarks():
        soc = get_benchmark(name)
        print(
            f"{name}: {len(soc)} cores, {soc.total_scan_cells} scan cells, "
            f"{soc.total_patterns} patterns, {soc.total_test_bits} test bits"
        )
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    soc, _ = _load(args)
    core = soc.core(args.core)
    series = figure1_staircase(core, max_width=args.max_width)
    print(ascii_plot(series, title=f"Testing time vs TAM width for {core.name} ({soc.name})"))
    print()
    print(format_figure_series(series, x_label="TAM width", y_label="testing time"))
    return 0


def _solve_request(args: argparse.Namespace) -> "ScheduleRequest":
    """Build the ScheduleRequest described by the command-line arguments."""
    soc, constraints = _load(args)
    config = SchedulerConfig(percent=args.percent, delta=args.delta)
    options = {}
    if getattr(args, "options", None):
        try:
            options = json.loads(args.options)
        except json.JSONDecodeError as error:
            raise SolverError(f"--options is not valid JSON: {error}") from error
        if not isinstance(options, dict):
            raise SolverError("--options must be a JSON object")
    return ScheduleRequest(
        soc=soc,
        total_width=args.width,
        solver=args.solver,
        config=config,
        constraints=constraints,
        options=options,
    )


def _cmd_schedule(args: argparse.Namespace) -> int:
    try:
        request = _solve_request(args)
        result = get_default_session().solve(request)
    except SolverError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if result.schedule is None:
        print(
            f"error: solver {args.solver!r} produces no schedule; "
            "use 'repro solve' to query it",
            file=sys.stderr,
        )
        return 2
    print(render_gantt(result.schedule))
    print()
    print(f"lower bound : {lower_bound(request.soc, args.width)} cycles")
    print(f"testing time: {result.makespan} cycles")
    return 0


def _execution_metadata() -> Dict[str, Any]:
    """Payload-plane counters of the default executor's most recent run.

    Result *objects* never carry these (they would break serial/parallel
    metadata bit-identity -- see ``GridSweepOutcome.metadata``), so the
    CLI reads them off :class:`~repro.engine.results.ExecutorStats` after
    the solve and reports them alongside, ``recovery_events``-style: only
    the nonzero ones appear.
    """
    from repro.engine.executor import get_default_executor

    stats = get_default_executor().last_stats
    if stats is None:
        return {}
    counters = {
        name: getattr(stats, name)
        for name in ("board_aborts", "payload_bytes", "shm_bytes_saved")
    }
    return {name: value for name, value in counters.items() if value}


def _cmd_solve(args: argparse.Namespace) -> int:
    try:
        result = get_default_session().solve(_solve_request(args))
    except SolverError as error:  # includes solver refusals, normalised by Session
        print(f"error: {error}", file=sys.stderr)
        return 2
    execution = _execution_metadata()
    if args.json:
        payload = result.to_dict()
        payload["metadata"].update(execution)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"solver      : {result.solver}")
    print(f"soc         : {result.soc_name} (TAM width {result.total_width})")
    if result.is_bound:
        print(f"lower bound : {result.makespan} cycles")
    else:
        print(f"makespan    : {result.makespan} cycles")
    print(f"data volume : {result.data_volume} bits")
    for name, value in sorted({**dict(result.metadata), **execution}.items()):
        print(f"{name:<12}: {value}")
    return 0


def _cmd_solvers(_: argparse.Namespace) -> int:
    print(default_registry().describe())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    soc, _ = _load(args)
    widths = args.widths or None
    rows = run_table1(soc, widths=widths, workers=args.workers)
    print(table1_to_text(rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    soc, _ = _load(args)
    widths = tuple(range(args.min_width, args.max_width + 1, args.step))
    rows, _sweep = run_table2(
        soc, widths=widths, alphas=args.alphas or None, workers=args.workers
    )
    print(table2_to_text(rows))
    return 0


def _export(args: argparse.Namespace, csv_text: str, records: List[dict]) -> None:
    """Write the sweep result to the CSV/JSON paths given on the command line."""
    if args.csv:
        save_csv(csv_text, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(records, handle, indent=2)
        print(f"wrote {args.json}")


def _sweep_widths(
    args: argparse.Namespace, min_width: int, max_width: int
) -> Tuple[int, ...]:
    """Resolve the width range, falling back to per-experiment defaults."""
    low = args.min_width if args.min_width is not None else min_width
    high = args.max_width if args.max_width is not None else max_width
    step = args.step if args.step is not None else 2
    return tuple(range(low, high + 1, step))


def _cmd_sweep(args: argparse.Namespace) -> int:
    soc, _ = _load(args)

    if args.experiment == "table1":
        rows = run_table1(soc, widths=args.widths or None, workers=args.workers)
        print(table1_to_text(rows))
        _export(args, table1_to_csv(rows), [dataclasses.asdict(row) for row in rows])
        return 0

    if args.experiment == "table2":
        # Same width defaults as the ``table2`` subcommand, so both entry
        # points report identical effective widths.
        widths = _sweep_widths(args, 8, 64)
        rows, _sweep = run_table2(
            soc,
            widths=widths,
            alphas=args.alphas or None,
            workers=args.workers,
            solver=args.solver,
        )
        print(table2_to_text(rows))
        _export(args, table2_to_csv(rows), [dataclasses.asdict(row) for row in rows])
        return 0

    widths = _sweep_widths(args, 4, 80)
    sweep, results = parallel_tam_sweep_results(
        soc, widths, workers=args.workers, solver=args.solver
    )
    time_series = list(zip(sweep.widths, sweep.testing_times))
    volume_series = list(zip(sweep.widths, sweep.data_volumes))
    print(ascii_plot(time_series, title=f"{soc.name}: testing time T(W)"))
    print()
    print(ascii_plot(volume_series, title=f"{soc.name}: tester data volume D(W)"))
    print()
    print(
        format_figure_series(
            [(w, f"{t} / {d}") for (w, t), (_, d) in zip(time_series, volume_series)],
            x_label="TAM width",
            y_label="testing time / data volume",
        )
    )
    # Per-width records; solver metadata (e.g. the best sweep's winning
    # grid point) rides along as extra columns when present.  A row whose
    # testing_time was replaced by the monotone staircase clamp (a
    # narrower width did better) gets no metadata -- that width's own run
    # did not produce the reported value.
    raw_by_width = {result.job.width: result for result in results}
    extra_names: List[str] = []
    for result in results:
        for name, value in result.metadata:
            if name not in extra_names and isinstance(value, (str, int, float, bool)):
                extra_names.append(name)
    records = []
    for (w, t), (_, d) in zip(time_series, volume_series):
        record = {"tam_width": w, "testing_time": t, "data_volume": d}
        raw = raw_by_width.get(w)
        metadata = dict(raw.metadata) if raw is not None and raw.makespan == t else {}
        for name in extra_names:
            record[name] = metadata.get(name, "")
        records.append(record)
    if extra_names:
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=list(records[0].keys()), lineterminator="\n"
        )
        writer.writeheader()
        writer.writerows(records)
        csv_text = buffer.getvalue()
    else:
        csv_text = sweep_to_csv(sweep)
    _export(args, csv_text, records)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import perf

    kwargs = {}
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    if getattr(args, "workers", None):
        if args.suite != "scale":
            print("error: --workers applies to --suite scale only", file=sys.stderr)
            return 2
        try:
            kwargs["workers"] = tuple(
                int(part) for part in str(args.workers).split(",") if part.strip()
            )
        except ValueError:
            print(f"error: bad --workers list {args.workers!r}", file=sys.stderr)
            return 2
    report = perf.run_suite(args.suite, soc_names=args.soc or None, **kwargs)
    print(perf.summarize(report))
    json_path = args.json
    if json_path is not None:
        # Freeze gate: a BENCH_*.json written while the wire format has
        # unreviewed drift would pin numbers nobody can reproduce from the
        # frozen schema.  Refuse until the snapshot is regenerated.
        from repro.staticcheck import default_wire_drifts

        wire_drifts = default_wire_drifts()
        if wire_drifts:
            for drift in wire_drifts:
                print(f"WIRE DRIFT (REP005): {drift}", file=sys.stderr)
            print(
                "error: refusing to write the bench report while the wire "
                "format has unreviewed drift; run 'repro lint', review, then "
                "'repro lint --write-wire-schema'",
                file=sys.stderr,
            )
            return 1
        if json_path == "":
            json_path = f"BENCH_{args.suite}.json"
        perf.write_report(report, json_path)
        print(f"wrote {json_path}")
    if args.check_golden:
        golden = perf.load_report(args.check_golden)
        drifts = perf.check_golden(report, golden)
        if drifts:
            for drift in drifts:
                print(f"GOLDEN DRIFT: {drift}", file=sys.stderr)
            return 1
        print(f"golden check against {args.check_golden}: OK")
    return 0


def _chaos_plan(args: argparse.Namespace) -> "object":
    """Resolve the fault plan: --plan (inline JSON or file), else the env hook."""
    from repro.engine.faults import FaultPlan

    if args.plan:
        text = args.plan.strip()
        if text.startswith("{"):
            return FaultPlan.from_json(text)
        return FaultPlan.from_file(args.plan)
    plan = FaultPlan.from_env()
    return plan if plan is not None else FaultPlan()


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    """``repro chaos --serve``: the service-level fault scenarios."""
    from repro.service.chaos import SERVE_FAULT_KINDS, run_serve_chaos

    soc, _ = _load(args)
    kinds = SERVE_FAULT_KINDS
    if args.serve_kinds:
        kinds = tuple(
            kind.strip() for kind in args.serve_kinds.split(",") if kind.strip()
        )
    try:
        report = run_serve_chaos(soc, args.width, kinds=kinds)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"soc          : {soc.name} (TAM width {args.width})")
    for outcome in report.outcomes:
        verdict = "OK  " if outcome.passed else "FAIL"
        print(f"  {verdict} {outcome.kind:<12}: {outcome.detail}")
    if args.journal:
        with open(args.journal, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.journal}")
    if not report.ok:
        print(
            "SERVE CHAOS FAILED: a service fault scenario broke the "
            "byte-identity contract",
            file=sys.stderr,
        )
        return 1
    print("serve chaos check: OK (every scenario byte-identical to batch solve)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the supervised scheduling service."""
    from repro.service import ServiceConfig, Supervisor, serve_stream, serve_tcp
    from repro.service.supervisor import SupervisorError

    try:
        config = ServiceConfig(
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            default_deadline=args.default_deadline,
            workers=args.workers,
            journal_path=Path(args.journal) if args.journal else None,
            fsync=args.fsync,
        )
    except SupervisorError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    supervisor = Supervisor(config=config)
    try:
        if args.transport == "tcp":
            print(
                f"serving on tcp://{args.host}:{args.port} "
                f"(max_inflight={config.max_inflight}, "
                f"queue_limit={config.queue_limit})",
                file=sys.stderr,
            )
            supervisor.start()
            serve_tcp(
                supervisor,
                host=args.host,
                port=args.port,
                drain_timeout=args.drain_timeout,
            )
        else:
            # serve_stream starts the supervisor itself so journal-replay
            # traffic reaches the client after the hello banner.
            serve_stream(
                supervisor,
                sys.stdin,
                sys.stdout,
                drain_timeout=args.drain_timeout,
                install_signal_handlers=True,
            )
    finally:
        supervisor.close()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import warnings

    if args.serve:
        return _cmd_chaos_serve(args)

    from repro.analysis.perf import SOLVE_OPTIONS, check_golden, load_report
    from repro.analysis.perf import schedule_fingerprint as fingerprint
    from repro.engine.executor import FlatExecutor, use_executor
    from repro.engine.faults import FaultPlanError, journal_to_json, ladder_stage

    try:
        plan = _chaos_plan(args)
    except (FaultPlanError, OSError) as error:
        print(f"error: bad fault plan: {error}", file=sys.stderr)
        return 2
    if not plan:
        print(
            "warning: empty fault plan (no --plan and no REPRO_FAULT_PLAN); "
            "running the harness fault-free",
            file=sys.stderr,
        )

    soc, constraints = _load(args)
    options = dict(SOLVE_OPTIONS.get(args.solver, {}))
    if args.full_grid:
        options = {}
    if getattr(args, "options", None):
        try:
            extra = json.loads(args.options)
        except json.JSONDecodeError as error:
            print(f"error: --options is not valid JSON: {error}", file=sys.stderr)
            return 2
        if not isinstance(extra, dict):
            print("error: --options must be a JSON object", file=sys.stderr)
            return 2
        options.update(extra)
    grid_trimmed = any(key in options for key in ("percents", "deltas", "slacks"))

    def solve(workers: int):
        request = ScheduleRequest(
            soc=soc,
            total_width=args.width,
            solver=args.solver,
            constraints=constraints,
            options={**options, "workers": workers},
        )
        return get_default_session().solve(request)

    try:
        reference = solve(workers=0)
    except SolverError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    chaos_executor = FlatExecutor(
        fault_plan=plan if plan else None, task_deadline=args.deadline
    )
    with use_executor(chaos_executor):
        with warnings.catch_warnings():
            # Recovery is the point here: the pool-degrade RuntimeWarning
            # is recorded in the journal instead of spamming stderr.
            warnings.simplefilter("ignore", RuntimeWarning)
            try:
                faulted = solve(workers=args.workers)
            except SolverError as error:
                print(f"error: faulted solve failed: {error}", file=sys.stderr)
                return 2
            except Exception as error:
                # The ladder deliberately re-raises when a fault plan
                # exceeds the retry budget; report the journal it left
                # behind instead of a raw traceback.
                failures = chaos_executor.last_failures
                events = chaos_executor.last_recovery_events
                print(
                    "CHAOS UNRECOVERED: the faulted run did not survive the "
                    f"fault plan: {error!r}",
                    file=sys.stderr,
                )
                for event in events:
                    print(f"  event  : {event.encode()}", file=sys.stderr)
                for record in failures:
                    print(f"  fault  : {record.render()}", file=sys.stderr)
                if args.journal:
                    payload = journal_to_json(
                        failures,
                        events,
                        extra={
                            "soc": soc.name,
                            "width": args.width,
                            "solver": args.solver,
                            "workers": args.workers,
                            "plan": plan.to_dict(),
                            "unrecovered_error": repr(error),
                        },
                    )
                    with open(args.journal, "w", encoding="utf-8") as handle:
                        handle.write(payload)
                        handle.write("\n")
                    print(f"wrote {args.journal}", file=sys.stderr)
                return 1
        failures = chaos_executor.last_failures
        events = chaos_executor.last_recovery_events

    reference_print = fingerprint(reference.schedule)
    faulted_print = fingerprint(faulted.schedule)
    identical = (
        reference.makespan == faulted.makespan and reference_print == faulted_print
    )
    stage = ladder_stage(events)

    # Golden keys follow the perf suites: the full default grid of the
    # ``best`` solver is the ``best-full`` measurement, anything else the
    # solve-matrix cell.
    label = args.solver
    if args.solver == "best" and not grid_trimmed:
        label = "best-full"
    key = f"{soc.name}/{label}/{args.width}"

    print(f"soc          : {soc.name} (TAM width {args.width}, solver {args.solver})")
    print(f"fault plan   : {len(plan.actions)} action(s)")
    print(f"reference    : makespan {reference.makespan} ({reference_print})")
    print(f"faulted      : makespan {faulted.makespan} ({faulted_print})")
    print(f"recovery     : stage {stage}, {len(events)} event(s), "
          f"{len(failures)} failure record(s)")
    for event in events:
        print(f"  event  : {event.encode()}")
    for record in failures:
        print(f"  fault  : {record.render()}")

    if args.journal:
        payload = journal_to_json(
            failures,
            events,
            extra={
                "soc": soc.name,
                "width": args.width,
                "solver": args.solver,
                "workers": args.workers,
                "plan": plan.to_dict(),
                "makespans": {key: faulted.makespan},
                "fingerprints": {key: faulted_print},
                "reference_makespan": reference.makespan,
                "identical": identical,
                "stage": stage,
            },
        )
        with open(args.journal, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.write("\n")
        print(f"wrote {args.journal}")

    status = 0
    if not identical:
        print(
            "CHAOS DRIFT: faulted run diverged from the fault-free serial "
            "reference",
            file=sys.stderr,
        )
        status = 1
    if args.check_golden:
        report = {
            "makespans": {key: faulted.makespan},
            "fingerprints": {key: faulted_print},
        }
        drifts = check_golden(report, load_report(args.check_golden))
        if drifts:
            for drift in drifts:
                print(f"GOLDEN DRIFT: {drift}", file=sys.stderr)
            status = 1
        else:
            print(f"golden check against {args.check_golden}: OK")
    if status == 0:
        print("chaos check: OK (faulted run byte-identical to reference)")
    return status


def _lint_defaults() -> Tuple[Optional[Path], List[Path], Tuple[Path, ...]]:
    """Checkout-aware lint defaults: (repo root, default paths, source roots).

    Inside a checkout (or an install that ships ``benchmarks/wire_schema.json``
    above the package) the suite lints ``src/repro`` against the pinned
    schema; outside one, paths must be given explicitly and only the
    project-independent rules are meaningful.
    """
    from repro import staticcheck

    import repro

    root = staticcheck.schema.repo_root_for(Path(repro.__file__))
    if root is None:
        package_dir = Path(repro.__file__).resolve().parent
        return None, [package_dir], (package_dir.parent,)
    return root, [root / "src" / "repro"], (root / "src", root)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro import staticcheck

    registry = staticcheck.default_rule_registry()
    if args.list_rules:
        print(registry.describe())
        return 0

    root, default_paths, source_roots = _lint_defaults()
    schema_path = (
        Path(args.schema)
        if args.schema
        else (root / staticcheck.DEFAULT_SCHEMA_RELPATH if root is not None else None)
    )

    if args.write_wire_schema:
        if schema_path is None:
            print(
                "error: no checkout found and no --schema given; cannot tell "
                "where to write the wire schema",
                file=sys.stderr,
            )
            return 2
        staticcheck.write_schema(schema_path, source_roots)
        print(f"wrote {schema_path}")
        return 0

    paths = [Path(p) for p in args.paths] if args.paths else default_paths
    select = args.rule if args.rule else None
    try:
        report = staticcheck.run_lint(
            paths,
            select=select,
            ignore=args.ignore or (),
            registry=registry,
            schema_path=schema_path,
            source_roots=source_roots,
            display_root=root,
        )
    except staticcheck.LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.call_graph is not None or args.effects is not None:
        from repro.staticcheck.analysis import analyze_paths

        analysis = analyze_paths(
            staticcheck.discover_files(paths), source_roots, display_root=root
        )
        exports = []
        if args.call_graph is not None:
            exports.append((args.call_graph, analysis.call_graph_json()))
        if args.effects is not None:
            exports.append((args.effects, analysis.effects_json()))
        for target, payload in exports:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.write("\n")
            print(f"wrote {target}")

    if args.json is not None:
        payload_text = staticcheck.findings_to_json(report.findings)
        if args.json == "":
            print(payload_text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload_text)
                handle.write("\n")
            print(f"wrote {args.json}")
    elif args.output_format == "github":
        for finding in report.findings:
            print(finding.render_github())
    else:
        for finding in report.findings:
            print(finding.render())
    summary = (
        f"checked {report.checked_files} file(s) with "
        f"{len(report.rules)} rule(s): {len(report.findings)} finding(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    print(summary, file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-soc-test",
        description="Wrapper/TAM co-optimization, test scheduling and data volume reduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bench = sub.add_parser("benchmarks", help="list built-in benchmark SOCs")
    p_bench.set_defaults(func=_cmd_benchmarks)

    p_solvers = sub.add_parser(
        "solvers", help="list registered solvers and their capabilities"
    )
    p_solvers.set_defaults(func=_cmd_solvers)

    p_solve = sub.add_parser(
        "solve", help="solve one SOC at one TAM width with any registered solver"
    )
    _add_soc_argument(p_solve)
    p_solve.add_argument("width", type=int, help="total SOC TAM width")
    _add_solver_argument(p_solve)
    p_solve.add_argument("--percent", type=float, default=5.0)
    p_solve.add_argument("--delta", type=int, default=0)
    p_solve.add_argument(
        "--options",
        help="solver-specific options as a JSON object, "
        "e.g. '{\"max_buses\": 2}' for fixed-width",
    )
    p_solve.add_argument(
        "--json",
        action="store_true",
        help="print the full ScheduleResult as JSON instead of a summary",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_pareto = sub.add_parser("pareto", help="testing-time staircase for one core")
    _add_soc_argument(p_pareto)
    p_pareto.add_argument("core", help="core name, e.g. 'Core 6' or 's38417'")
    p_pareto.add_argument("--max-width", type=int, default=64)
    p_pareto.set_defaults(func=_cmd_pareto)

    p_sched = sub.add_parser("schedule", help="schedule an SOC at one TAM width")
    _add_soc_argument(p_sched)
    p_sched.add_argument("width", type=int, help="total SOC TAM width")
    _add_solver_argument(p_sched)
    p_sched.add_argument("--percent", type=float, default=5.0)
    p_sched.add_argument("--delta", type=int, default=0)
    p_sched.set_defaults(func=_cmd_schedule)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1 for one SOC")
    _add_soc_argument(p_t1)
    p_t1.add_argument("--widths", type=int, nargs="*", help="TAM widths to evaluate")
    _add_workers_argument(p_t1)
    p_t1.set_defaults(func=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 for one SOC")
    _add_soc_argument(p_t2)
    p_t2.add_argument("--alphas", type=float, nargs="*")
    p_t2.add_argument("--min-width", type=int, default=8)
    p_t2.add_argument("--max-width", type=int, default=64)
    p_t2.add_argument("--step", type=int, default=2)
    _add_workers_argument(p_t2)
    p_t2.set_defaults(func=_cmd_table2)

    p_sweep = sub.add_parser(
        "sweep", help="parameter sweeps on the parallel sweep engine"
    )
    _add_soc_argument(p_sweep)
    p_sweep.add_argument(
        "--experiment",
        choices=("curves", "table1", "table2"),
        default="curves",
        help="what to sweep: the T(W)/D(W) curves of Figure 9 (default), "
        "the full Table 1 grid, or the Table 2 effective-width study",
    )
    p_sweep.add_argument(
        "--min-width",
        type=int,
        default=None,
        help="smallest TAM width (default: 4 for curves, 8 for table2)",
    )
    p_sweep.add_argument(
        "--max-width",
        type=int,
        default=None,
        help="largest TAM width (default: 80 for curves, 64 for table2)",
    )
    p_sweep.add_argument("--step", type=int, default=None, help="width step (default 2)")
    p_sweep.add_argument(
        "--solver",
        default="paper",
        help="solver for the curves and table2 experiments (any "
        "schedule-producing registry solver, e.g. 'best' for the full "
        "best-over-grid protocol per width; default: paper)",
    )
    p_sweep.add_argument(
        "--widths", type=int, nargs="*", help="TAM widths (table1 experiment)"
    )
    p_sweep.add_argument("--alphas", type=float, nargs="*", help="table2 alphas")
    p_sweep.add_argument("--csv", help="also write the result table to this CSV file")
    p_sweep.add_argument("--json", help="also write the result records to this JSON file")
    _add_workers_argument(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_bench = sub.add_parser(
        "bench", help="run a perf-trajectory suite and emit BENCH_<suite>.json"
    )
    p_bench.add_argument(
        "--suite",
        choices=("curves", "solve", "sweep", "scale", "serve"),
        default="curves",
        help="what to measure: per-core curve construction (default), the "
        "cold full-solver pass, the Figure 9 sweep, the worker-count "
        "scaling curve of the shared-memory payload plane, or the "
        "scheduling service under a duplicate-heavy request burst",
    )
    p_bench.add_argument(
        "--workers",
        metavar="N[,N...]",
        default=None,
        help="comma-separated worker counts for --suite scale "
        "(default 1,2,4; the serial reference is always measured)",
    )
    p_bench.add_argument(
        "--soc",
        action="append",
        help="benchmark SOC to measure (repeatable; suite-specific default)",
    )
    p_bench.add_argument(
        "--json",
        nargs="?",
        const="",
        default=None,
        help="write the JSON report here (bare --json writes "
        "BENCH_<suite>.json in the current directory)",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repetitions per measurement (report keeps the minimum)",
    )
    p_bench.add_argument(
        "--check-golden",
        metavar="FILE",
        help="compare makespans/fingerprints against this golden JSON and "
        "exit 1 on drift",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_chaos = sub.add_parser(
        "chaos",
        help="prove fault tolerance: solve under an injected fault plan and "
        "compare against the fault-free serial reference",
    )
    _add_soc_argument(p_chaos)
    p_chaos.add_argument("width", type=int, help="total SOC TAM width")
    p_chaos.add_argument(
        "--solver",
        default="best",
        help="registry solver to harden (default: best, whose grid fan-out "
        "exercises the parallel path)",
    )
    p_chaos.add_argument(
        "--plan",
        help="fault plan: inline JSON (starts with '{') or a path to a plan "
        "file; default: the REPRO_FAULT_PLAN environment hook",
    )
    p_chaos.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=2,
        help="worker processes for the faulted run (default 2)",
    )
    p_chaos.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-task watchdog deadline in seconds for the faulted run "
        "(default: REPRO_TASK_DEADLINE or 300)",
    )
    p_chaos.add_argument(
        "--options",
        help="extra solver options as a JSON object (merged over the perf "
        "suite's trimmed grid for 'best')",
    )
    p_chaos.add_argument(
        "--full-grid",
        action="store_true",
        help="drop the trimmed grid and sweep the solver's full default "
        "grid (golden key '<soc>/best-full/<width>' for 'best')",
    )
    p_chaos.add_argument(
        "--journal",
        metavar="FILE",
        help="write the structured fault journal (failures + recovery "
        "events) as JSON to FILE",
    )
    p_chaos.add_argument(
        "--check-golden",
        metavar="FILE",
        help="also compare the faulted run's makespan/fingerprint against "
        "this golden JSON and exit 1 on drift",
    )
    p_chaos.add_argument(
        "--serve",
        action="store_true",
        help="run the service-level fault scenarios instead (worker kill, "
        "client disconnect, server kill + journal replay, queue flood), "
        "asserting byte-identity against batch Session.solve",
    )
    p_chaos.add_argument(
        "--serve-kinds",
        metavar="KIND[,KIND...]",
        default=None,
        help="comma-separated subset of the service fault kinds to run "
        "with --serve (default: all)",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the supervised scheduling service (JSONL over stdio or TCP)",
    )
    p_serve.add_argument(
        "--transport",
        choices=("stdio", "tcp"),
        default="stdio",
        help="stdio serves one JSONL client on stdin/stdout (default); "
        "tcp runs the asyncio listener",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p_serve.add_argument("--port", type=int, default=7533, help="TCP bind port")
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="requests solved concurrently (worker threads; default 2)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="bounded accept queue depth; further solves are rejected "
        "'overloaded' (default 8)",
    )
    p_serve.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="process fan-out per solve (default 0: in-thread serial "
        "solves, fully cancellable)",
    )
    p_serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="deadline in seconds applied to requests that name none "
        "(default: unbounded)",
    )
    p_serve.add_argument(
        "--journal",
        metavar="FILE",
        help="write-ahead event journal path; an existing journal is "
        "replayed on startup (completed-unacked results re-served, "
        "unsettled requests re-run)",
    )
    p_serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every journal record (survive power loss, pay a sync "
        "per record)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for in-flight work on EOF/shutdown/SIGTERM "
        "(default 30)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="run the determinism & fork-safety static-analysis suite",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the checkout's src/repro)",
    )
    p_lint.add_argument(
        "--rule",
        action="append",
        metavar="CODE",
        help="run only this rule (repeatable), e.g. --rule REP001",
    )
    p_lint.add_argument(
        "--select",
        dest="rule",
        action="append",
        metavar="CODE",
        help="alias for --rule",
    )
    p_lint.add_argument(
        "--ignore",
        action="append",
        metavar="CODE",
        help="drop this rule from the selection (repeatable)",
    )
    p_lint.add_argument(
        "--json",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="emit findings as JSON (bare --json prints to stdout)",
    )
    p_lint.add_argument(
        "--schema",
        metavar="FILE",
        help="wire-format snapshot to check against "
        "(default: the checkout's benchmarks/wire_schema.json)",
    )
    p_lint.add_argument(
        "--write-wire-schema",
        action="store_true",
        help="regenerate the pinned wire-format snapshot from the current "
        "tree (after reviewing the wire change) and exit",
    )
    p_lint.add_argument(
        "--output-format",
        choices=("text", "github"),
        default="text",
        help="finding output format: human-readable text (default) or "
        "GitHub Actions '::error file=...' annotations",
    )
    p_lint.add_argument(
        "--call-graph",
        metavar="FILE",
        default=None,
        help="export the interprocedural call graph (edges, entry points) "
        "as JSON to FILE",
    )
    p_lint.add_argument(
        "--effects",
        metavar="FILE",
        default=None,
        help="export the per-function side-effect summaries (local and "
        "call-graph-propagated) as JSON to FILE",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""repro: wrapper/TAM co-optimization, constraint-driven test scheduling and
tester data volume reduction for SOCs.

A faithful, self-contained Python reproduction of

    V. Iyengar, K. Chakrabarty, E. J. Marinissen,
    "Wrapper/TAM Co-Optimization, Constraint-Driven Test Scheduling, and
    Tester Data Volume Reduction for SOCs", DAC 2002.

Quick start
-----------
Every scheduling algorithm -- the paper scheduler, the baselines, the
lower bound -- is a *solver* behind one ``solve(ScheduleRequest)`` API:

>>> from repro import ScheduleRequest, Session, d695, lower_bound
>>> session = Session()                       # shares Pareto curves across solves
>>> soc = d695()
>>> result = session.solve(ScheduleRequest(soc=soc, total_width=32))
>>> result.makespan >= lower_bound(soc, 32)
True
>>> shelf = session.solve(
...     ScheduleRequest(soc=soc, total_width=32, solver="shelf"))
>>> result.makespan <= shelf.makespan
True

The public API re-exported here covers the full framework:

* SOC modelling: :class:`Core`, :class:`Soc`, :class:`ConstraintSet`,
  benchmark SOCs (``d695``, ``p22810``, ``p34392``, ``p93791``) and the
  ITC'02-style file format.
* Wrapper design: ``design_wrapper``, ``testing_time``, ``pareto_points``.
* Solver API: ``Session``, ``ScheduleRequest``, ``ScheduleResult``,
  ``SolverRegistry``, ``register_solver``, ``SolverCapabilities`` -- the
  registry front door every scheduler, baseline and sweep goes through
  (``repro solvers`` lists the registered solvers).
* Scheduling: ``SchedulerConfig``, ``TestSchedule``, ``render_gantt`` and
  the ``lower_bound`` (plus the deprecated free functions
  ``schedule_soc``/``best_schedule`` and baseline shims, kept for
  backward compatibility).
* Tester data volume: ``sweep_tam_widths``, ``tester_data_volume``,
  ``effective_width``.
* Experiments: ``run_table1``, ``run_table2``, ``figure1_staircase``,
  ``figure9_curves``.
* Sweep engine: ``ParameterGrid``, ``ScheduleJob``, ``run_jobs``,
  ``best_schedule_grid``, ``parallel_tam_sweep`` -- declarative parameter
  grids executed serially or across a ``multiprocessing`` worker pool with
  bit-identical results, every job solved through the solver session.
"""

from repro.soc import (
    ConstraintSet,
    Core,
    Soc,
    SocValidationError,
    ConstraintError,
    SocFormatError,
    d695,
    format_soc,
    generate_soc,
    generate_soc_family,
    get_benchmark,
    list_benchmarks,
    load_soc,
    p22810,
    p34392,
    p93791,
    parse_soc,
    save_soc,
)
from repro.wrapper import (
    WrapperDesign,
    core_wrapper_plan,
    design_wrapper,
    format_soc_wrapper_plans,
    pareto_points,
    preferred_width,
    testing_time,
    testing_time_curve,
    wrapper_plans_for_schedule,
)
from repro.schedule import (
    ScheduleError,
    ScheduleSegment,
    TestSchedule,
    render_gantt,
)
from repro.core import (
    GridPoint,
    GridSweepOutcome,
    Rectangle,
    RectangleSet,
    SchedulerConfig,
    SchedulerError,
    TamSweep,
    best_schedule,
    build_rectangle_sets,
    cost_curve,
    effective_width,
    lower_bound,
    run_grid_sweep,
    schedule_soc,
    sweep_tam_widths,
    tester_data_volume,
)
from repro.baselines import (
    exhaustive_schedule,
    fixed_width_schedule,
    shelf_schedule,
)
from repro.solvers import (
    BaseSolver,
    ScheduleRequest,
    ScheduleResult,
    Session,
    Solver,
    SolverCapabilities,
    SolverError,
    SolverRegistry,
    default_registry,
    get_default_session,
    register_solver,
    solve,
)
from repro.engine import (
    EngineContext,
    EngineError,
    JobResult,
    ParameterGrid,
    ScheduleJob,
    SweepResults,
    best_schedule_grid,
    parallel_tam_sweep,
    run_jobs,
)
from repro.analysis import (
    TesterModel,
    best_multisite_width,
    evaluate_multisite,
    figure1_staircase,
    figure9_curves,
    multisite_curve,
    run_table1,
    run_table2,
    table1_to_text,
    table2_to_text,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # soc
    "Core",
    "Soc",
    "ConstraintSet",
    "SocValidationError",
    "ConstraintError",
    "SocFormatError",
    "parse_soc",
    "format_soc",
    "load_soc",
    "save_soc",
    "d695",
    "p22810",
    "p34392",
    "p93791",
    "get_benchmark",
    "list_benchmarks",
    "generate_soc",
    "generate_soc_family",
    # wrapper
    "WrapperDesign",
    "design_wrapper",
    "testing_time",
    "testing_time_curve",
    "pareto_points",
    "preferred_width",
    "core_wrapper_plan",
    "wrapper_plans_for_schedule",
    "format_soc_wrapper_plans",
    # schedule
    "TestSchedule",
    "ScheduleSegment",
    "ScheduleError",
    "render_gantt",
    # core
    "Rectangle",
    "RectangleSet",
    "build_rectangle_sets",
    "SchedulerConfig",
    "SchedulerError",
    "schedule_soc",
    "best_schedule",
    "GridPoint",
    "GridSweepOutcome",
    "run_grid_sweep",
    "lower_bound",
    "TamSweep",
    "sweep_tam_widths",
    "tester_data_volume",
    "cost_curve",
    "effective_width",
    # baselines
    "fixed_width_schedule",
    "shelf_schedule",
    "exhaustive_schedule",
    # solver API
    "Session",
    "ScheduleRequest",
    "ScheduleResult",
    "Solver",
    "BaseSolver",
    "SolverCapabilities",
    "SolverError",
    "SolverRegistry",
    "default_registry",
    "register_solver",
    "get_default_session",
    "solve",
    # engine
    "ParameterGrid",
    "ScheduleJob",
    "JobResult",
    "EngineContext",
    "EngineError",
    "SweepResults",
    "run_jobs",
    "best_schedule_grid",
    "parallel_tam_sweep",
    # analysis
    "run_table1",
    "run_table2",
    "figure1_staircase",
    "figure9_curves",
    "table1_to_text",
    "table2_to_text",
    "TesterModel",
    "evaluate_multisite",
    "best_multisite_width",
    "multisite_curve",
]

"""The :class:`Soc` data model: a named collection of cores.

The SOC is the unit the paper's framework operates on.  The class performs
structural validation (unique core names, hierarchy references that resolve)
and offers a handful of aggregate quantities used by the lower-bound and
data-volume computations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.soc.core import Core


class SocValidationError(ValueError):
    """Raised when an SOC description is structurally invalid."""


@dataclass(frozen=True)
class Soc:
    """A system-on-chip: a named, ordered collection of embedded cores.

    Parameters
    ----------
    name:
        SOC name (e.g. ``"d695"``).
    cores:
        The embedded cores, in their benchmark order.
    """

    name: str
    cores: Tuple[Core, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cores", tuple(self.cores))
        if not self.name:
            raise SocValidationError("SOC name must be a non-empty string")
        if not self.cores:
            raise SocValidationError(f"SOC {self.name!r} has no cores")
        self._validate()

    def _validate(self) -> None:
        seen = set()
        names = {core.name for core in self.cores}
        for core in self.cores:
            if core.name in seen:
                raise SocValidationError(
                    f"SOC {self.name!r} has duplicate core name {core.name!r}"
                )
            seen.add(core.name)
            if core.parent is not None:
                if core.parent not in names:
                    raise SocValidationError(
                        f"core {core.name!r} references unknown parent {core.parent!r}"
                    )
                if core.parent == core.name:
                    raise SocValidationError(
                        f"core {core.name!r} cannot be its own parent"
                    )
        self._check_hierarchy_acyclic()

    def _check_hierarchy_acyclic(self) -> None:
        parent_of = {core.name: core.parent for core in self.cores}
        for start in parent_of:
            seen = {start}
            node = parent_of[start]
            while node is not None:
                if node in seen:
                    raise SocValidationError(
                        f"core hierarchy of SOC {self.name!r} contains a cycle "
                        f"through {node!r}"
                    )
                seen.add(node)
                node = parent_of.get(node)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Core):
            return name in self.cores
        return any(core.name == name for core in self.cores)

    def __getitem__(self, key: object) -> Core:
        if isinstance(key, int):
            return self.cores[key]
        if isinstance(key, str):
            return self.core(key)
        raise TypeError(f"SOC indices must be int or str, not {type(key).__name__}")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def core(self, name: str) -> Core:
        """Return the core with the given name, or raise ``KeyError``."""
        for core in self.cores:
            if core.name == name:
                return core
        raise KeyError(f"SOC {self.name!r} has no core named {name!r}")

    @property
    def core_names(self) -> Tuple[str, ...]:
        """Names of all cores, in order."""
        return tuple(core.name for core in self.cores)

    def children_of(self, name: str) -> Tuple[Core, ...]:
        """Cores whose hierarchical parent is the named core."""
        return tuple(core for core in self.cores if core.parent == name)

    def bist_groups(self) -> Dict[str, Tuple[str, ...]]:
        """Map each BIST resource name to the cores that share it."""
        groups: Dict[str, List[str]] = {}
        for core in self.cores:
            if core.bist_resource is not None:
                groups.setdefault(core.bist_resource, []).append(core.name)
        return {resource: tuple(names) for resource, names in groups.items()}

    # ------------------------------------------------------------------
    # Aggregate quantities
    # ------------------------------------------------------------------
    @property
    def total_test_bits(self) -> int:
        """Total tester data volume over all cores, in bits."""
        return sum(core.total_test_bits for core in self.cores)

    @property
    def total_patterns(self) -> int:
        """Total number of test patterns over all cores."""
        return sum(core.patterns for core in self.cores)

    @property
    def total_scan_cells(self) -> int:
        """Total number of internal scan cells over all cores."""
        return sum(core.scan_cells for core in self.cores)

    def max_test_power(self) -> float:
        """The largest per-core test power value."""
        return max(core.test_power for core in self.cores)

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def with_cores(self, cores: Iterable[Core]) -> "Soc":
        """Return a copy of this SOC with a replacement core list."""
        return Soc(name=self.name, cores=tuple(cores))

    def subset(self, names: Sequence[str]) -> "Soc":
        """Return a new SOC containing only the named cores (in given order)."""
        return Soc(name=f"{self.name}-subset", cores=tuple(self.core(n) for n in names))

    def renamed(self, name: str) -> "Soc":
        """Return a copy of this SOC with a different name."""
        return Soc(name=name, cores=self.cores)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line human-readable summary of the SOC."""
        lines = [
            f"SOC {self.name}: {len(self.cores)} cores, "
            f"{self.total_scan_cells} scan cells, "
            f"{self.total_patterns} patterns, "
            f"{self.total_test_bits} test bits",
        ]
        for core in self.cores:
            lines.append("  " + core.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Soc(name={self.name!r}, cores=<{len(self.cores)} cores>)"

"""Seeded synthetic SOC generator for stress tests and ablations.

The ITC'02 benchmarks cover four specific SOCs; for scaling studies,
randomised property tests and ablation sweeps it is useful to generate
families of SOCs with controlled statistics (core count, scan volume,
pattern counts, hierarchy/BIST structure).  The generator is deterministic
for a given seed, so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.soc.core import Core
from repro.soc.soc import Soc


@dataclass(frozen=True)
class GeneratorProfile:
    """Statistical profile of a generated SOC.

    The defaults produce mid-sized cores broadly comparable to the ITC'02
    benchmarks (hundreds to a few thousand scan cells per core).
    """

    min_cores: int = 6
    max_cores: int = 20
    min_patterns: int = 10
    max_patterns: int = 400
    min_scan_cells: int = 0
    max_scan_cells: int = 6000
    max_scan_chains: int = 32
    min_io: int = 4
    max_io: int = 150
    bidir_fraction: float = 0.1
    combinational_fraction: float = 0.1
    hierarchy_fraction: float = 0.0
    bist_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_cores <= self.max_cores:
            raise ValueError("core count bounds must satisfy 1 <= min <= max")
        if not 1 <= self.min_patterns <= self.max_patterns:
            raise ValueError("pattern bounds must satisfy 1 <= min <= max")
        if not 0 <= self.min_scan_cells <= self.max_scan_cells:
            raise ValueError("scan-cell bounds must satisfy 0 <= min <= max")
        if self.max_scan_chains < 1:
            raise ValueError("max_scan_chains must be at least 1")
        if not 1 <= self.min_io <= self.max_io:
            raise ValueError("I/O bounds must satisfy 1 <= min <= max")
        fraction_names = (
            "bidir_fraction",
            "combinational_fraction",
            "hierarchy_fraction",
            "bist_fraction",
        )
        for name in fraction_names:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")


def _random_scan_chains(rng: random.Random, cells: int, max_chains: int) -> List[int]:
    if cells <= 0:
        return []
    chains = rng.randint(1, min(max_chains, cells))
    # Split `cells` into `chains` positive parts with mild imbalance.
    cuts = sorted(rng.sample(range(1, cells), chains - 1)) if chains > 1 else []
    bounds = [0] + cuts + [cells]
    return [bounds[i + 1] - bounds[i] for i in range(chains)]


def generate_soc(
    seed: int,
    name: Optional[str] = None,
    profile: Optional[GeneratorProfile] = None,
) -> Soc:
    """Generate a deterministic synthetic SOC for the given seed."""
    profile = profile or GeneratorProfile()
    rng = random.Random(seed)
    core_count = rng.randint(profile.min_cores, profile.max_cores)
    cores: List[Core] = []
    bist_engines = max(1, core_count // 4)
    for index in range(1, core_count + 1):
        combinational = rng.random() < profile.combinational_fraction
        scan_cells = (
            0
            if combinational
            else rng.randint(max(profile.min_scan_cells, 1), profile.max_scan_cells)
        )
        inputs = rng.randint(profile.min_io, profile.max_io)
        outputs = rng.randint(profile.min_io, profile.max_io)
        bidirs = (
            rng.randint(0, max(1, profile.max_io // 10))
            if rng.random() < profile.bidir_fraction
            else 0
        )
        parent = None
        if index > 1 and rng.random() < profile.hierarchy_fraction:
            parent = f"core{rng.randint(1, index - 1)}"
        bist = None
        if rng.random() < profile.bist_fraction:
            bist = f"bist{rng.randint(0, bist_engines - 1)}"
        cores.append(
            Core(
                name=f"core{index}",
                inputs=inputs,
                outputs=outputs,
                bidirs=bidirs,
                patterns=rng.randint(profile.min_patterns, profile.max_patterns),
                scan_chains=tuple(
                    _random_scan_chains(rng, scan_cells, profile.max_scan_chains)
                ),
                parent=parent,
                bist_resource=bist,
            )
        )
    return Soc(name=name or f"synthetic-{seed}", cores=tuple(cores))


def generate_soc_family(
    seeds: range,
    profile: Optional[GeneratorProfile] = None,
    name_prefix: str = "synthetic",
) -> List[Soc]:
    """Generate one SOC per seed, sharing a statistical profile."""
    return [
        generate_soc(seed, name=f"{name_prefix}-{seed}", profile=profile) for seed in seeds
    ]

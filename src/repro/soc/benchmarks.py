"""The four SOCs used in the paper's evaluation (ITC'02 benchmark initiative).

``d695`` is the academic SOC from Duke University.  Its ten cores are the
ISCAS-85/89 circuits whose test-set parameters are published, so the data
below is essentially the real benchmark (the implied lower bound on testing
time at a 16-bit TAM is within a fraction of a percent of the paper's
41232 cycles).

``p22810``, ``p34392`` and ``p93791`` are industrial Philips SOCs whose
netlists are not redistributable and are no longer available from the
original benchmark site.  The functions below therefore return **synthetic
stand-ins**, hand-calibrated so that the quantities the paper's experiments
depend on are preserved:

* the total test-data volume (and hence the TAM-width-scaled lower bounds of
  Table 1) matches the paper's reported lower bounds to within ~1-2 %;
* ``p34392`` contains a bottleneck core (``Core 18``) whose minimum testing
  time of roughly 5.45e5 cycles dominates the SOC testing time at wide TAMs,
  exactly as in the paper;
* ``p93791`` contains a large core (``Core 6``) whose testing-time staircase
  saturates near a TAM width of 47 at roughly 1.14e5 cycles, reproducing the
  shape of the paper's Figure 1.

Absolute cycle counts for the Philips SOCs therefore differ from the paper,
but every qualitative result (staircases, Pareto minima of the data-volume
curve, bottleneck effects, preemption trade-offs) is reproduced.  See
DESIGN.md section 5 for the substitution rationale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.soc.core import Core
from repro.soc.soc import Soc

__all__ = [
    "d695",
    "p22810",
    "p34392",
    "p93791",
    "get_benchmark",
    "list_benchmarks",
]


def _scan_core(
    name: str,
    inputs: int,
    outputs: int,
    patterns: int,
    scan_cells: int,
    num_chains: int,
) -> Core:
    """Helper: a core with ``scan_cells`` split into ``num_chains`` balanced chains."""
    if num_chains == 0:
        return Core.combinational(name, inputs=inputs, outputs=outputs, patterns=patterns)
    return Core.balanced_scan(
        name,
        inputs=inputs,
        outputs=outputs,
        patterns=patterns,
        scan_cells=scan_cells,
        num_chains=num_chains,
    )


# ---------------------------------------------------------------------------
# d695 -- academic SOC built from ISCAS-85/89 circuits (published data)
# ---------------------------------------------------------------------------
def d695() -> Soc:
    """The academic d695 SOC (10 ISCAS-85/89 cores)."""
    cores = (
        Core.combinational("c6288", inputs=32, outputs=32, patterns=12),
        Core.combinational("c7552", inputs=207, outputs=108, patterns=73),
        Core("s838", inputs=35, outputs=2, patterns=75, scan_chains=(32,)),
        Core("s9234", inputs=36, outputs=39, patterns=105, scan_chains=(54, 53, 52, 52)),
        Core.balanced_scan(
            "s38584", inputs=38, outputs=304, patterns=110, scan_cells=1426, num_chains=32
        ),
        Core.balanced_scan(
            "s13207", inputs=62, outputs=152, patterns=234, scan_cells=638, num_chains=16
        ),
        Core.balanced_scan(
            "s15850", inputs=77, outputs=150, patterns=95, scan_cells=534, num_chains=16
        ),
        Core("s5378", inputs=35, outputs=49, patterns=97, scan_chains=(46, 45, 44, 44)),
        Core.balanced_scan(
            "s35932", inputs=35, outputs=320, patterns=12, scan_cells=1728, num_chains=32
        ),
        Core.balanced_scan(
            "s38417", inputs=28, outputs=106, patterns=68, scan_cells=1636, num_chains=32
        ),
    )
    return Soc(name="d695", cores=cores)


# ---------------------------------------------------------------------------
# Synthetic stand-ins for the Philips industrial SOCs
# ---------------------------------------------------------------------------
# Each spec is (inputs, outputs, patterns, scan_cells, num_chains).
_P22810_SPECS: Tuple[Tuple[int, int, int, int, int], ...] = (
    (100, 80, 250, 4000, 20),
    (120, 100, 180, 3600, 16),
    (80, 60, 120, 5000, 24),
    (60, 50, 300, 1800, 12),
    (70, 90, 90, 6200, 29),
    (40, 30, 400, 1100, 8),
    (50, 70, 150, 2500, 10),
    (60, 40, 100, 3000, 14),
    (30, 30, 220, 1200, 6),
    (100, 120, 80, 3200, 16),
    (50, 60, 60, 4200, 20),
    (20, 30, 500, 400, 4),
    (40, 50, 130, 1500, 8),
    (60, 40, 75, 2400, 12),
    (30, 40, 45, 3600, 18),
    (25, 35, 200, 700, 4),
    (45, 55, 35, 3400, 17),
    (30, 20, 110, 900, 6),
    (35, 45, 64, 1400, 8),
    (60, 60, 20, 4000, 20),
    (20, 25, 150, 300, 2),
    (150, 100, 90, 0, 0),
    (25, 30, 40, 500, 4),
    (30, 40, 12, 1600, 16),
)

_P34392_SPECS: Tuple[Tuple[int, int, int, int, int], ...] = (
    (90, 110, 260, 4800, 24),
    (70, 80, 150, 5400, 18),
    (50, 60, 300, 2400, 12),
    (110, 90, 150, 5600, 28),
    (30, 40, 420, 1500, 10),
    (60, 70, 95, 6200, 31),
    (45, 55, 240, 2200, 8),
    (65, 75, 170, 2900, 14),
    (40, 30, 130, 4500, 16),
    (75, 85, 85, 5000, 25),
    (25, 35, 360, 1100, 6),
    (55, 45, 200, 1800, 9),
    (80, 60, 75, 5600, 20),
    (35, 25, 170, 2100, 12),
    (50, 50, 130, 2500, 10),
    (60, 80, 60, 5200, 26),
    (30, 20, 280, 900, 4),
    # Core 18 -- the bottleneck core: one very long scan chain means its
    # testing time saturates at ~5.45e5 cycles, dominating the SOC at wide
    # TAMs exactly as the paper describes.
    None,  # placeholder, replaced below
    (220, 140, 90, 0, 0),
)

_P93791_SPECS: Tuple[Tuple[int, int, int, int, int], ...] = (
    (100, 110, 450, 4600, 20),
    (130, 120, 230, 7200, 30),
    (70, 80, 520, 2900, 12),
    (90, 100, 320, 4200, 16),
    (110, 90, 190, 6800, 28),
    # Core 6 -- the Figure 1 core: 46 chains of 520 cells, staircase
    # saturates near TAM width 47 at ~1.14e5 cycles.
    None,  # placeholder, replaced below
    (50, 60, 620, 1900, 10),
    (80, 70, 280, 3900, 18),
    (60, 50, 380, 2700, 14),
    (100, 120, 160, 6200, 24),
    (40, 45, 480, 1900, 8),
    (75, 85, 210, 4100, 20),
    (90, 80, 115, 7200, 32),
    (55, 65, 280, 2300, 12),
    (65, 55, 210, 2900, 10),
    (85, 95, 120, 4800, 22),
    (35, 40, 340, 1600, 8),
    (70, 60, 160, 3200, 16),
    (60, 70, 105, 4600, 20),
    (45, 35, 250, 1800, 6),
    (80, 90, 85, 5000, 24),
    (50, 40, 190, 2100, 10),
    (40, 50, 140, 2700, 12),
    (55, 65, 70, 5100, 25),
    (30, 25, 300, 1100, 4),
    (60, 50, 115, 2700, 14),
    (70, 80, 55, 5300, 26),
    (25, 35, 225, 1200, 6),
    (40, 30, 160, 1600, 8),
    (45, 55, 95, 2500, 12),
    (90, 100, 30, 7400, 32),
    (700, 400, 75, 0, 0),
)


def _build_philips(name: str, specs: Sequence, special: Dict[int, Core]) -> Soc:
    cores: List[Core] = []
    for index, spec in enumerate(specs, start=1):
        core_name = f"Core {index}"
        if spec is None:
            cores.append(special[index].replace(name=core_name))
            continue
        inputs, outputs, patterns, scan_cells, num_chains = spec
        cores.append(_scan_core(core_name, inputs, outputs, patterns, scan_cells, num_chains))
    return Soc(name=name, cores=tuple(cores))


def p22810() -> Soc:
    """Synthetic stand-in for the Philips p22810 SOC (24 cores)."""
    return _build_philips("p22810", _P22810_SPECS, special={})


def p34392() -> Soc:
    """Synthetic stand-in for the Philips p34392 SOC (19 cores, bottleneck Core 18)."""
    core18 = Core(
        "Core 18",
        inputs=65,
        outputs=72,
        patterns=101,
        scan_chains=(5338,) + (600,) * 80,
    )
    return _build_philips("p34392", _P34392_SPECS, special={18: core18})


def p93791() -> Soc:
    """Synthetic stand-in for the Philips p93791 SOC (32 cores, staircase Core 6)."""
    core6 = Core(
        "Core 6",
        inputs=417,
        outputs=324,
        patterns=220,
        scan_chains=(520,) * 46,
    )
    return _build_philips("p93791", _P93791_SPECS, special={6: core6})


_BENCHMARKS: Dict[str, Callable[[], Soc]] = {
    "d695": d695,
    "p22810": p22810,
    "p34392": p34392,
    "p93791": p93791,
}


def list_benchmarks() -> Tuple[str, ...]:
    """Names of the available benchmark SOCs."""
    return tuple(_BENCHMARKS)


def get_benchmark(name: str) -> Soc:
    """Return a benchmark SOC by name (case insensitive)."""
    key = name.lower()
    if key not in _BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(_BENCHMARKS)}"
        )
    return _BENCHMARKS[key]()

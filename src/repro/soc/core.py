"""The :class:`Core` data model.

A core is described by the test-set parameters the paper uses (Section 3):
the number of functional inputs, outputs and bidirectional pins, the number
of test patterns, and the lengths of its internal scan chains.  Scan chain
lengths are *fixed* (the paper explicitly assumes this, unlike Aerts &
Marinissen [1]).

Two optional attributes extend the model for constraint-driven scheduling
(Section 4):

* ``power``      -- power dissipated while the core's test runs.  When not
  given it defaults to the number of test-data bits per pattern, which is the
  "hypothetical power value" the paper assigns in its experiments.
* ``bist_resource`` -- name of an on-chip BIST engine shared with other
  cores; two cores that share an engine must not be tested concurrently
  (the "BIST-scan test conflict" of Figure 7).
* ``parent``     -- name of the hierarchical parent core, if any.  A parent
  core cannot be tested at the same time as its children because the child
  wrappers must be in Extest mode while the parent is in Intest mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class Core:
    """An embedded core and its test-set parameters.

    Parameters
    ----------
    name:
        Unique core name within the SOC (e.g. ``"s38417"`` or ``"Core 6"``).
    inputs:
        Number of functional input terminals (excluding bidirectional pins).
    outputs:
        Number of functional output terminals (excluding bidirectional pins).
    bidirs:
        Number of bidirectional terminals.  A bidirectional terminal needs a
        wrapper cell on both the scan-in and the scan-out path.
    patterns:
        Number of test patterns in the core's test set.
    scan_chains:
        Lengths of the core's internal scan chains.  An empty tuple means the
        core is combinational (no internal state accessed through scan).
    power:
        Power dissipated while this core's test is applied.  ``None`` means
        "use the default model": test-data bits per pattern
        (:attr:`test_bits_per_pattern`).
    bist_resource:
        Optional name of a shared BIST engine.  Cores that name the same
        engine cannot be tested concurrently.
    parent:
        Optional name of the hierarchical parent core.
    """

    name: str
    inputs: int
    outputs: int
    bidirs: int = 0
    patterns: int = 1
    scan_chains: Tuple[int, ...] = field(default_factory=tuple)
    power: Optional[float] = None
    bist_resource: Optional[str] = None
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scan_chains", tuple(int(c) for c in self.scan_chains))
        if not self.name:
            raise ValueError("core name must be a non-empty string")
        for attr in ("inputs", "outputs", "bidirs", "patterns"):
            value = getattr(self, attr)
            if value < 0:
                raise ValueError(f"{attr} must be non-negative, got {value}")
        if self.patterns == 0:
            raise ValueError("a core must have at least one test pattern")
        if any(length <= 0 for length in self.scan_chains):
            raise ValueError("scan chain lengths must be positive")
        if self.inputs + self.outputs + self.bidirs + len(self.scan_chains) == 0:
            raise ValueError("a core must have at least one terminal or scan chain")
        if self.power is not None and self.power < 0:
            raise ValueError("power must be non-negative")

    # ------------------------------------------------------------------
    # Derived test-set quantities
    # ------------------------------------------------------------------
    @property
    def scan_cells(self) -> int:
        """Total number of internal scan cells (sum of scan chain lengths)."""
        return sum(self.scan_chains)

    @property
    def num_scan_chains(self) -> int:
        """Number of internal scan chains."""
        return len(self.scan_chains)

    @property
    def is_combinational(self) -> bool:
        """True if the core has no internal scan chains."""
        return not self.scan_chains

    @property
    def wrapper_input_cells(self) -> int:
        """Wrapper cells on the scan-in path that are not internal scan cells."""
        return self.inputs + self.bidirs

    @property
    def wrapper_output_cells(self) -> int:
        """Wrapper cells on the scan-out path that are not internal scan cells."""
        return self.outputs + self.bidirs

    @property
    def test_bits_per_pattern(self) -> int:
        """Test-data bits that must be stored on the tester per pattern.

        Every pattern carries a stimulus for each input, bidir and scan cell
        and an expected response for each output, bidir and scan cell.
        """
        stimulus = self.inputs + self.bidirs + self.scan_cells
        response = self.outputs + self.bidirs + self.scan_cells
        return stimulus + response

    @property
    def total_test_bits(self) -> int:
        """Total test-data volume for this core, in bits."""
        return self.test_bits_per_pattern * self.patterns

    @property
    def test_power(self) -> float:
        """Power dissipated during this core's test.

        Uses the explicit :attr:`power` value when given, otherwise the
        paper's hypothetical model (test-data bits per pattern).
        """
        if self.power is not None:
            return self.power
        return float(self.test_bits_per_pattern)

    # ------------------------------------------------------------------
    # Convenience constructors / transforms
    # ------------------------------------------------------------------
    def with_power(self, power: float) -> "Core":
        """Return a copy of this core with an explicit test power value."""
        return self.replace(power=power)

    def replace(self, **changes: object) -> "Core":
        """Return a copy of this core with the given fields replaced."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

    @classmethod
    def combinational(
        cls,
        name: str,
        inputs: int,
        outputs: int,
        patterns: int,
        bidirs: int = 0,
    ) -> "Core":
        """Build a combinational (scan-less) core."""
        return cls(
            name=name,
            inputs=inputs,
            outputs=outputs,
            bidirs=bidirs,
            patterns=patterns,
            scan_chains=(),
        )

    @classmethod
    def balanced_scan(
        cls,
        name: str,
        inputs: int,
        outputs: int,
        patterns: int,
        scan_cells: int,
        num_chains: int,
        bidirs: int = 0,
        **kwargs: object,
    ) -> "Core":
        """Build a core whose ``scan_cells`` are split into ``num_chains``
        chains of (nearly) equal length.

        This is how the ISCAS-89 based cores of the d695 benchmark are
        usually described ("1426 flip-flops in 32 chains").
        """
        if num_chains <= 0:
            raise ValueError("num_chains must be positive")
        if scan_cells < num_chains:
            raise ValueError("cannot have more scan chains than scan cells")
        base, extra = divmod(scan_cells, num_chains)
        chains = tuple(base + 1 for _ in range(extra)) + tuple(
            base for _ in range(num_chains - extra)
        )
        return cls(
            name=name,
            inputs=inputs,
            outputs=outputs,
            bidirs=bidirs,
            patterns=patterns,
            scan_chains=chains,
            **kwargs,
        )

    def describe(self) -> str:
        """One-line human readable description of the core."""
        scan = (
            f"{self.num_scan_chains} scan chains / {self.scan_cells} cells"
            if self.scan_chains
            else "combinational"
        )
        return (
            f"{self.name}: {self.inputs} in, {self.outputs} out, "
            f"{self.bidirs} bidir, {self.patterns} patterns, {scan}"
        )


def total_test_bits(cores: Sequence[Core]) -> int:
    """Total test-data volume of a collection of cores, in bits."""
    return sum(core.total_test_bits for core in cores)

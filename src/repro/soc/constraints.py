"""Constraint model for constraint-driven test scheduling (paper Section 4).

Four kinds of constraints are supported, exactly the ones the paper's
``Conflict`` subroutine (Figure 7) checks:

* **Precedence** ``a < b``: the test of core *a* must complete before the
  test of core *b* begins.  Used for abort-at-first-fail ordering and for
  testing memories early so they can be reused for system test.
* **Concurrency** ``a ~/~ b``: the tests of cores *a* and *b* must never
  overlap in time.  Used e.g. for hierarchical parent/child cores.
* **Power**: the sum of the power values of all concurrently running tests
  must never exceed ``power_max``.
* **Preemption limits**: each core may be preempted at most
  ``max_preemptions[core]`` times (0 = non-preemptable).

BIST-scan conflicts are derived from :attr:`repro.soc.core.Core.bist_resource`
and do not need to be listed explicitly; :meth:`ConstraintSet.for_soc`
materialises them (and hierarchy conflicts) as concurrency constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.soc.soc import Soc


class ConstraintError(ValueError):
    """Raised when a constraint set is inconsistent with an SOC."""


def _normalize_pairs(pairs: Iterable[Sequence[str]]) -> Tuple[Tuple[str, str], ...]:
    normalized = []
    for pair in pairs:
        a, b = pair
        normalized.append((str(a), str(b)))
    return tuple(normalized)


@dataclass(frozen=True)
class ConstraintSet:
    """A bundle of scheduling constraints for one SOC.

    Parameters
    ----------
    precedence:
        Ordered pairs ``(before, after)``: the test of ``before`` must
        complete before the test of ``after`` starts.
    concurrency:
        Unordered pairs of core names whose tests must not overlap.
    power_max:
        Maximum total power that may be dissipated at any moment during
        test, or ``None`` for no power constraint.
    max_preemptions:
        Per-core limit on the number of preemptions.  Cores not listed use
        ``default_preemptions``.
    default_preemptions:
        Preemption limit for cores not present in ``max_preemptions``.
        The default of 0 makes scheduling non-preemptive.
    """

    precedence: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)
    concurrency: Tuple[FrozenSet[str], ...] = field(default_factory=tuple)
    power_max: Optional[float] = None
    max_preemptions: Mapping[str, int] = field(default_factory=dict)
    default_preemptions: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "precedence", _normalize_pairs(self.precedence))
        pairs = []
        for pair in self.concurrency:
            members = frozenset(str(name) for name in pair)
            if len(members) != 2:
                raise ConstraintError(
                    f"concurrency constraint must involve two distinct cores, got {pair!r}"
                )
            pairs.append(members)
        object.__setattr__(self, "concurrency", tuple(pairs))
        object.__setattr__(self, "max_preemptions", dict(self.max_preemptions))
        if self.power_max is not None and self.power_max <= 0:
            raise ConstraintError("power_max must be positive when given")
        if self.default_preemptions < 0:
            raise ConstraintError("default_preemptions must be non-negative")
        for name, limit in self.max_preemptions.items():
            if limit < 0:
                raise ConstraintError(
                    f"max_preemptions[{name!r}] must be non-negative, got {limit}"
                )
        for before, after in self.precedence:
            if before == after:
                raise ConstraintError(
                    f"precedence constraint cannot relate {before!r} to itself"
                )
        self._check_acyclic()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_acyclic(self) -> None:
        """Detect cycles in the precedence relation (they make scheduling impossible)."""
        successors: Dict[str, Set[str]] = {}
        for before, after in self.precedence:
            successors.setdefault(before, set()).add(after)
        visited: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(node: str, stack: Tuple[str, ...]) -> None:
            state = visited.get(node)
            if state == 1:
                return
            if state == 0:
                cycle = " -> ".join(stack + (node,))
                raise ConstraintError(f"precedence constraints contain a cycle: {cycle}")
            visited[node] = 0
            for nxt in successors.get(node, ()):
                visit(nxt, stack + (node,))
            visited[node] = 1

        for node in list(successors):
            visit(node, ())

    def validate_for(self, soc: Soc) -> None:
        """Check that every constrained core exists in ``soc``."""
        names = set(soc.core_names)
        referenced: Set[str] = set()
        for before, after in self.precedence:
            referenced.update((before, after))
        for pair in self.concurrency:
            referenced.update(pair)
        referenced.update(self.max_preemptions)
        unknown = sorted(referenced - names)
        if unknown:
            raise ConstraintError(
                f"constraints reference cores not present in SOC {soc.name!r}: {unknown}"
            )

    # ------------------------------------------------------------------
    # Queries used by the scheduler
    # ------------------------------------------------------------------
    def predecessors_of(self, name: str) -> Tuple[str, ...]:
        """Cores whose tests must complete before ``name`` may begin."""
        return tuple(before for before, after in self.precedence if after == name)

    def successors_of(self, name: str) -> Tuple[str, ...]:
        """Cores whose tests may only begin after ``name`` completes."""
        return tuple(after for before, after in self.precedence if before == name)

    def conflicts_with(self, name: str) -> Tuple[str, ...]:
        """Cores that must not be tested concurrently with ``name``."""
        result = []
        for pair in self.concurrency:
            if name in pair:
                (other,) = pair - {name}
                result.append(other)
        return tuple(result)

    def allows_concurrent(self, a: str, b: str) -> bool:
        """True if tests ``a`` and ``b`` may overlap in time."""
        return frozenset((a, b)) not in set(self.concurrency)

    def preemption_limit(self, name: str) -> int:
        """Maximum number of preemptions allowed for the named core."""
        return int(self.max_preemptions.get(name, self.default_preemptions))

    @property
    def is_preemptive(self) -> bool:
        """True if at least one core is allowed to be preempted."""
        if self.default_preemptions > 0:
            return True
        return any(limit > 0 for limit in self.max_preemptions.values())

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def unconstrained(cls) -> "ConstraintSet":
        """An empty constraint set (Problem 1 of the paper)."""
        return cls()

    @classmethod
    def for_soc(
        cls,
        soc: Soc,
        precedence: Iterable[Sequence[str]] = (),
        concurrency: Iterable[Sequence[str]] = (),
        power_max: Optional[float] = None,
        max_preemptions: Optional[Mapping[str, int]] = None,
        default_preemptions: int = 0,
        include_hierarchy: bool = True,
        include_bist: bool = True,
    ) -> "ConstraintSet":
        """Build a constraint set, deriving structural conflicts from the SOC.

        Hierarchy conflicts (parent vs. child cores) and BIST-resource
        conflicts (cores sharing an engine) are added as concurrency
        constraints unless disabled.
        """
        pairs: Set[FrozenSet[str]] = {frozenset(map(str, pair)) for pair in concurrency}
        if include_hierarchy:
            for core in soc.cores:
                if core.parent is not None:
                    pairs.add(frozenset((core.name, core.parent)))
        if include_bist:
            for _, members in soc.bist_groups().items():
                for i, a in enumerate(members):
                    for b in members[i + 1 :]:
                        pairs.add(frozenset((a, b)))
        constraints = cls(
            precedence=tuple(tuple(pair) for pair in precedence),
            concurrency=tuple(sorted(pairs, key=sorted)),
            power_max=power_max,
            max_preemptions=dict(max_preemptions or {}),
            default_preemptions=default_preemptions,
        )
        constraints.validate_for(soc)
        return constraints

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def with_power_max(self, power_max: Optional[float]) -> "ConstraintSet":
        """Return a copy with a different power budget."""
        return replace(self, power_max=power_max)

    def with_preemptions(
        self,
        max_preemptions: Optional[Mapping[str, int]] = None,
        default_preemptions: Optional[int] = None,
    ) -> "ConstraintSet":
        """Return a copy with different preemption limits."""
        return replace(
            self,
            max_preemptions=dict(
                max_preemptions if max_preemptions is not None else self.max_preemptions
            ),
            default_preemptions=(
                self.default_preemptions
                if default_preemptions is None
                else default_preemptions
            ),
        )

    def merged_with(self, other: "ConstraintSet") -> "ConstraintSet":
        """Combine two constraint sets (union of constraints, tighter power)."""
        power_values = [p for p in (self.power_max, other.power_max) if p is not None]
        preemptions = dict(self.max_preemptions)
        preemptions.update(other.max_preemptions)
        # The unions are deduplicating sets; sort them back into a total
        # order (frozenset pairs via their sorted members) so the merged
        # tuples are identical regardless of hash seed.
        return ConstraintSet(
            precedence=tuple(sorted(set(self.precedence) | set(other.precedence))),
            concurrency=tuple(
                sorted(set(self.concurrency) | set(other.concurrency), key=sorted)
            ),
            power_max=min(power_values) if power_values else None,
            max_preemptions=preemptions,
            default_preemptions=max(self.default_preemptions, other.default_preemptions),
        )

    # ------------------------------------------------------------------
    # Serialization (the payload of a :class:`repro.solvers.ScheduleRequest`)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dict form (round-trips through :meth:`from_dict`).

        Concurrency pairs keep their stored order, with each pair's members
        sorted, so ``from_dict(to_dict(c)) == c``.
        """
        return {
            "precedence": [list(pair) for pair in self.precedence],
            "concurrency": [sorted(pair) for pair in self.concurrency],
            "power_max": self.power_max,
            "max_preemptions": dict(self.max_preemptions),
            "default_preemptions": self.default_preemptions,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConstraintSet":
        """Rebuild a constraint set from :meth:`to_dict` output."""
        power_max = data.get("power_max")
        preemptions = dict(data.get("max_preemptions") or {})
        return cls(
            precedence=tuple((str(a), str(b)) for a, b in data.get("precedence") or ()),
            concurrency=tuple(
                frozenset((str(a), str(b))) for a, b in data.get("concurrency") or ()
            ),
            power_max=float(power_max) if power_max is not None else None,
            max_preemptions={str(name): int(limit) for name, limit in preemptions.items()},
            default_preemptions=int(data.get("default_preemptions") or 0),
        )

    def describe(self) -> str:
        """Human-readable summary of the constraint set."""
        parts = [
            f"{len(self.precedence)} precedence",
            f"{len(self.concurrency)} concurrency",
            f"power_max={self.power_max}",
            f"default_preemptions={self.default_preemptions}",
        ]
        if self.max_preemptions:
            parts.append(f"{len(self.max_preemptions)} per-core preemption limits")
        return ", ".join(parts)

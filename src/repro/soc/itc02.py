"""Plain-text SOC description format, modelled after the ITC'02 benchmarks.

The original ITC'02 SOC Test Benchmark files describe each module ("core")
by its terminal counts, scan-chain lengths and test-pattern counts.  The
format used here captures the same information in a simpler line-oriented
syntax that is easy to diff and to write by hand::

    # Anything after a '#' is a comment.
    SocName d695
    Core c6288   inputs=32  outputs=32  bidirs=0 patterns=12
    Core s9234   inputs=36  outputs=39  bidirs=0 patterns=105 scan=54,53,52,52
    Core child1  inputs=10  outputs=10  patterns=50 scan=20,20 parent=c6288
    Core bisted  inputs=4   outputs=4   patterns=10 scan=8 bist=engine0 power=130

    # Optional scheduling constraints
    PowerMax 1800
    Precedence s9234 c6288          # s9234 must finish before c6288 starts
    Concurrency c6288 child1        # never test these two together
    MaxPreemptions s9234 2
    DefaultPreemptions 1

:func:`parse_soc` reads only the SOC structure; :func:`parse_soc_file`
(and :func:`load_soc`) additionally return the constraint set if any
constraint lines are present.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

from repro.soc.constraints import ConstraintSet
from repro.soc.core import Core
from repro.soc.soc import Soc


class SocFormatError(ValueError):
    """Raised when an SOC description file cannot be parsed."""


_CORE_KEYS = {"inputs", "outputs", "bidirs", "patterns", "scan", "power", "bist", "parent"}


def _strip_comment(line: str) -> str:
    if "#" in line:
        line = line.split("#", 1)[0]
    return line.strip()


def _parse_core_line(tokens: List[str], line_no: int) -> Core:
    if len(tokens) < 2:
        raise SocFormatError(f"line {line_no}: 'Core' line needs a core name")
    name = tokens[1]
    fields: Dict[str, str] = {}
    for token in tokens[2:]:
        if "=" not in token:
            raise SocFormatError(
                f"line {line_no}: expected key=value, got {token!r}"
            )
        key, value = token.split("=", 1)
        key = key.lower()
        if key not in _CORE_KEYS:
            raise SocFormatError(
                f"line {line_no}: unknown core attribute {key!r} "
                f"(expected one of {sorted(_CORE_KEYS)})"
            )
        fields[key] = value
    try:
        scan_text = fields.get("scan", "")
        scan_chains = tuple(
            int(part) for part in scan_text.split(",") if part.strip()
        )
        return Core(
            name=name,
            inputs=int(fields.get("inputs", 0)),
            outputs=int(fields.get("outputs", 0)),
            bidirs=int(fields.get("bidirs", 0)),
            patterns=int(fields.get("patterns", 1)),
            scan_chains=scan_chains,
            power=float(fields["power"]) if "power" in fields else None,
            bist_resource=fields.get("bist"),
            parent=fields.get("parent"),
        )
    except (ValueError, TypeError) as exc:
        if isinstance(exc, SocFormatError):
            raise
        raise SocFormatError(f"line {line_no}: invalid core description: {exc}") from exc


def parse_soc_with_constraints(text: str) -> Tuple[Soc, ConstraintSet]:
    """Parse an SOC description and any constraint lines it contains."""
    name: Optional[str] = None
    cores: List[Core] = []
    precedence: List[Tuple[str, str]] = []
    concurrency: List[Tuple[str, str]] = []
    power_max: Optional[float] = None
    max_preemptions: Dict[str, int] = {}
    default_preemptions = 0

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()
        if keyword == "socname":
            if len(tokens) != 2:
                raise SocFormatError(f"line {line_no}: 'SocName' needs exactly one name")
            name = tokens[1]
        elif keyword == "core":
            cores.append(_parse_core_line(tokens, line_no))
        elif keyword == "powermax":
            if len(tokens) != 2:
                raise SocFormatError(f"line {line_no}: 'PowerMax' needs one value")
            power_max = float(tokens[1])
        elif keyword == "precedence":
            if len(tokens) != 3:
                raise SocFormatError(f"line {line_no}: 'Precedence' needs two core names")
            precedence.append((tokens[1], tokens[2]))
        elif keyword == "concurrency":
            if len(tokens) != 3:
                raise SocFormatError(f"line {line_no}: 'Concurrency' needs two core names")
            concurrency.append((tokens[1], tokens[2]))
        elif keyword == "maxpreemptions":
            if len(tokens) != 3:
                raise SocFormatError(
                    f"line {line_no}: 'MaxPreemptions' needs a core name and a limit"
                )
            max_preemptions[tokens[1]] = int(tokens[2])
        elif keyword == "defaultpreemptions":
            if len(tokens) != 2:
                raise SocFormatError(f"line {line_no}: 'DefaultPreemptions' needs one value")
            default_preemptions = int(tokens[1])
        else:
            raise SocFormatError(f"line {line_no}: unknown keyword {tokens[0]!r}")

    if name is None:
        raise SocFormatError("missing 'SocName' line")
    if not cores:
        raise SocFormatError(f"SOC {name!r} defines no cores")
    soc = Soc(name=name, cores=tuple(cores))
    constraints = ConstraintSet.for_soc(
        soc,
        precedence=precedence,
        concurrency=concurrency,
        power_max=power_max,
        max_preemptions=max_preemptions,
        default_preemptions=default_preemptions,
    )
    return soc, constraints


def parse_soc(text: str) -> Soc:
    """Parse an SOC description, ignoring any constraint lines."""
    soc, _ = parse_soc_with_constraints(text)
    return soc


def _format_core(core: Core) -> str:
    parts = [
        f"Core {core.name}",
        f"inputs={core.inputs}",
        f"outputs={core.outputs}",
        f"bidirs={core.bidirs}",
        f"patterns={core.patterns}",
    ]
    if core.scan_chains:
        parts.append("scan=" + ",".join(str(length) for length in core.scan_chains))
    if core.power is not None:
        power = core.power
        parts.append(f"power={int(power) if power == int(power) else power}")
    if core.bist_resource is not None:
        parts.append(f"bist={core.bist_resource}")
    if core.parent is not None:
        parts.append(f"parent={core.parent}")
    return " ".join(parts)


def format_soc(soc: Soc, constraints: Optional[ConstraintSet] = None) -> str:
    """Serialise an SOC (and optionally its constraints) to text."""
    lines = [f"SocName {soc.name}"]
    for core in soc.cores:
        lines.append(_format_core(core))
    if constraints is not None:
        if constraints.power_max is not None:
            power = constraints.power_max
            lines.append(
                f"PowerMax {int(power) if power == int(power) else power}"
            )
        for before, after in constraints.precedence:
            lines.append(f"Precedence {before} {after}")
        for pair in constraints.concurrency:
            a, b = sorted(pair)
            lines.append(f"Concurrency {a} {b}")
        if constraints.default_preemptions:
            lines.append(f"DefaultPreemptions {constraints.default_preemptions}")
        for core_name in sorted(constraints.max_preemptions):
            limit = constraints.max_preemptions[core_name]
            lines.append(f"MaxPreemptions {core_name} {limit}")
    return "\n".join(lines) + "\n"


def load_soc(path: Union[str, os.PathLike]) -> Tuple[Soc, ConstraintSet]:
    """Load an SOC description (and constraints) from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_soc_with_constraints(handle.read())


def save_soc(
    soc: Soc,
    path: Union[str, os.PathLike],
    constraints: Optional[ConstraintSet] = None,
) -> None:
    """Write an SOC description (and optionally constraints) to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_soc(soc, constraints))

"""SOC and core data model, constraints, benchmarks and the ITC'02-style file format.

This subpackage is the substrate that everything else builds on.  It knows
nothing about wrappers, TAMs or schedules; it only describes *what* has to be
tested:

* :class:`~repro.soc.core.Core` -- one embedded core and its test-set
  parameters (functional I/Os, test patterns, internal scan chains).
* :class:`~repro.soc.soc.Soc` -- a system-on-chip: a named collection of cores.
* :class:`~repro.soc.constraints.ConstraintSet` -- precedence, concurrency,
  power and preemption constraints used by the constraint-driven scheduler.
* :mod:`~repro.soc.itc02` -- a plain-text file format (modelled after the
  ITC'02 SOC Test Benchmark format) plus parser and writer.
* :mod:`~repro.soc.benchmarks` -- the four SOCs used in the paper's
  evaluation: ``d695`` and synthetic stand-ins for the Philips SOCs
  ``p22810``, ``p34392`` and ``p93791``.
"""

from repro.soc.core import Core
from repro.soc.soc import Soc, SocValidationError
from repro.soc.constraints import ConstraintSet, ConstraintError
from repro.soc.itc02 import (
    SocFormatError,
    format_soc,
    load_soc,
    parse_soc,
    save_soc,
)
from repro.soc.benchmarks import (
    d695,
    get_benchmark,
    list_benchmarks,
    p22810,
    p34392,
    p93791,
)
from repro.soc.generator import GeneratorProfile, generate_soc, generate_soc_family

__all__ = [
    "GeneratorProfile",
    "generate_soc",
    "generate_soc_family",
    "Core",
    "Soc",
    "SocValidationError",
    "ConstraintSet",
    "ConstraintError",
    "SocFormatError",
    "parse_soc",
    "format_soc",
    "load_soc",
    "save_soc",
    "d695",
    "p22810",
    "p34392",
    "p93791",
    "get_benchmark",
    "list_benchmarks",
]

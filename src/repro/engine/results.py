"""Aggregation and export of sweep results.

A :class:`SweepResults` holds the :class:`~repro.engine.jobs.JobResult`
records of one engine run, in job order.  It offers the two reductions every
experiment driver needs -- *best per group* (Table 1 cells) and *per-width
series* (TAM sweeps) -- plus dependency-free CSV and JSON export of the flat
record form.
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.faults import (
    STAGE_SERIAL,
    FailureRecord,
    RecoveryEvent,
    ladder_stage,
)
from repro.engine.jobs import EngineError, JobResult

# Columns every record has, in export order; tag columns follow.
_BASE_FIELDS = (
    "index",
    "soc",
    "width",
    "percent",
    "delta",
    "insertion_slack",
    "max_core_width",
    "constraints",
    "solver",
    "group",
    "makespan",
    "data_volume",
    "wall_time",
    "worker",
)

# Run-level execution-stat columns appended (same value on every record)
# when the run's :class:`ExecutorStats` carries a nonzero counter; absent
# on stat-less and purely-serial runs so legacy CSV shapes are unchanged
# (the ``recovery_events`` convention: execution detail appears only when
# there is execution detail to report).
_STATS_FIELDS = (
    "board_aborts",
    "shm_bytes_saved",
    "payload_bytes",
)


@dataclass(frozen=True)
class ExecutorStats:
    """How one engine run was executed (excluded from results equality).

    ``tasks`` counts the flat scheduler-run tasks the executor dispatched
    (a decomposed ``best`` job contributes one task per deduplicated grid
    run, so ``tasks > jobs`` whenever decomposition happened).

    Fault tolerance is reported through the *recovery ladder*:
    ``recovery_events`` lists every downward step the run took
    (``parallel -> resurrected -> quarantined -> serial``) and
    ``failures`` is the structured fault journal behind those steps.  A
    clean run has neither.  ``retries``/``resurrections``/``quarantined``
    are the matching counters, and :attr:`degraded_to_serial` is kept as
    a derived compatibility property (``True`` whenever any work ran on
    the serial rung -- the same condition that emits a
    :class:`RuntimeWarning` on pool-creation failure).

    The payload-plane counters describe dispatch traffic:
    ``payload_bytes`` is the total serialized task bytes sent through the
    pool pipe, ``shm_tasks`` how many of those tasks travelled as slim
    shared-memory references, ``shm_bytes_saved`` the pickled bytes the
    shm plane avoided, and ``board_aborts`` how many runs the incumbent
    board killed *mid-run* inside workers.  Like the recovery counters
    they depend on scheduling races, never on results.
    """

    jobs: int = 0
    decomposed_jobs: int = 0
    tasks: int = 0
    workers: int = 0
    retries: int = 0
    resurrections: int = 0
    quarantined: int = 0
    board_aborts: int = 0
    shm_tasks: int = 0
    payload_bytes: int = 0
    shm_bytes_saved: int = 0
    recovery_events: Tuple[RecoveryEvent, ...] = ()
    failures: Tuple[FailureRecord, ...] = ()

    @property
    def degraded_to_serial(self) -> bool:
        """Derived compatibility flag: did any work run on the serial rung?"""
        return any(event.stage == STAGE_SERIAL for event in self.recovery_events)

    @property
    def recovery_stage(self) -> str:
        """The deepest recovery-ladder stage reached (``parallel`` if clean)."""
        return ladder_stage(self.recovery_events)


@dataclass(frozen=True)
class SweepResults:
    """The ordered results of one engine run.

    ``stats`` describes *how* the run executed (task decomposition, worker
    count, serial degrade) and is excluded from equality: a serial and a
    parallel run of the same grid compare equal record-for-record.
    """

    results: Tuple[JobResult, ...] = field(default_factory=tuple)
    stats: Optional[ExecutorStats] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.results, key=lambda result: result.job.index)
        )
        object.__setattr__(self, "results", ordered)

    @property
    def degraded_to_serial(self) -> bool:
        """True when a requested worker pool degraded to the serial path."""
        return self.stats is not None and self.stats.degraded_to_serial

    @property
    def recovery_events(self) -> Tuple[RecoveryEvent, ...]:
        """The run's recovery ladder (empty for a clean or stat-less run)."""
        return self.stats.recovery_events if self.stats is not None else ()

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> JobResult:
        return self.results[index]

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def best_by_group(self) -> Dict[Tuple[Any, ...], JobResult]:
        """The best (smallest makespan) result of every job group.

        Ties break on the job index, i.e. the job generated *first* in grid
        order wins -- exactly the result the equivalent serial loop keeps.
        Groups appear in order of first appearance.
        """
        best: Dict[Tuple[Any, ...], JobResult] = {}
        for result in self.results:
            group = result.job.group
            current = best.get(group)
            if current is None or (result.makespan, result.job.index) < (
                current.makespan,
                current.job.index,
            ):
                best[group] = result
        return best

    def for_group(self, group: Sequence[Any]) -> List[JobResult]:
        """All results whose job belongs to the given group, in job order."""
        key = tuple(group)
        return [result for result in self.results if result.job.group == key]

    def best_for_group(self, group: Sequence[Any]) -> JobResult:
        """The best result of one group."""
        candidates = self.for_group(group)
        if not candidates:
            raise EngineError(f"no results in group {tuple(group)!r}")
        return min(
            candidates, key=lambda result: (result.makespan, result.job.index)
        )

    @property
    def groups(self) -> List[Tuple[Any, ...]]:
        """All distinct job groups, in order of first appearance."""
        seen: List[Tuple[Any, ...]] = []
        for result in self.results:
            if result.job.group not in seen:
                seen.append(result.job.group)
        return seen

    @property
    def total_wall_time(self) -> float:
        """Sum of per-job wall times (CPU work, not elapsed sweep time)."""
        return sum(result.wall_time for result in self.results)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _tag_names(self) -> List[str]:
        names: List[str] = []
        for result in self.results:
            for name, _ in result.job.tags:
                if name not in names:
                    names.append(name)
        return names

    def _metadata_names(self) -> List[str]:
        """Solver-metadata columns (e.g. the ``best`` sweep's winner point).

        Only scalar values are exported; names are ordered by first
        appearance, after the tag columns.
        """
        names: List[str] = []
        for result in self.results:
            for name, value in result.metadata:
                if name not in names and isinstance(value, (str, int, float, bool)):
                    names.append(name)
        return names

    def _stats_names(self) -> List[str]:
        """Executor-stat columns: only counters the run actually touched."""
        if self.stats is None:
            return []
        return [name for name in _STATS_FIELDS if getattr(self.stats, name)]

    def to_records(self) -> List[Dict[str, Any]]:
        """Flat dict records (one per job), ready for CSV/JSON export."""
        tag_names = self._tag_names()
        metadata_names = self._metadata_names()
        stats_names = self._stats_names()
        records = []
        for result in self.results:
            job = result.job
            record: Dict[str, Any] = {
                "index": job.index,
                "soc": job.soc,
                "width": job.width,
                "percent": job.config.percent,
                "delta": job.config.delta,
                "insertion_slack": job.config.insertion_slack,
                "max_core_width": job.config.max_core_width,
                "constraints": job.constraints or "",
                "solver": job.solver,
                "group": "/".join(str(part) for part in job.group),
                "makespan": result.makespan,
                "data_volume": result.data_volume,
                "wall_time": result.wall_time,
                "worker": result.worker,
            }
            for name in tag_names:
                record[name] = job.tag(name, default="")
            if metadata_names:
                metadata = dict(result.metadata)
                for name in metadata_names:
                    record[name] = metadata.get(name, "")
            for name in stats_names:
                record[name] = getattr(self.stats, name)
            records.append(record)
        return records

    def to_csv(self) -> str:
        """Serialise the records to CSV text."""
        headers = list(_BASE_FIELDS) + self._tag_names() + self._metadata_names()
        headers.extend(name for name in self._stats_names() if name not in headers)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=headers, lineterminator="\n")
        writer.writeheader()
        for record in self.to_records():
            writer.writerow(record)
        return buffer.getvalue()

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the records to JSON text."""
        return json.dumps(self.to_records(), indent=indent)

    def save_csv(self, path: Union[str, os.PathLike]) -> None:
        """Write the CSV form to a file."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())

    def save_json(self, path: Union[str, os.PathLike], indent: int = 2) -> None:
        """Write the JSON form to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=indent))

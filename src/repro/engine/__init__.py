"""Parallel experiment/sweep engine.

The engine turns a declarative parameter grid (benchmark x percent x delta
x TAM width x scheduler mode x preemption budget) into independent,
picklable jobs, executes them serially or across a ``multiprocessing``
worker pool (with per-worker warm Pareto-curve caches), and aggregates the
results into typed records with CSV/JSON export.

Layering: ``grid`` (declarative grids) -> ``jobs`` (typed work units) ->
``runner`` (serial / pool execution) -> ``results`` (aggregation, export),
with ``api`` providing the experiment-shaped entry points the analysis
drivers use.  Results are guaranteed identical for every worker count; see
:mod:`repro.engine.runner`.
"""

from repro.engine.api import (
    MODE_NON_PREEMPTIVE,
    MODE_POWER_CONSTRAINED,
    MODE_PREEMPTIVE,
    POWER_BUDGET_FACTOR,
    PREEMPTION_LIMIT,
    SCHEDULER_MODES,
    best_schedule_grid,
    config_grid,
    expand_config_jobs,
    mode_constraint_sets,
    parallel_tam_sweep,
    parallel_tam_sweep_results,
    power_budget,
    preemption_limits,
    run_grid,
)
from repro.engine.executor import (
    FlatExecutor,
    close_default_executor,
    get_default_executor,
    use_executor,
)
from repro.engine.faults import (
    RECOVERY_LADDER,
    FailureRecord,
    FaultAction,
    FaultPlan,
    FaultPlanError,
    InjectedFault,
    RecoveryEvent,
)
from repro.engine.grid import GridError, ParameterGrid
from repro.engine.jobs import EngineContext, EngineError, JobResult, ScheduleJob
from repro.engine.results import ExecutorStats, SweepResults
from repro.engine.runner import execute_job, prime_context_caches, run_jobs

__all__ = [
    "ParameterGrid",
    "GridError",
    "ScheduleJob",
    "JobResult",
    "EngineContext",
    "EngineError",
    "SweepResults",
    "ExecutorStats",
    "FailureRecord",
    "FaultAction",
    "FaultPlan",
    "FaultPlanError",
    "InjectedFault",
    "RecoveryEvent",
    "RECOVERY_LADDER",
    "FlatExecutor",
    "get_default_executor",
    "close_default_executor",
    "use_executor",
    "run_jobs",
    "run_grid",
    "execute_job",
    "prime_context_caches",
    "best_schedule_grid",
    "parallel_tam_sweep",
    "parallel_tam_sweep_results",
    "config_grid",
    "expand_config_jobs",
    "mode_constraint_sets",
    "preemption_limits",
    "power_budget",
    "SCHEDULER_MODES",
    "MODE_NON_PREEMPTIVE",
    "MODE_PREEMPTIVE",
    "MODE_POWER_CONSTRAINED",
    "PREEMPTION_LIMIT",
    "POWER_BUDGET_FACTOR",
]

"""Job execution front door: the flat shared-pool executor, or a serial loop.

Since the flattened executor landed (:mod:`repro.engine.executor`) this
module is the thin public face of job execution: :func:`run_jobs` hands the
job list to the process-wide :class:`~repro.engine.executor.FlatExecutor`,
which decomposes every job into scheduler-run *tasks* (a ``best`` job
explodes into its deduplicated grid runs, any other solver stays one task),
streams them through one persistent worker pool and reassembles the results
deterministically by ``(job index, run key)``.

The executor guarantees that for a fixed job list the *results are
independent of the worker count*: jobs are pure functions of their inputs
(every solver is deterministic), results are returned in job order, and all
aggregation downstream tie-breaks on the job index.  ``workers <= 1`` runs
a deterministic in-process loop.

Jobs are solved through the process-wide solver
:class:`~repro.solvers.session.Session` (see :mod:`repro.solvers`), so the
shared rectangle cache stays warm across every job a worker executes and
any registered schedule-producing solver can be swept by naming it in
:attr:`~repro.engine.jobs.ScheduleJob.solver`.

Faults are handled through an ordered *recovery ladder*
(``parallel -> resurrected -> quarantined -> serial``): failing tasks are
retried with deterministic backoff, a dead pool is resurrected and only the
unacknowledged tasks re-dispatched, a task that keeps killing its pool is
quarantined to an in-process run, and if no pool can be created at all --
sandboxes without working semaphores, platforms without ``fork``/``spawn``
-- the engine degrades to the serial path *observably*: a
:class:`RuntimeWarning` is emitted and the returned
:class:`~repro.engine.results.SweepResults` carry a ``serial`` entry in
``recovery_events`` (hence ``degraded_to_serial=True``).  See
:mod:`repro.engine.faults` for the vocabulary and the deterministic
fault-injection harness.
"""

from __future__ import annotations

from typing import Iterable, Optional

# Re-exported for backward compatibility: these historically lived here.
from repro.core.grid_sweep import preferred_pool_context  # noqa: F401
from repro.engine.executor import (  # noqa: F401
    execute_job,
    get_default_executor,
    prime_context_caches,
)
from repro.engine.jobs import EngineContext, ScheduleJob
from repro.engine.results import SweepResults


def run_jobs(
    jobs: Iterable[ScheduleJob],
    context: EngineContext,
    workers: int = 0,
    chunksize: Optional[int] = None,
) -> SweepResults:
    """Execute a job list and collect the results, in job order.

    Parameters
    ----------
    jobs:
        The jobs to run.  Their ``index`` fields must be unique -- they are
        the deterministic tie-break key for downstream aggregation.
    context:
        Shared SOCs and constraint sets the jobs reference.
    workers:
        ``0`` or ``1`` runs serially in-process; ``n > 1`` dispatches the
        decomposed task list over the process-wide flat executor's
        persistent pool (at most ``min(n, tasks)`` worker processes).
        Results are bit-identical for every value.
    chunksize:
        Tasks handed to a worker per dispatch.  Defaults to roughly four
        chunks per worker, capped at 8 tasks per chunk so heterogeneous
        tails still spread; on fork pools the shared incumbent board
        keeps pruning tight despite the chunked dispatch.
    """
    return get_default_executor().run_jobs(
        jobs, context, workers=workers, chunksize=chunksize
    )
